"""Tests for binary tables and database reconciliation."""

import pytest

try:
    import numpy as np
except ImportError:
    np = None

from repro.db import BinaryTable, reconcile_tables
from repro.errors import ParameterError
from repro.workloads import flipped_table_pair, random_binary_table


class TestBinaryTable:
    def test_construction_and_counts(self):
        table = BinaryTable(["a", "b", "c"], [{0, 2}, {1}])
        assert table.num_columns == 3
        assert table.num_rows == 2
        assert table.column_index("b") == 1

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ParameterError):
            BinaryTable(["a", "a"])

    def test_unknown_column(self):
        with pytest.raises(ParameterError):
            BinaryTable(["a"]).column_index("z")

    def test_row_column_range_checked(self):
        with pytest.raises(ParameterError):
            BinaryTable(["a"], [{3}])

    def test_add_remove_rows(self):
        table = BinaryTable(["a", "b"])
        table.add_row({0})
        table.add_row({0, 1})
        table.remove_row({0})
        assert table.rows() == frozenset({frozenset({0, 1})})

    def test_duplicate_rows_collapse(self):
        table = BinaryTable(["a", "b"], [{0}, {0}])
        assert table.num_rows == 1

    def test_flip_bit(self):
        table = BinaryTable(["a", "b"], [{0}])
        new_row = table.flip_bit({0}, 1)
        assert new_row == {0, 1}
        assert table.rows() == frozenset({frozenset({0, 1})})

    def test_flip_bit_validation(self):
        table = BinaryTable(["a", "b"], [{0}])
        with pytest.raises(ParameterError):
            table.flip_bit({1}, 0)
        with pytest.raises(ParameterError):
            table.flip_bit({0}, 5)

    @pytest.mark.skipif(np is None, reason="NumPy not installed")
    def test_matrix_round_trip(self):
        table = BinaryTable(["a", "b", "c"], [{0, 2}, {1}])
        rebuilt = BinaryTable.from_matrix(table.columns, table.to_matrix())
        assert rebuilt == table

    @pytest.mark.skipif(np is None, reason="NumPy not installed")
    def test_from_matrix_shape_checked(self):
        with pytest.raises(ParameterError):
            BinaryTable.from_matrix(["a"], np.zeros((2, 2), dtype=np.uint8))

    def test_sets_of_sets_round_trip(self):
        table = BinaryTable(["a", "b", "c"], [{0, 2}, {1}])
        rebuilt = BinaryTable.from_sets_of_sets(table.columns, table.to_sets_of_sets())
        assert rebuilt == table

    def test_bit_difference(self):
        alice = BinaryTable(["a", "b", "c"], [{0, 1}, {2}])
        bob = BinaryTable(["a", "b", "c"], [{0}, {2}])
        assert alice.bit_difference(bob) == 1

    def test_bit_difference_requires_same_columns(self):
        with pytest.raises(ParameterError):
            BinaryTable(["a"]).bit_difference(BinaryTable(["b"]))


class TestWorkloads:
    def test_random_table_shape(self):
        table = random_binary_table(30, 40, 0.3, seed=1)
        assert table.num_rows == 30 and table.num_columns == 40

    def test_random_table_invalid_density(self):
        with pytest.raises(ParameterError):
            random_binary_table(5, 5, 0.0, seed=1)

    def test_flipped_pair_difference(self):
        alice, bob, applied = flipped_table_pair(40, 48, 0.4, 6, seed=2, max_rows_touched=3)
        assert applied == 6
        assert alice.columns == bob.columns
        assert 0 < alice.bit_difference(bob) <= 6


class TestReconciliation:
    def test_cascading_protocol(self):
        alice, bob, _ = flipped_table_pair(40, 64, 0.4, 6, seed=3, max_rows_touched=3)
        result = reconcile_tables(alice, bob, 8, seed=4)
        assert result.success and result.recovered == alice

    def test_naive_protocol(self):
        alice, bob, _ = flipped_table_pair(30, 48, 0.4, 4, seed=5, max_rows_touched=2)
        result = reconcile_tables(alice, bob, 6, seed=6, protocol="naive")
        assert result.success and result.recovered == alice

    def test_identical_tables(self):
        alice = random_binary_table(20, 32, 0.4, seed=7)
        result = reconcile_tables(alice, alice, 2, seed=8)
        assert result.success and result.recovered == alice

    def test_unknown_protocol_name(self):
        alice = random_binary_table(5, 8, 0.4, seed=9)
        with pytest.raises(ParameterError):
            reconcile_tables(alice, alice, 1, seed=1, protocol="bogus")

    def test_column_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            reconcile_tables(BinaryTable(["a"]), BinaryTable(["b"]), 1, seed=1)
