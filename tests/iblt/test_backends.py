"""Tests for the pluggable cell-store backends and the batch IBLT APIs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    available_cell_backends,
    cell_backend_names,
    default_cell_backend,
    resolve_cell_backend,
    set_default_cell_backend,
)
from repro.errors import CapacityError, ParameterError
from repro.iblt import (
    IBLT,
    IBLTParameters,
    NumbaCellStore,
    NumpyCellStore,
    PythonCellStore,
)

HAS_NUMPY = NumpyCellStore.available()
BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")


def make_params(cells=64, key_bits=32, seed=1, **kwargs):
    return IBLTParameters(num_cells=cells, key_bits=key_bits, seed=seed, **kwargs)


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"python", "numpy"} <= set(cell_backend_names())

    def test_python_always_available(self):
        assert "python" in available_cell_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            IBLT(make_params(), backend="gpu")

    def test_default_is_auto(self):
        assert default_cell_backend() == "auto"

    def test_set_default_round_trip(self):
        set_default_cell_backend("python")
        try:
            assert default_cell_backend() == "python"
            assert IBLT(make_params()).backend == "python"
        finally:
            set_default_cell_backend(None)

    def test_set_default_validates(self):
        with pytest.raises(ParameterError):
            set_default_cell_backend("gpu")

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_BACKEND", "python")
        assert IBLT(make_params()).backend == "python"

    @needs_numpy
    def test_auto_prefers_fastest_vectorized_tier(self):
        resolved = resolve_cell_backend("auto", make_params())
        if NumbaCellStore.available():
            assert resolved is NumbaCellStore
        else:
            assert resolved is NumpyCellStore

    @needs_numpy
    def test_wide_keys_fall_back_to_python(self):
        wide = make_params(key_bits=80)
        assert resolve_cell_backend("numpy", wide) is PythonCellStore
        assert IBLT(wide, backend="numpy").backend == "python"

    @needs_numpy
    def test_wide_checksums_fall_back_to_python(self):
        wide = make_params(checksum_bits=72)
        assert IBLT(wide, backend="numpy").backend == "python"


@needs_numpy
class TestBatchHashingParity:
    """The scalar and vectorized batch hash APIs must agree bit for bit."""

    KEYS = [0, 1, 5, 99, 12345, 2**32 - 1, 2**63, 2**64 - 1]

    def test_cells_for_many_matches_cells_for_array(self):
        import numpy as np

        from repro.hashing import HashFamily

        family = HashFamily(seed=3, num_hashes=4, num_cells=44)
        scalar = family.cells_for_many(self.KEYS)
        vector = family.cells_for_array(np.asarray(self.KEYS, dtype=np.uint64))
        assert vector.T.tolist() == scalar
        assert scalar == [family.cells_for(key) for key in self.KEYS]

    def test_of_keys_matches_of_keys_array(self):
        import numpy as np

        from repro.hashing import Checksum

        for bits in (16, 32, 64):
            checksum = Checksum(seed=5, bits=bits)
            scalar = checksum.of_keys(self.KEYS)
            vector = checksum.of_keys_array(np.asarray(self.KEYS, dtype=np.uint64))
            assert vector.tolist() == scalar
            assert scalar == [checksum.of_key(key) for key in self.KEYS]


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchAPI:
    def test_batch_matches_sequential(self, backend):
        params = make_params()
        batched = IBLT(params, backend=backend)
        batched.insert_batch(range(50))
        sequential = IBLT(params, backend=backend)
        for key in range(50):
            sequential.insert(key)
        assert batched == sequential

    def test_insert_then_delete_batch_empties(self, backend):
        table = IBLT(make_params(), backend=backend)
        table.insert_batch(range(100))
        table.delete_batch(range(100))
        assert table.is_structurally_empty()

    def test_legacy_aliases_route_through_batch(self, backend):
        params = make_params()
        via_alias = IBLT(params, backend=backend)
        via_alias.insert_all(range(20))
        via_batch = IBLT(params, backend=backend)
        via_batch.insert_batch(range(20))
        assert via_alias == via_batch

    def test_empty_batch_is_noop(self, backend):
        table = IBLT(make_params(), backend=backend)
        table.insert_batch([])
        assert table.is_structurally_empty()

    def test_batch_rejects_negative_keys(self, backend):
        table = IBLT(make_params(), backend=backend)
        with pytest.raises(ParameterError):
            table.insert_batch([1, 2, -3])

    def test_batch_rejects_oversized_keys(self, backend):
        table = IBLT(make_params(key_bits=8), backend=backend)
        with pytest.raises(CapacityError):
            table.insert_batch([1, 2, 256])

    def test_batch_rejects_non_integer_keys(self, backend):
        table = IBLT(make_params(), backend=backend)
        with pytest.raises(ParameterError):
            table.insert_batch([1, 1.5])
        with pytest.raises(ParameterError):
            table.insert(2.5)
        assert table.is_structurally_empty()

    def test_batch_decode(self, backend):
        params = IBLTParameters.for_difference(60, 32, seed=5)
        keys = set(range(1000, 1050))
        table = IBLT.from_items(params, keys, backend=backend)
        positive, negative = table.decode()
        assert positive == keys and negative == set()

    def test_repeated_keys_accumulate(self, backend):
        table = IBLT(make_params(), backend=backend)
        table.insert_batch([7, 7, 7])
        table.delete_batch([7, 7, 7])
        assert table.is_structurally_empty()


@needs_numpy
class TestCrossBackendAgreement:
    def test_identical_cells_and_serialization(self):
        params = make_params(cells=48, key_bits=40, seed=9)
        keys = [3, 77, 2**39, 123456789]
        py = IBLT.from_items(params, keys, backend="python")
        np_table = IBLT.from_items(params, keys, backend="numpy")
        assert py._store.snapshot() == np_table._store.snapshot()
        assert py == np_table
        assert py.serialize() == np_table.serialize()

    def test_full_width_64_bit_keys(self):
        params = make_params(key_bits=64, seed=2)
        keys = [0, 1, 2**63, 2**64 - 1]
        py = IBLT.from_items(params, keys, backend="python")
        np_table = IBLT.from_items(params, keys, backend="numpy")
        assert py.serialize() == np_table.serialize()
        assert np_table.backend == "numpy"
        positive, _ = np_table.decode()
        assert positive == set(keys)

    def test_mixed_backend_subtract(self):
        params = make_params(seed=4)
        py = IBLT.from_items(params, {1, 2, 3}, backend="python")
        np_table = IBLT.from_items(params, {2, 3, 4}, backend="numpy")
        positive, negative = py.subtract(np_table).decode()
        assert positive == {1} and negative == {4}
        positive, negative = np_table.subtract(py).decode()
        assert positive == {4} and negative == {1}

    def test_mixed_backend_merge(self):
        params = make_params(seed=4)
        py = IBLT.from_items(params, {10}, backend="python")
        np_table = IBLT.from_items(params, {20}, backend="numpy")
        positive, _ = py.merge(np_table).decode()
        assert positive == {10, 20}

    def test_decode_results_agree(self):
        params = IBLTParameters.for_difference(40, 32, seed=11)
        alice = set(range(0, 60, 2))
        bob = set(range(0, 60, 3))
        results = []
        for backend in ("python", "numpy"):
            a = IBLT.from_items(params, alice, backend=backend)
            b = IBLT.from_items(params, bob, backend=backend)
            results.append(a.subtract(b).try_decode())
        assert results[0].success == results[1].success
        assert results[0].positive == results[1].positive
        assert results[0].negative == results[1].negative


@pytest.mark.parametrize("backend", BACKENDS)
class TestSerializationRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        inserted=st.sets(st.integers(min_value=0, max_value=2**20 - 1), max_size=12),
        deleted=st.sets(st.integers(min_value=0, max_value=2**20 - 1), max_size=12),
    )
    def test_round_trip_with_negative_counts(self, backend, inserted, deleted):
        params = make_params(cells=32, key_bits=20, seed=6)
        table = IBLT(params, backend=backend)
        table.insert_batch(inserted)
        table.delete_batch(deleted)
        encoded = table.serialize()
        for restore_backend in BACKENDS:
            restored = IBLT.deserialize(params, encoded, backend=restore_backend)
            assert restored == table
            assert restored.serialize() == encoded

    def test_deserialized_table_decodes(self, backend):
        params = make_params(cells=32, key_bits=20, seed=6)
        table = IBLT(params, backend=backend)
        table.delete_batch([77, 1234])
        restored = IBLT.deserialize(params, table.serialize(), backend=backend)
        result = restored.try_decode()
        assert result.success and result.negative == {77, 1234}

    @needs_numpy
    def test_same_items_same_serialization_across_backends(self, backend):
        params = make_params(cells=40, key_bits=24, seed=8)
        items = {5, 99, 12345, 2**24 - 1}
        table = IBLT.from_items(params, items, backend=backend)
        reference = IBLT.from_items(params, items, backend="python")
        assert table.serialize() == reference.serialize()
