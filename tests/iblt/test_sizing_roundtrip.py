"""Property test pinning the sizing round-trip both protocol families rely on.

The doubling protocols size a table with :func:`cells_for_difference` and
later ask :func:`capacity_of` whether a received table could plausibly decode
a given difference.  If the inverse ever under-reported (``capacity_of``
falling below the ``d`` the table was sized for), a correctly sized table
would be rejected; this is the same sizing regime as the balls-and-bins
"hit every bin" bounds, where off-by-one slack errors are easy to introduce.
"""

from hypothesis import given, settings, strategies as st

from repro.iblt.sizing import PEELING_THRESHOLDS, capacity_of, cells_for_difference


@settings(max_examples=400, deadline=None)
@given(
    difference=st.integers(min_value=0, max_value=2000),
    num_hashes=st.sampled_from(sorted(PEELING_THRESHOLDS)),
)
def test_capacity_covers_the_difference_it_was_sized_for(difference, num_hashes):
    cells = cells_for_difference(difference, num_hashes)
    assert capacity_of(cells, num_hashes) >= difference


@settings(max_examples=200, deadline=None)
@given(
    difference=st.integers(min_value=0, max_value=2000),
    num_hashes=st.sampled_from(sorted(PEELING_THRESHOLDS)),
)
def test_cells_are_partitionable_and_bounded_below(difference, num_hashes):
    cells = cells_for_difference(difference, num_hashes)
    assert cells % num_hashes == 0
    assert cells >= 2 * num_hashes


def test_exhaustive_roundtrip_over_the_supported_range():
    """The full grid the property test samples from, checked exhaustively."""
    for num_hashes in sorted(PEELING_THRESHOLDS):
        for difference in range(0, 2001):
            cells = cells_for_difference(difference, num_hashes)
            assert capacity_of(cells, num_hashes) >= difference, (
                num_hashes,
                difference,
            )
