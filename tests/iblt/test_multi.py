"""Tests for the batched IBLTArray construction (repro.iblt.multi)."""

import random

import pytest

from repro.errors import CapacityError, ParameterError
from repro.iblt import IBLT, IBLTArray, IBLTParameters, NumpyCellStore

BACKENDS = ["python"] + (["numpy"] if NumpyCellStore.available() else [])

PARAMS = IBLTParameters.for_difference(
    4, 24, seed=99, num_hashes=3, checksum_bits=24, count_bits=16
)


def random_children(count, seed=7, max_size=9, universe=1 << 20):
    rng = random.Random(seed)
    children = [
        [rng.randrange(universe) for _ in range(rng.randrange(max_size))]
        for _ in range(count)
    ]
    children.append([])  # empty child
    return children


@pytest.mark.parametrize("backend", BACKENDS)
class TestMatchesPerTableConstruction:
    def test_tables_equal_from_items(self, backend):
        children = random_children(40)
        array = IBLTArray(PARAMS, children, backend=backend)
        for index, child in enumerate(children):
            assert array.table(index) == IBLT.from_items(
                PARAMS, child, backend=backend
            )

    def test_serialize_all_matches_per_table_serialize(self, backend):
        children = random_children(40, seed=13)
        array = IBLTArray(PARAMS, children, backend=backend)
        assert array.serialize_all() == [
            IBLT.from_items(PARAMS, child, backend=backend).serialize()
            for child in children
        ]
        assert array.serialize_all() == [t.serialize() for t in array.tables()]

    def test_duplicate_keys_inside_a_child(self, backend):
        children = [[5, 5, 9], [9]]
        array = IBLTArray(PARAMS, children, backend=backend)
        for index, child in enumerate(children):
            assert array.table(index) == IBLT.from_items(
                PARAMS, child, backend=backend
            )

    def test_empty_array(self, backend):
        array = IBLTArray(PARAMS, [], backend=backend)
        assert len(array) == 0
        assert array.serialize_all() == []
        assert array.tables() == []

    def test_materialized_tables_are_independent(self, backend):
        array = IBLTArray(PARAMS, [[1, 2], [3]], backend=backend)
        first = array.table(0)
        first.insert(7)
        assert array.table(0) == IBLT.from_items(PARAMS, [1, 2], backend=backend)

    def test_rejects_invalid_keys(self, backend):
        with pytest.raises(ParameterError):
            IBLTArray(PARAMS, [[1], [-2]], backend=backend)
        with pytest.raises(CapacityError):
            IBLTArray(PARAMS, [[1 << 30]], backend=backend)


@pytest.mark.skipif(not NumpyCellStore.available(), reason="NumPy not installed")
class TestBackendSelection:
    def test_numpy_backend_vectorizes(self):
        array = IBLTArray(PARAMS, [[1]], backend="numpy")
        assert array.vectorized and array.backend == "numpy"

    def test_python_backend_uses_row_fallback(self):
        array = IBLTArray(PARAMS, [[1]], backend="python")
        assert not array.vectorized and array.backend == "python"

    def test_wide_keys_fall_back_and_agree(self):
        wide = IBLTParameters.for_difference(3, 100, seed=5, num_hashes=3)
        children = [[1 << 80, 3], [2]]
        array = IBLTArray(wide, children, backend="numpy")
        assert not array.vectorized
        assert array.serialize_all() == [
            IBLT.from_items(wide, child).serialize() for child in children
        ]

    def test_cross_backend_bit_identity(self):
        children = random_children(30, seed=21)
        python_array = IBLTArray(PARAMS, children, backend="python")
        numpy_array = IBLTArray(PARAMS, children, backend="numpy")
        assert python_array.serialize_all() == numpy_array.serialize_all()

    def test_rows_decode_like_single_tables(self):
        children = [[1, 2, 3], [10, 11]]
        array = IBLTArray(PARAMS, children, backend="numpy")
        for index, child in enumerate(children):
            positive, negative = array.table(index).decode()
            assert positive == set(child) and negative == set()


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchedDecode:
    def test_decode_all_matches_per_row_try_decode(self, backend):
        children = random_children(25, seed=31, max_size=5)
        array = IBLTArray(PARAMS, children, backend=backend)
        assert array.decode_all() == [
            array.table(index).try_decode() for index in range(len(array))
        ]

    def test_decode_all_reports_undecodable_rows(self, backend):
        # Row 1 holds far more keys than the table can peel.
        children = [[1, 2], list(range(1000, 1200)), [7]]
        array = IBLTArray(PARAMS, children, backend=backend)
        results = array.decode_all()
        assert [r.success for r in results] == [True, False, True]
        assert results[0].positive == {1, 2}
        assert results[2].positive == {7}

    def test_decode_all_empty_array(self, backend):
        assert IBLTArray(PARAMS, [], backend=backend).decode_all() == []


@pytest.mark.skipif(not NumpyCellStore.available(), reason="NumPy not installed")
class TestFromDifference:
    def test_matches_subtract_then_decode(self):
        alice = IBLT.from_items(PARAMS, [1, 2, 3, 99], backend="numpy")
        candidates = [
            IBLT.from_items(PARAMS, child, backend="numpy")
            for child in ([1, 2, 3], [1, 2, 3, 99], [500, 501], [])
        ]
        batched = IBLTArray.from_difference(alice, candidates)
        assert batched is not None
        assert batched.decode_all() == [
            alice.subtract(candidate).try_decode() for candidate in candidates
        ]

    def test_scalar_store_returns_none(self):
        alice = IBLT.from_items(PARAMS, [1], backend="python")
        other = IBLT.from_items(PARAMS, [2], backend="python")
        assert IBLTArray.from_difference(alice, [other]) is None

    def test_parameter_mismatch_rejected(self):
        alice = IBLT.from_items(PARAMS, [1], backend="numpy")
        other_params = IBLTParameters.for_difference(
            6, 24, seed=98, num_hashes=3, checksum_bits=24, count_bits=16
        )
        other = IBLT.from_items(other_params, [2], backend="numpy")
        with pytest.raises(ParameterError):
            IBLTArray.from_difference(alice, [other])

    def test_empty_candidate_list(self):
        alice = IBLT.from_items(PARAMS, [1], backend="numpy")
        assert IBLTArray.from_difference(alice, []).decode_all() == []
