"""Tests for the Invertible Bloom Lookup Table."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError, DecodeError, ParameterError
from repro.iblt import IBLT, IBLTParameters, cells_for_difference
from repro.iblt.sizing import capacity_of


def make_params(cells=64, key_bits=32, seed=1, **kwargs):
    return IBLTParameters(num_cells=cells, key_bits=key_bits, seed=seed, **kwargs)


class TestParameters:
    def test_size_bits(self):
        params = make_params(cells=10, key_bits=20)
        assert params.cell_bits == 16 + 20 + 32
        assert params.size_bits == 10 * params.cell_bits

    def test_for_difference_uses_sizing(self):
        params = IBLTParameters.for_difference(10, 32, seed=1)
        assert params.num_cells == cells_for_difference(10, 4)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            IBLTParameters(num_cells=2, key_bits=8, seed=1, num_hashes=4)
        with pytest.raises(ParameterError):
            IBLTParameters(num_cells=16, key_bits=0, seed=1)
        with pytest.raises(ParameterError):
            IBLTParameters(num_cells=16, key_bits=8, seed=1, num_hashes=1)


class TestSizing:
    def test_monotone_in_difference(self):
        sizes = [cells_for_difference(d) for d in range(0, 200, 10)]
        assert sizes == sorted(sizes)

    def test_multiple_of_num_hashes(self):
        for k in (3, 4, 5):
            for d in (1, 7, 50):
                assert cells_for_difference(d, k) % k == 0

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            cells_for_difference(-1)
        with pytest.raises(ParameterError):
            cells_for_difference(5, num_hashes=7)

    def test_capacity_roughly_inverse(self):
        for d in (10, 50, 200):
            cells = cells_for_difference(d)
            assert capacity_of(cells) >= d * 0.5


class TestInsertDelete:
    def test_insert_then_delete_empties(self):
        table = IBLT(make_params())
        table.insert(42)
        table.delete(42)
        assert table.is_structurally_empty()

    def test_key_width_enforced(self):
        table = IBLT(make_params(key_bits=8))
        with pytest.raises(CapacityError):
            table.insert(256)

    def test_negative_key_rejected(self):
        with pytest.raises(ParameterError):
            IBLT(make_params()).insert(-1)

    def test_insert_all_delete_all(self):
        table = IBLT(make_params())
        table.insert_all(range(10))
        table.delete_all(range(10))
        assert table.is_structurally_empty()


class TestDecode:
    def test_simple_decode(self):
        table = IBLT(make_params())
        keys = {5, 99, 12345}
        table.insert_all(keys)
        positive, negative = table.decode()
        assert positive == keys and negative == set()

    def test_signed_decode(self):
        params = make_params()
        alice = IBLT.from_items(params, {1, 2, 3, 4})
        bob = IBLT.from_items(params, {3, 4, 5, 6})
        positive, negative = alice.subtract(bob).decode()
        assert positive == {1, 2} and negative == {5, 6}

    def test_decode_does_not_mutate(self):
        table = IBLT.from_items(make_params(), {7, 8})
        table.decode()
        positive, _ = table.decode()
        assert positive == {7, 8}

    def test_overloaded_table_fails_detectably(self):
        params = make_params(cells=8)
        table = IBLT.from_items(params, range(200))
        result = table.try_decode()
        assert not result.success

    def test_decode_error_raised(self):
        params = make_params(cells=8)
        table = IBLT.from_items(params, range(200))
        with pytest.raises(DecodeError):
            table.decode()

    def test_common_keys_cancel(self):
        params = make_params()
        shared = set(range(1000))
        alice = IBLT.from_items(params, shared | {5000})
        bob = IBLT.from_items(params, shared | {6000})
        positive, negative = alice.subtract(bob).decode()
        assert positive == {5000} and negative == {6000}

    def test_merge_is_additive(self):
        params = make_params()
        a = IBLT.from_items(params, {1})
        b = IBLT.from_items(params, {2})
        positive, _ = a.merge(b).decode()
        assert positive == {1, 2}

    def test_incompatible_tables_rejected(self):
        a = IBLT(make_params(seed=1))
        b = IBLT(make_params(seed=2))
        with pytest.raises(ParameterError):
            a.subtract(b)

    def test_decode_success_rate_at_recommended_size(self):
        # Theorem 2.1 / Corollary 2.2: tables sized by the library's rule
        # should decode essentially always at this scale.
        failures = 0
        for trial in range(30):
            d = 20
            params = IBLTParameters.for_difference(d, 32, seed=trial)
            rng = random.Random(trial)
            keys = set(rng.sample(range(1 << 30), d))
            table = IBLT.from_items(params, keys)
            result = table.try_decode()
            if not (result.success and result.positive == keys):
                failures += 1
        assert failures == 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=15),
        st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=15),
    )
    def test_subtract_decode_property(self, alice_keys, bob_keys):
        # IBLT decode has an intrinsic (tiny) failure probability per seed:
        # e.g. for seed=99 the keys {2608, 44057} land on identical cell
        # sets, leaving no pure cell.  A logic bug breaks every seed, an
        # honest hash collision breaks at most one, so require success
        # under at least one of two independent seeds and full consistency
        # from any seed that does succeed.
        succeeded = 0
        for seed in (99, 1099):
            params = IBLTParameters.for_difference(30, 32, seed=seed)
            alice = IBLT.from_items(params, alice_keys)
            bob = IBLT.from_items(params, bob_keys)
            result = alice.subtract(bob).try_decode()
            if result.success:
                succeeded += 1
                assert result.positive == alice_keys - bob_keys
                assert result.negative == bob_keys - alice_keys
        assert succeeded >= 1


class TestSerialization:
    def test_round_trip(self):
        params = make_params(cells=24, key_bits=20)
        table = IBLT.from_items(params, {1, 2, 3, 500000})
        restored = IBLT.deserialize(params, table.serialize())
        assert restored == table

    def test_round_trip_with_negative_counts(self):
        params = make_params(cells=24, key_bits=20)
        table = IBLT(params)
        table.delete(77)
        restored = IBLT.deserialize(params, table.serialize())
        assert restored == table
        result = restored.try_decode()
        assert result.negative == {77}

    def test_serialized_width_bounded(self):
        params = make_params(cells=12, key_bits=16)
        table = IBLT.from_items(params, {3, 9})
        assert table.serialize().bit_length() <= params.size_bits

    def test_deserialize_rejects_oversized(self):
        params = make_params(cells=12, key_bits=16)
        with pytest.raises(ParameterError):
            IBLT.deserialize(params, 1 << params.size_bits)

    def test_equal_sets_have_equal_serializations(self):
        params = make_params()
        a = IBLT.from_items(params, {10, 20, 30})
        b = IBLT.from_items(params, {30, 10, 20})
        assert a.serialize() == b.serialize()

    def test_count_overflow_detected(self):
        params = make_params(cells=8, count_bits=4)
        table = IBLT(params)
        for _ in range(10):
            table.insert(1)
        with pytest.raises(CapacityError):
            table.serialize()
