"""Cross-kernel determinism: same seed => identical CPI transcripts/results.

Companion to ``test_cross_backend_determinism`` (cell stores): the field
kernels (:mod:`repro.field.kernels`) must be observationally identical.  A
protocol run on the pure-Python reference kernel and one on the vectorized
NumPy kernel must produce byte-identical ``CPIMessage`` evaluations,
identical transcripts, and identical recovered sets -- for the flat CPI
protocol and for the multiround set-of-sets protocol whose per-child
payloads embed CPI messages.
"""

import random

import pytest

from repro.core.setrecon.cpi import CPIMessage, cpi_decode, cpi_encode, reconcile_cpi
from repro.core.setsofsets.multiround import (
    reconcile_multiround,
    reconcile_multiround_unknown,
)
from repro.field.kernels import NumpyFieldKernel
from repro.workloads import sets_of_sets_instance

pytestmark = pytest.mark.skipif(
    not NumpyFieldKernel.available(), reason="NumPy not installed"
)

UNIVERSE = 1 << 20


def make_sets(size, difference, seed):
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


def transcript_fingerprint(transcript):
    """Message metadata with CPI payloads rendered canonically."""
    fingerprint = []
    for message in transcript.messages:
        payload = message.payload
        rendered = []
        stack = [payload]
        while stack:
            item = stack.pop()
            if isinstance(item, CPIMessage):
                rendered.append(
                    (item.set_size, item.evaluations, item.difference_bound, item.prime)
                )
            elif isinstance(item, (list, tuple)):
                stack.extend(item)
        fingerprint.append(
            (
                message.sender,
                message.round_index,
                message.label,
                message.size_bits,
                tuple(rendered),
            )
        )
    return fingerprint


class TestCPIAcrossKernels:
    @pytest.mark.parametrize("difference", [2, 9, 24])
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_identical_messages_and_recovery(self, difference, seed):
        alice, bob = make_sets(300, difference, seed)
        message_py = cpi_encode(alice, difference, UNIVERSE, field_kernel="python")
        message_np = cpi_encode(alice, difference, UNIVERSE, field_kernel="numpy")
        assert message_py == message_np  # bit-identical evaluations
        decode_py = cpi_decode(message_py, bob, UNIVERSE, seed, field_kernel="python")
        decode_np = cpi_decode(message_py, bob, UNIVERSE, seed, field_kernel="numpy")
        assert decode_py == decode_np
        assert decode_py[0] and decode_py[1] == alice

    def test_failure_cases_identical(self):
        # Difference exceeds the bound: both kernels must fail identically.
        alice, bob = make_sets(200, 20, seed=3)
        message = cpi_encode(alice, 4, UNIVERSE, field_kernel="numpy")
        assert cpi_decode(message, bob, UNIVERSE, 1, field_kernel="python") == (
            False,
            None,
        )
        assert cpi_decode(message, bob, UNIVERSE, 1, field_kernel="numpy") == (
            False,
            None,
        )

    def test_transcripts_identical(self):
        alice, bob = make_sets(150, 11, seed=5)
        result_py = reconcile_cpi(alice, bob, 12, UNIVERSE, 9, field_kernel="python")
        result_np = reconcile_cpi(alice, bob, 12, UNIVERSE, 9, field_kernel="numpy")
        assert result_py.success and result_np.success
        assert result_py.recovered == result_np.recovered == alice
        assert transcript_fingerprint(result_py.transcript) == transcript_fingerprint(
            result_np.transcript
        )

    def test_auto_kernel_matches_forced(self):
        alice, bob = make_sets(120, 6, seed=11)
        auto = reconcile_cpi(alice, bob, 8, UNIVERSE, 2)
        forced = reconcile_cpi(alice, bob, 8, UNIVERSE, 2, field_kernel="python")
        assert auto.success and forced.success
        assert auto.recovered == forced.recovered
        assert transcript_fingerprint(auto.transcript) == transcript_fingerprint(
            forced.transcript
        )

    def test_numba_tier_matches_python(self):
        # Resolves compiled when numba is installed, down the fallback chain
        # (numpy, then python) otherwise -- identical bytes either way.
        alice, bob = make_sets(150, 11, seed=5)
        result_numba = reconcile_cpi(alice, bob, 12, UNIVERSE, 9, field_kernel="numba")
        result_py = reconcile_cpi(alice, bob, 12, UNIVERSE, 9, field_kernel="python")
        assert result_numba.success and result_py.success
        assert result_numba.recovered == result_py.recovered
        assert transcript_fingerprint(result_numba.transcript) == (
            transcript_fingerprint(result_py.transcript)
        )


class TestMultiroundAcrossKernels:
    def run(self, field_kernel, unknown=False):
        instance = sets_of_sets_instance(
            num_children=24,
            child_size=12,
            universe_size=4096,
            num_changes=10,
            seed=99,
            max_children_touched=5,
        )
        if unknown:
            return reconcile_multiround_unknown(
                instance.alice,
                instance.bob,
                instance.universe_size,
                instance.max_child_size,
                seed=17,
                field_kernel=field_kernel,
            )
        return reconcile_multiround(
            instance.alice,
            instance.bob,
            instance.planted_difference,
            instance.universe_size,
            instance.max_child_size,
            seed=17,
            field_kernel=field_kernel,
        )

    @pytest.mark.parametrize("unknown", [False, True])
    def test_identical_results_and_transcripts(self, unknown):
        result_py = self.run("python", unknown)
        result_np = self.run("numpy", unknown)
        assert result_py.success and result_np.success
        assert result_py.recovered == result_np.recovered
        assert result_py.details == result_np.details
        assert transcript_fingerprint(result_py.transcript) == transcript_fingerprint(
            result_np.transcript
        )
        # The protocol must actually have exercised the CPI path for this
        # instance, otherwise the kernel comparison is vacuous.
        assert result_py.details["cpi_payloads"] > 0
