"""Cross-module integration tests: the public API end to end."""

import repro
from repro import (
    SetOfSets,
    minimum_matching_difference,
    reconcile_cascading,
    reconcile_multiround_unknown,
)
from repro.db import reconcile_tables
from repro.documents import DocumentCollection, reconcile_collections
from repro.graphs import forest_canonical_form, reconcile_forest, reconcile_labeled_graphs
from repro.workloads import (
    edited_corpus_pair,
    flipped_table_pair,
    forest_instance,
    sets_of_sets_instance,
)
from repro.graphs.random_graphs import reconciliation_pair


def test_version_exported():
    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_snippet():
    alice = SetOfSets([{1, 2, 3}, {4, 5}, {6}])
    bob = SetOfSets([{1, 2, 3}, {4, 5, 7}, {6}])
    result = reconcile_cascading(
        alice, bob, difference_bound=2, universe_size=8, max_child_size=4, seed=42
    )
    assert result.success and result.recovered == alice


def test_sets_of_sets_pipeline_with_unknown_difference():
    instance = sets_of_sets_instance(20, 12, 256, 7, seed=1, max_children_touched=3)
    result = reconcile_multiround_unknown(
        instance.alice, instance.bob, 256, instance.max_child_size, seed=2
    )
    assert result.success and result.recovered == instance.alice
    assert result.num_rounds == 4
    assert result.total_bits > 0


def test_database_pipeline():
    alice, bob, flips = flipped_table_pair(30, 48, 0.4, 5, seed=3, max_rows_touched=3)
    result = reconcile_tables(alice, bob, flips + 2, seed=4)
    assert result.success and result.recovered == alice


def test_document_pipeline():
    alice_texts, bob_texts = edited_corpus_pair(20, 40, 2, 2, 1, seed=5)
    alice = DocumentCollection(alice_texts, 3, seed=5, signature_size=16)
    bob = DocumentCollection(bob_texts, 3, seed=5, signature_size=16)
    result = reconcile_collections(alice, bob, 32, seed=6, differing_children_bound=8)
    assert result.success and result.recovered == alice.to_sets_of_sets()


def test_forest_pipeline():
    instance = forest_instance(60, 2, seed=7, max_depth=4)
    result = reconcile_forest(
        instance.alice, instance.bob, max(1, instance.num_edits), instance.max_depth, seed=8
    )
    assert result.success
    assert forest_canonical_form(result.recovered) == forest_canonical_form(instance.alice)


def test_labeled_graph_pipeline():
    pair = reconciliation_pair(80, 0.25, 6, seed=9, relabel_alice=False)
    result = reconcile_labeled_graphs(pair.alice, pair.bob, 8, seed=10)
    assert result.success and result.recovered == pair.alice


def test_matching_difference_agrees_with_planted_difference():
    instance = sets_of_sets_instance(15, 8, 128, 5, seed=11, max_children_touched=2)
    assert minimum_matching_difference(instance.alice, instance.bob) <= 5
