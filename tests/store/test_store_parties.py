"""Byte-identity pins: a store-backed party is indistinguishable on the
wire from its from-scratch twin -- same labels, same charged bits, same
serialized bytes, frame for frame -- and recovers the same sets."""

import random

import pytest

from repro.protocols.parties.setrecon import SetReconContext, ibf_parties
from repro.protocols.session import run_session
from repro.protocols.transports import SerializingTransport
from repro.store import SketchConfig, SketchStore, StoreView
from repro.store.parties import stored_ibf_party

UNIVERSE = 1 << 24
SEED = 2018
BOUND = 24


class RecordingTransport(SerializingTransport):
    """A serializing transport that also keeps every frame's exact bytes."""

    def __init__(self):
        super().__init__()
        self.frames = []

    def on_send(self, sender, send):
        data = super().on_send(sender, send)
        self.frames.append((sender, send.label, data))
        return data


def make_instance(seed=SEED, size=400, differences=10):
    rng = random.Random(seed)
    server_set = set(rng.sample(range(UNIVERSE), size))
    client_set = set(server_set)
    for element in rng.sample(sorted(server_set), differences // 2):
        client_set.discard(element)
    while len(client_set) < size + differences - differences // 2 - differences // 2:
        element = rng.randrange(UNIVERSE)
        if element not in server_set:
            client_set.add(element)
    return server_set, client_set


def make_view(server_set, *, materialize=False, mutations=0):
    """A store view over ``server_set``, optionally arriving at that set via
    ``mutations`` incremental batches (so live-maintained state is tested,
    not just a fresh encode)."""
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore()
    if mutations:
        rng = random.Random(SEED + 5)
        history = set(server_set)
        removed = []
        for _ in range(mutations):
            victim = rng.choice(sorted(history))
            history.discard(victim)
            removed.append(victim)
        view = StoreView(store, "server", config, history, materialize=materialize)
        # Prime every sketch kind, then mutate back to the real set.
        view.table(BOUND)
        view.estimator(1)
        view.estimator(2)
        _ = view.set_hash
        for victim in removed:
            store.apply("server", [victim], [])
            history.add(victim)
        assert history == server_set
        view.dataset = server_set
        return view
    return StoreView(store, "server", config, server_set, materialize=materialize)


def scratch_frames(server_set, client_set, bound, server_role):
    ctx = SetReconContext(UNIVERSE, SEED)
    alice, bob = ibf_parties(
        server_set if server_role == "alice" else client_set,
        client_set if server_role == "alice" else server_set,
        bound,
        ctx,
    )
    transport = RecordingTransport()
    result = run_session(alice, bob, transport=transport)
    return transport.frames, result


def stored_frames(view, client_set, bound, server_role):
    ctx = SetReconContext(UNIVERSE, SEED)
    server_party = stored_ibf_party(server_role, view, bound)
    _, client_bob = ibf_parties(set(), client_set, bound, ctx)
    client_alice, _ = ibf_parties(client_set, set(), bound, ctx)
    if server_role == "alice":
        alice, bob = server_party, client_bob
    else:
        alice, bob = client_alice, server_party
    transport = RecordingTransport()
    result = run_session(alice, bob, transport=transport)
    return transport.frames, result


@pytest.mark.parametrize("server_role", ["alice", "bob"])
@pytest.mark.parametrize("bound", [BOUND, None])
def test_stored_party_is_byte_identical_to_scratch(server_role, bound):
    server_set, client_set = make_instance()
    reference_frames, reference = scratch_frames(
        server_set, client_set, bound, server_role
    )
    view = make_view(server_set, materialize=True)
    frames, result = stored_frames(view, client_set, bound, server_role)
    assert frames == reference_frames
    assert result.success and reference.success
    assert result.total_bits == reference.total_bits
    assert result.num_rounds == reference.num_rounds


@pytest.mark.parametrize("bound", [BOUND, None])
def test_stored_party_stays_identical_after_incremental_history(bound):
    """The live-maintained sketches (not a fresh encode) produce the bytes."""
    server_set, client_set = make_instance()
    reference_frames, _ = scratch_frames(server_set, client_set, bound, "alice")
    view = make_view(server_set, mutations=7)
    frames, result = stored_frames(view, client_set, bound, "alice")
    assert frames == reference_frames
    assert result.success


def test_stored_bob_materializes_the_reconciled_set():
    server_set, client_set = make_instance()
    view = make_view(server_set, materialize=True)
    _, result = stored_frames(view, client_set, BOUND, "bob")
    assert result.success
    assert result.recovered == client_set


def test_stored_bob_skips_materialization_by_default():
    server_set, client_set = make_instance()
    view = make_view(server_set)
    _, result = stored_frames(view, client_set, BOUND, "bob")
    assert result.success
    assert result.recovered is None
    assert result.details.get("served_from_store")


def test_stored_bob_rejects_dishonest_hash():
    """A wrong client-side hash fails verification, as in the scratch party."""
    server_set, client_set = make_instance()
    config = SketchConfig(UNIVERSE, seed=SEED)
    ctx = SetReconContext(UNIVERSE, SEED)
    store = SketchStore()
    view = StoreView(store, "server", config, server_set)

    from repro.protocols.parties.setrecon import ibf_alice_known

    def lying_alice():
        gen = ibf_alice_known(client_set, BOUND, ctx)
        send = next(gen)
        table, set_hash, size = send.payload
        doctored = send.__class__(
            send.label, send.size_bits,
            payload=(table, set_hash ^ 1, size), codec=send.codec,
        )
        yield doctored
        return (yield from gen)

    result = run_session(
        lying_alice(), stored_ibf_party("bob", view, BOUND),
        transport=SerializingTransport(),
    )
    assert not result.success
