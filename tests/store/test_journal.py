"""The append-only update journal: write-ahead durability for the store."""

import pytest

from repro.errors import StoreError
from repro.store import UpdateJournal


def test_append_and_replay_roundtrip(tmp_path):
    journal = UpdateJournal(tmp_path / "j.jsonl")
    journal.append(1, (10, 11), (5,))
    journal.append(2, (), (10,))
    journal.append(3, (42,), ())
    assert journal.last_seq() == 3
    assert journal.replay(0) == [
        (1, (10, 11), (5,)),
        (2, (), (10,)),
        (3, (42,), ()),
    ]
    assert journal.replay(2) == [(3, (42,), ())]
    assert journal.replay(3) == []
    journal.close()


def test_empty_and_missing_journal(tmp_path):
    journal = UpdateJournal(tmp_path / "missing.jsonl")
    assert journal.last_seq() == 0
    assert journal.replay(0) == []
    journal.close()


def test_reopen_sees_prior_appends(tmp_path):
    path = tmp_path / "j.jsonl"
    first = UpdateJournal(path)
    first.append(1, (7,), ())
    first.close()
    second = UpdateJournal(path)
    assert second.last_seq() == 1
    second.append(2, (8,), (7,))
    assert second.replay(0) == [(1, (7,), ()), (2, (8,), (7,))]
    second.close()


def test_torn_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = UpdateJournal(path)
    journal.append(1, (1,), ())
    journal.append(2, (2,), ())
    journal.close()
    # Simulate a crash mid-append: the final line is cut short.
    text = path.read_text()
    path.write_text(text[: text.rindex('{"seq":2') + 8])
    reopened = UpdateJournal(path)
    assert reopened.replay(0) == [(1, (1,), ())]
    assert reopened.last_seq() == 1
    reopened.close()


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = UpdateJournal(path)
    journal.append(1, (1,), ())
    journal.append(2, (2,), ())
    journal.close()
    lines = path.read_text().splitlines()
    lines[0] = lines[0][:-4]  # damage a non-final line
    path.write_text("\n".join(lines) + "\n")
    reopened = UpdateJournal(path)
    with pytest.raises(StoreError):
        reopened.replay(0)
    reopened.close()


def test_compact_keeps_only_the_suffix(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = UpdateJournal(path)
    for seq in range(1, 6):
        journal.append(seq, (seq,), ())
    journal.compact(3)
    assert journal.replay(0) == [(4, (4,), ()), (5, (5,), ())]
    assert journal.last_seq() == 5
    journal.compact(5)
    assert journal.replay(0) == []
    journal.close()


def test_unlink_removes_the_file(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = UpdateJournal(path)
    journal.append(1, (1,), ())
    journal.unlink()
    assert not path.exists()
