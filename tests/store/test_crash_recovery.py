"""Crash-recovery property tests: arbitrary insert/delete/sync/snapshot
sequences interleaved with simulated process death.  After every recovery
the journal-replayed sketches must be byte-identical to a fresh encode of
the dataset -- durability is exact, not approximate."""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iblt import IBLT
from repro.protocols.parties.setrecon import set_verification_hash
from repro.store import SketchConfig, SketchStore

UNIVERSE = 1 << 20
SEED = 2018
BOUND = 16
KEY = "d"

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("mutate"), st.integers(0, 4), st.integers(0, 4)),
        st.just(("sync",)),
        st.just(("snapshot",)),
        st.just(("crash",)),
        st.just(("crash-torn",)),
    ),
    max_size=24,
)


def fresh_bits(config, dataset):
    params = config.context().table_params(BOUND)
    return IBLT.from_items(params, dataset, backend=config.backend).serialize()


def check_sync(store, config, dataset):
    """The store must serve exactly what a from-scratch encode would."""
    live = store.table_for(KEY, config, BOUND, dataset)
    assert live.serialize() == fresh_bits(config, dataset)
    assert store.size_of(KEY, dataset) == len(dataset)
    assert store.verification_hash(KEY, config, dataset) == set_verification_hash(
        config.seed, dataset
    )


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_any_history_with_crashes_recovers_byte_identical_sketches(ops):
    config = SketchConfig(UNIVERSE, seed=SEED)
    with tempfile.TemporaryDirectory() as root:
        dataset = set(range(1000, 1300))
        fresh_keys = iter(range(UNIVERSE - 1, UNIVERSE - 10_000, -1))
        store = SketchStore(root)
        check_sync(store, config, dataset)  # prime every sketch kind

        for op in ops:
            if op[0] == "mutate":
                inserts = [next(fresh_keys) for _ in range(op[1])]
                deletes = sorted(dataset)[: op[2]]
                store.apply(KEY, inserts, deletes, dataset=dataset)
                dataset.difference_update(deletes)
                dataset.update(inserts)
            elif op[0] == "sync":
                check_sync(store, config, dataset)
            elif op[0] == "snapshot":
                store.size_of(KEY, dataset)  # load after a crash, like the server
                store.snapshot(KEY)
            else:
                # Process death: the store object is abandoned (no close,
                # no flush) and a new process opens the same root.
                if op[0] == "crash-torn":
                    journal = Path(root) / f"{KEY}.journal.jsonl"
                    with open(journal, "a", encoding="utf-8") as handle:
                        handle.write('{"seq":')  # the append the crash cut short
                store = SketchStore(root)

        check_sync(store, config, dataset)
        store.close()


@settings(max_examples=15, deadline=None)
@given(
    deltas=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=8
    ),
    snapshot_after=st.integers(0, 8),
)
def test_recovered_state_survives_repeated_restarts(deltas, snapshot_after):
    """Snapshot at an arbitrary point, crash after every batch: replay must
    land on the same bytes regardless of where the snapshot boundary fell."""
    config = SketchConfig(UNIVERSE, seed=SEED)
    with tempfile.TemporaryDirectory() as root:
        dataset = set(range(2000, 2200))
        fresh_keys = iter(range(UNIVERSE - 1, UNIVERSE - 1000, -1))
        store = SketchStore(root)
        check_sync(store, config, dataset)

        for index, (num_ins, num_del) in enumerate(deltas):
            inserts = [next(fresh_keys) for _ in range(num_ins)]
            deletes = sorted(dataset)[:num_del]
            store.apply(KEY, inserts, deletes, dataset=dataset)
            dataset.difference_update(deletes)
            dataset.update(inserts)
            if index == snapshot_after:
                store.snapshot(KEY)
            store = SketchStore(root)  # crash after every batch

        check_sync(store, config, dataset)
        store.close()
