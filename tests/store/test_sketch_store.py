"""SketchStore invariants: live sketches equal from-scratch encodes,
bit for bit, through arbitrary mutation histories; durability round-trips;
config disagreement invalidates instead of serving stale bytes."""

import dataclasses
import json
import random

import pytest

from repro.errors import ParameterError, StoreError
from repro.iblt import IBLT
from repro.protocols.parties.setrecon import set_verification_hash
from repro.service.metrics import ServiceMetrics
from repro.store import SketchConfig, SketchStore

UNIVERSE = 1 << 24
SEED = 2018


def make_dataset(size=500, seed=SEED):
    return set(random.Random(seed).sample(range(UNIVERSE), size))


def fresh_table(config, bound, dataset):
    params = config.context().table_params(bound)
    return IBLT.from_items(params, dataset, backend=config.backend)


def test_live_table_equals_fresh_encode_after_mutations():
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore()
    store.table_for("d", config, 20, dataset)  # prime

    rng = random.Random(SEED + 1)
    for _ in range(5):
        deletes = rng.sample(sorted(dataset), 4)
        inserts = []
        while len(inserts) < 4:
            key = rng.randrange(UNIVERSE)
            if key not in dataset:
                inserts.append(key)
        store.apply("d", inserts, deletes)
        dataset.difference_update(deletes)
        dataset.update(inserts)

    live = store.table_for("d", config, 20, dataset)
    assert live.serialize() == fresh_table(config, 20, dataset).serialize()
    assert store.size_of("d") == len(dataset)
    assert store.verification_hash("d", config, dataset) == set_verification_hash(
        SEED, dataset
    )


def test_same_geometry_shares_one_table_and_counts_hits():
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    metrics = ServiceMetrics()
    store = SketchStore(metrics=metrics)
    first = store.table_for("d", config, 20, dataset)
    assert metrics.store_misses == 1 and metrics.store_hits == 0
    again = store.table_for("d", config, 20, dataset)
    assert again is first
    assert metrics.store_hits == 1
    # A different bound mapping to a different cell count is a fresh table.
    other = store.table_for("d", config, 200, dataset)
    assert other is not first
    assert metrics.store_misses == 2


def test_live_estimator_equals_fresh_one():
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore()
    store.estimator_for("d", config, 1, dataset)  # prime

    inserts, deletes = [UNIVERSE - 1, UNIVERSE - 2], sorted(dataset)[:2]
    store.apply("d", inserts, deletes)
    dataset.difference_update(deletes)
    dataset.update(inserts)

    fresh = config.context().make_estimator()
    fresh.update_all(dataset, 1)
    live = store.estimator_for("d", config, 1, dataset)
    probe = config.context().make_estimator()
    probe.update_all(make_dataset(seed=SEED + 9), 2)
    assert probe.merge(live).query() == probe.merge(fresh).query()


def test_estimator_side_must_be_1_or_2():
    store = SketchStore()
    with pytest.raises(ParameterError):
        store.estimator_for("d", SketchConfig(UNIVERSE), 3, make_dataset())


def test_foreign_params_are_refused():
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore()
    params = config.context().table_params(20)
    doctored = dataclasses.replace(params, seed=params.seed + 1)
    with pytest.raises(StoreError):
        store.table_for_params("d", config, doctored, dataset)


def test_apply_requires_loaded_entry_or_dataset():
    store = SketchStore()
    with pytest.raises(StoreError):
        store.apply("never-seen", [1], [])


def test_snapshot_and_restart_roundtrip(tmp_path):
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore(tmp_path)
    store.table_for("d", config, 20, dataset)
    store.estimator_for("d", config, 1, dataset)
    store.verification_hash("d", config, dataset)
    store.apply("d", [UNIVERSE - 1], [])
    dataset.add(UNIVERSE - 1)
    assert store.is_dirty("d")
    store.snapshot("d")
    assert not store.is_dirty("d")
    # Post-snapshot mutations live only in the journal.
    victim = next(iter(dataset))
    store.apply("d", [], [victim])
    dataset.discard(victim)
    store.close()

    metrics = ServiceMetrics()
    reopened = SketchStore(tmp_path, metrics=metrics)
    live = reopened.table_for("d", config, 20, None)
    assert live.serialize() == fresh_table(config, 20, dataset).serialize()
    assert reopened.size_of("d") == len(dataset)
    assert metrics.journal_replays == 1
    assert metrics.journal_entries_replayed == 1
    assert metrics.store_hits == 1 and metrics.store_misses == 0
    reopened.close()


def test_restart_with_changed_config_invalidates(tmp_path):
    dataset = make_dataset()
    store = SketchStore(tmp_path)
    store.table_for("d", SketchConfig(UNIVERSE, seed=SEED), 20, dataset)
    path = store.snapshot("d")
    store.close()

    # Rewrite the snapshot as if the table seed derivation had changed: the
    # recorded params no longer match what the config derives today.
    body = json.loads(path.read_text())
    body["tables"][0]["params"]["seed"] += 1
    path.write_text(json.dumps(body))

    metrics = ServiceMetrics()
    reopened = SketchStore(tmp_path, metrics=metrics)
    live = reopened.table_for("d", SketchConfig(UNIVERSE, seed=SEED), 20, dataset)
    assert live.serialize() == fresh_table(
        SketchConfig(UNIVERSE, seed=SEED), 20, dataset
    ).serialize()
    assert metrics.store_invalidations >= 1
    reopened.close()


def test_restart_with_out_of_band_dataset_change_invalidates(tmp_path):
    dataset = make_dataset()
    store = SketchStore(tmp_path)
    config = SketchConfig(UNIVERSE, seed=SEED)
    store.table_for("d", config, 20, dataset)
    store.snapshot("d")
    store.close()

    # The dataset changed while the store was down (no journal entry).
    changed = set(dataset)
    changed.add(UNIVERSE - 7)
    metrics = ServiceMetrics()
    reopened = SketchStore(tmp_path, metrics=metrics)
    live = reopened.table_for("d", config, 20, changed)
    assert live.serialize() == fresh_table(config, 20, changed).serialize()
    assert metrics.store_invalidations >= 1
    reopened.close()


def test_failed_apply_invalidates_wholesale(tmp_path):
    dataset = make_dataset()
    # A tiny universe: keys outside it poison the cell encoding.
    config = SketchConfig(1 << 8, seed=SEED)
    small = {key % (1 << 8) for key in dataset}
    store = SketchStore(tmp_path)
    store.table_for("d", config, 20, small)
    with pytest.raises(StoreError):
        store.apply("d", [1 << 30], [])
    assert "d" not in store.loaded_datasets()
    assert not (tmp_path / "d.journal.jsonl").exists()
    store.close()


def test_journal_lag_and_flush(tmp_path):
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore(tmp_path)
    store.table_for("d", config, 20, dataset)
    assert store.journal_lag("d") == 0
    store.apply("d", [UNIVERSE - 1], [])
    store.apply("d", [UNIVERSE - 2], [])
    assert store.journal_lag("d") == 2
    assert store.dirty_datasets() == ["d"]
    assert store.flush() == 1
    assert store.journal_lag("d") == 0
    assert store.dirty_datasets() == []
    store.close()


def test_memory_store_is_never_dirty():
    store = SketchStore()
    store.table_for("d", SketchConfig(UNIVERSE), 20, make_dataset())
    store.apply("d", [UNIVERSE - 1], [])
    assert not store.durable
    assert store.dirty_datasets() == []
    with pytest.raises(StoreError):
        store.snapshot("d")


def test_invalidate_drops_memory_and_disk(tmp_path):
    dataset = make_dataset()
    config = SketchConfig(UNIVERSE, seed=SEED)
    store = SketchStore(tmp_path)
    store.table_for("d", config, 20, dataset)
    store.apply("d", [UNIVERSE - 1], [])
    snapshot_path = store.snapshot("d")
    store.invalidate("d")
    assert "d" not in store.loaded_datasets()
    assert not snapshot_path.exists()
    assert not (tmp_path / "d.journal.jsonl").exists()
    store.close()
