"""Tests for sets of multisets / multisets of multisets (Section 3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.setsofsets import (
    MultisetOfMultisets,
    decode_multiset_children,
    encode_multiset_children,
    reconcile_multisets_of_multisets,
)
from repro.core.setsofsets.nested import encoded_universe_size
from repro.errors import ParameterError


class TestMultisetOfMultisets:
    def test_counts_duplicates(self):
        parent = MultisetOfMultisets([[1, 2], [2, 1], [3]])
        assert parent.num_children == 3
        assert parent.num_distinct_children == 2
        assert parent.max_parent_multiplicity == 2

    def test_element_multiplicity(self):
        parent = MultisetOfMultisets([[1, 1, 1, 2]])
        assert parent.max_element_multiplicity == 3
        assert parent.max_child_size == 4
        assert parent.total_elements == 4

    def test_total_elements_counts_parent_multiplicity(self):
        parent = MultisetOfMultisets([[1, 2], [1, 2], [3]])
        assert parent.total_elements == 5

    def test_equality_order_independent(self):
        assert MultisetOfMultisets([[1, 2], [3]]) == MultisetOfMultisets([[3], [2, 1]])

    def test_from_counts_validation(self):
        with pytest.raises(ParameterError):
            MultisetOfMultisets.from_counts({(1, 2): 0})

    def test_invalid_elements(self):
        with pytest.raises(ParameterError):
            MultisetOfMultisets([[-1]])

    def test_empty_parent(self):
        parent = MultisetOfMultisets(())
        assert parent.num_children == 0
        assert parent.max_child_size == 0


class TestEncoding:
    def test_round_trip(self):
        parent = MultisetOfMultisets([[1, 1, 2], [3], [3], []])
        encoded = encode_multiset_children(parent, 16, 4, 4)
        decoded = decode_multiset_children(encoded, 16, 4)
        assert decoded == parent

    def test_bounds_validated(self):
        parent = MultisetOfMultisets([[1, 1, 1]])
        with pytest.raises(ParameterError):
            encode_multiset_children(parent, 16, 2, 4)
        parent = MultisetOfMultisets([[1], [1], [1]])
        with pytest.raises(ParameterError):
            encode_multiset_children(parent, 16, 2, 2)

    def test_universe_size_formula(self):
        assert encoded_universe_size(16, 4, 4) > 16 * 5

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=15), max_size=5),
            min_size=0,
            max_size=6,
        )
    )
    def test_round_trip_property(self, children):
        parent = MultisetOfMultisets(children)
        bound_elem = max(1, parent.max_element_multiplicity)
        bound_parent = max(1, parent.max_parent_multiplicity)
        encoded = encode_multiset_children(parent, 16, bound_elem, bound_parent)
        assert decode_multiset_children(encoded, 16, bound_elem) == parent


class TestReconciliation:
    def test_basic(self):
        alice = MultisetOfMultisets([[1, 1, 2], [3, 4], [3, 4], [9]])
        bob = MultisetOfMultisets([[1, 2], [3, 4], [3, 4], [9]])
        result = reconcile_multisets_of_multisets(alice, bob, 2, 16, seed=1)
        assert result.success and result.recovered == alice

    def test_parent_multiplicity_change(self):
        alice = MultisetOfMultisets([[5, 6], [5, 6], [7]])
        bob = MultisetOfMultisets([[5, 6], [7]])
        result = reconcile_multisets_of_multisets(alice, bob, 2, 16, seed=2)
        assert result.success and result.recovered == alice

    def test_identical(self):
        alice = MultisetOfMultisets([[1], [2, 2]])
        result = reconcile_multisets_of_multisets(alice, alice, 1, 8, seed=3)
        assert result.success and result.recovered == alice

    def test_custom_protocol(self):
        from repro.core.setsofsets.multiround import reconcile_multiround

        alice = MultisetOfMultisets([[1, 1], [2, 3]])
        bob = MultisetOfMultisets([[1], [2, 3]])
        result = reconcile_multisets_of_multisets(
            alice, bob, 2, 8, seed=4, protocol=reconcile_multiround
        )
        assert result.success and result.recovered == alice
