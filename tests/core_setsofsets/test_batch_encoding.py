"""Tests for the batched child-sketch pipeline and the PR 3 bugfixes.

Covers:

* ``ChildEncodingScheme.encode_all`` / ``child_set_hash_many`` bit-identity
  with the scalar paths, on every backend;
* the per-reconcile :class:`ChildTableCache` (candidate tables built once,
  not once per (Alice key, candidate) pair);
* the repeated-doubling clamp: the largest permitted bound is attempted even
  when it is not a power of two times the initial bound.
"""

import random

import pytest

from repro.core.setsofsets import (
    SetOfSets,
    reconcile_cascading,
    reconcile_cascading_unknown,
    reconcile_iblt_of_iblts,
    reconcile_iblt_of_iblts_unknown,
)
from repro.core.setsofsets.encoding import (
    ChildEncodingScheme,
    ChildTableCache,
    child_set_hash,
    child_set_hash_many,
)
from repro.iblt import IBLT, IBLTParameters, NumpyCellStore
from repro.workloads import sets_of_sets_instance

UNIVERSE = 512
BACKENDS = ["python"] + (["numpy"] if NumpyCellStore.available() else [])

PARAMS = IBLTParameters.for_difference(
    4, 24, seed=31, num_hashes=3, checksum_bits=24, count_bits=16
)
SCHEME = ChildEncodingScheme(PARAMS, 48, seed=77)


def random_children(count, seed=3):
    rng = random.Random(seed)
    return [
        frozenset(rng.sample(range(1 << 20), rng.randrange(1, 9)))
        for _ in range(count)
    ]


class TestBatchEncoding:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_encode_all_matches_scalar_encode(self, backend):
        children = random_children(30)
        assert SCHEME.encode_all(children, backend=backend) == [
            SCHEME.encode(child, backend=backend) for child in children
        ]

    def test_encode_all_empty(self):
        assert SCHEME.encode_all([]) == []

    def test_child_set_hash_many_matches_scalar(self):
        children = random_children(20, seed=9) + [frozenset()]
        assert child_set_hash_many(children, 5, 48) == [
            child_set_hash(child, 5, 48) for child in children
        ]

    @pytest.mark.skipif(
        not NumpyCellStore.available(), reason="NumPy not installed"
    )
    def test_encode_all_identical_across_backends(self):
        children = random_children(30, seed=15)
        assert SCHEME.encode_all(children, backend="python") == SCHEME.encode_all(
            children, backend="numpy"
        )


class TestChildTableCache:
    def test_cached_tables_match_from_items(self):
        children = random_children(10, seed=21)
        cache = ChildTableCache(SCHEME)
        cache.add_children(children)
        for child in children:
            assert cache.get(child) == IBLT.from_items(PARAMS, child)

    def test_add_children_builds_each_table_once(self):
        children = random_children(6, seed=23)
        cache = ChildTableCache(SCHEME)
        cache.add_children(children)
        first = cache.get(children[0])
        cache.add_children(children)  # second add is a no-op
        assert cache.get(children[0]) is first
        assert len(cache) == len(set(children))

    def test_lazy_build_on_get(self):
        cache = ChildTableCache(SCHEME)
        child = frozenset({1, 2, 3})
        assert cache.get(child) == IBLT.from_items(PARAMS, child)
        assert len(cache) == 1


class TestNoRedundantTableBuilds:
    """The satellite bugfix: decode loops must not rebuild candidate tables
    per (Alice key, candidate) pair via ``IBLT.from_items``."""

    @pytest.fixture
    def from_items_counter(self, monkeypatch):
        calls = []
        original = IBLT.from_items.__func__

        def counting(cls, params, items, backend=None):
            calls.append(params)
            return original(cls, params, items, backend=backend)

        monkeypatch.setattr(IBLT, "from_items", classmethod(counting))
        return calls

    def test_iblt_of_iblts_decode_loop(self, from_items_counter):
        instance = sets_of_sets_instance(
            24, 12, UNIVERSE, 12, seed=41, max_children_touched=6
        )
        result = reconcile_iblt_of_iblts(
            instance.alice, instance.bob, instance.planted_difference, UNIVERSE,
            seed=9, differing_children_bound=instance.differing_children + 1,
        )
        assert result.success and result.recovered == instance.alice
        assert from_items_counter == []

    def test_cascading_decode_loop(self, from_items_counter):
        instance = sets_of_sets_instance(
            24, 12, UNIVERSE, 12, seed=43, max_children_touched=6
        )
        result = reconcile_cascading(
            instance.alice, instance.bob, instance.planted_difference, UNIVERSE,
            instance.max_child_size, seed=9,
        )
        assert result.success and result.recovered == instance.alice
        assert from_items_counter == []


class TestDoublingClampToMaxBound:
    """The satellite bugfix: ``bound *= 2`` must not jump past ``max_bound``
    without the largest permitted bound ever being attempted."""

    def test_iblt_of_iblts_succeeds_exactly_at_clamped_bound(self):
        # Chosen (by search over seeds) so that bounds 1, 2 and 4 all fail
        # and the clamped final attempt at max_bound=5 succeeds; before the
        # clamp the doubling jumped 4 -> 8 > 5 and the run failed outright.
        instance = sets_of_sets_instance(
            24, 12, UNIVERSE, 24, seed=3, max_children_touched=8
        )
        result = reconcile_iblt_of_iblts_unknown(
            instance.alice, instance.bob, UNIVERSE, seed=103, max_bound=5
        )
        assert result.success and result.recovered == instance.alice
        assert result.details["final_difference_bound"] == 5
        assert result.attempts == 4  # bounds 1, 2, 4, 5

    def test_iblt_of_iblts_attempts_max_bound_before_giving_up(self):
        # A difference far above max_bound: every attempt fails, but the
        # attempt sequence must still end exactly at max_bound.
        instance = sets_of_sets_instance(
            16, 12, UNIVERSE, 48, seed=5, max_children_touched=12
        )
        result = reconcile_iblt_of_iblts_unknown(
            instance.alice, instance.bob, UNIVERSE, seed=11, max_bound=5
        )
        assert not result.success
        assert result.details["failure"] == "exceeded-max-bound"
        assert result.attempts == 4  # bounds 1, 2, 4, 5 -- not 1, 2, 4

    def test_cascading_succeeds_exactly_at_clamped_bound(self):
        # Bounds 1, 2 and 4 fail; the clamped final attempt at 5 succeeds
        # (before the clamp the doubling jumped 4 -> 8 > 5 and failed).
        instance = sets_of_sets_instance(
            16, 12, UNIVERSE, 48, seed=7, max_children_touched=12
        )
        result = reconcile_cascading_unknown(
            instance.alice, instance.bob, UNIVERSE, instance.max_child_size,
            seed=11, max_bound=5,
        )
        assert result.success and result.recovered == instance.alice
        assert result.details["final_difference_bound"] == 5
        assert result.attempts == 4  # bounds 1, 2, 4, 5

    def test_cascading_attempts_max_bound_before_giving_up(self):
        instance = sets_of_sets_instance(
            16, 12, UNIVERSE, 80, seed=0, max_children_touched=16
        )
        result = reconcile_cascading_unknown(
            instance.alice, instance.bob, UNIVERSE, instance.max_child_size,
            seed=11, max_bound=5,
        )
        assert not result.success
        assert result.details["failure"] == "exceeded-max-bound"
        assert result.attempts == 4  # bounds 1, 2, 4, 5 -- not 1, 2, 4

    def test_initial_bound_above_max_bound_attempts_nothing(self):
        alice = SetOfSets([{1, 2}])
        result = reconcile_iblt_of_iblts_unknown(
            alice, alice, UNIVERSE, seed=1, initial_bound=8, max_bound=5
        )
        assert not result.success and result.attempts == 0
