"""Tests for the SetOfSets type, difference measures and child encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.setsofsets import (
    SetOfSets,
    differing_children_count,
    minimum_matching_difference,
    relaxed_difference,
)
from repro.core.setsofsets.encoding import (
    ChildEncodingScheme,
    ExplicitChildScheme,
    child_set_hash,
    parent_hash,
)
from repro.errors import CapacityError, ParameterError
from repro.iblt import IBLTParameters


class TestSetOfSets:
    def test_parameters(self):
        parent = SetOfSets([{1, 2, 3}, {4}, set()])
        assert parent.num_children == 3
        assert parent.max_child_size == 3
        assert parent.total_elements == 4
        assert parent.universe_upper_bound == 5

    def test_duplicates_collapse(self):
        assert SetOfSets([{1, 2}, {2, 1}]).num_children == 1

    def test_empty_parent(self):
        parent = SetOfSets.empty()
        assert parent.num_children == 0
        assert parent.max_child_size == 0
        assert parent.total_elements == 0

    def test_membership_and_iteration(self):
        parent = SetOfSets([{3, 1}, {2}])
        assert {1, 3} in parent and {9} not in parent
        assert list(parent) == sorted(parent.children, key=sorted)

    def test_replace_children(self):
        parent = SetOfSets([{1}, {2}, {3}])
        updated = parent.replace_children([{2}], [{4, 5}])
        assert updated == SetOfSets([{1}, {3}, {4, 5}])

    def test_equality_and_hash(self):
        assert SetOfSets([{1}, {2}]) == SetOfSets([{2}, {1}])
        assert hash(SetOfSets([{1}])) == hash(SetOfSets([{1}]))

    def test_invalid_elements_rejected(self):
        with pytest.raises(ParameterError):
            SetOfSets([{-1}])
        with pytest.raises(ParameterError):
            SetOfSets([{"a"}])


class TestDifferenceMeasures:
    def test_identical_parents(self):
        parent = SetOfSets([{1, 2}, {3}])
        assert minimum_matching_difference(parent, parent) == 0
        assert relaxed_difference(parent, parent) == 0
        assert differing_children_count(parent, parent) == 0

    def test_single_element_change(self):
        alice = SetOfSets([{1, 2}, {3, 4}])
        bob = SetOfSets([{1, 2}, {3, 5}])
        assert minimum_matching_difference(alice, bob) == 2
        assert differing_children_count(alice, bob) == 2

    def test_extra_child(self):
        alice = SetOfSets([{1, 2}, {7, 8, 9}])
        bob = SetOfSets([{1, 2}])
        assert minimum_matching_difference(alice, bob) == 3

    def test_empty_parents(self):
        assert minimum_matching_difference(SetOfSets.empty(), SetOfSets.empty()) == 0

    def test_relaxed_at_most_twice_matching(self):
        alice = SetOfSets([{1, 2, 3}, {10, 11}])
        bob = SetOfSets([{1, 2, 4}, {10, 12}])
        assert relaxed_difference(alice, bob) <= 2 * minimum_matching_difference(alice, bob)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.sets(st.integers(0, 30), max_size=5), min_size=1, max_size=5),
        st.lists(st.sets(st.integers(0, 30), max_size=5), min_size=1, max_size=5),
    )
    def test_matching_is_symmetric_and_nonnegative(self, alice_children, bob_children):
        alice, bob = SetOfSets(alice_children), SetOfSets(bob_children)
        forward = minimum_matching_difference(alice, bob)
        backward = minimum_matching_difference(bob, alice)
        assert forward == backward >= 0


class TestChildHashing:
    def test_order_invariant(self):
        assert child_set_hash([3, 1, 2], 7, 48) == child_set_hash([1, 2, 3], 7, 48)

    def test_seed_sensitivity(self):
        assert child_set_hash([1, 2], 7, 48) != child_set_hash([1, 2], 8, 48)

    def test_parent_hash_detects_changes(self):
        alice = SetOfSets([{1, 2}, {3}])
        bob = SetOfSets([{1, 2}, {4}])
        assert parent_hash(alice, 1) != parent_hash(bob, 1)
        assert parent_hash(alice, 1) == parent_hash(SetOfSets([{3}, {1, 2}]), 1)


class TestChildEncodingScheme:
    def scheme(self):
        params = IBLTParameters.for_difference(4, 16, seed=5, num_hashes=3)
        return ChildEncodingScheme(params, hash_bits=32, seed=5)

    def test_key_width(self):
        scheme = self.scheme()
        assert scheme.key_bits == scheme.child_params.size_bits + 32
        key = scheme.encode({1, 2, 3})
        assert key.bit_length() <= scheme.key_bits

    def test_encode_decode_round_trip(self):
        scheme = self.scheme()
        key = scheme.encode({10, 20, 30})
        table, child_hash = scheme.decode(key)
        assert child_hash == scheme.hash_of({10, 20, 30})
        positive, negative = table.decode()
        assert positive == {10, 20, 30} and negative == set()

    def test_decode_rejects_oversized_key(self):
        scheme = self.scheme()
        with pytest.raises(CapacityError):
            scheme.decode(1 << scheme.key_bits)

    def test_invalid_hash_bits(self):
        params = IBLTParameters.for_difference(4, 16, seed=5)
        with pytest.raises(ParameterError):
            ChildEncodingScheme(params, hash_bits=4, seed=5)


class TestExplicitChildScheme:
    def test_bitmap_mode_round_trip(self):
        scheme = ExplicitChildScheme(universe_size=32, max_child_size=20)
        assert scheme.uses_bitmap
        assert scheme.decode(scheme.encode({0, 5, 31})) == {0, 5, 31}

    def test_packed_mode_round_trip(self):
        scheme = ExplicitChildScheme(universe_size=1 << 20, max_child_size=4)
        assert not scheme.uses_bitmap
        assert scheme.decode(scheme.encode({7, 99, 100000})) == {7, 99, 100000}

    def test_empty_child(self):
        scheme = ExplicitChildScheme(universe_size=64, max_child_size=8)
        assert scheme.decode(scheme.encode(set())) == frozenset()

    def test_key_bits_is_min_of_encodings(self):
        small_universe = ExplicitChildScheme(32, 16)
        assert small_universe.key_bits == 32
        large_universe = ExplicitChildScheme(1 << 16, 4)
        assert large_universe.key_bits == 4 * 17

    def test_capacity_enforced(self):
        scheme = ExplicitChildScheme(universe_size=1 << 10, max_child_size=2)
        with pytest.raises(CapacityError):
            scheme.encode({1, 2, 3})
        with pytest.raises(CapacityError):
            scheme.encode({1 << 11})

    @given(st.sets(st.integers(min_value=0, max_value=255), max_size=10))
    def test_round_trip_property(self, child):
        for scheme in (ExplicitChildScheme(256, 10), ExplicitChildScheme(1 << 30, 10)):
            assert scheme.decode(scheme.encode(child)) == frozenset(child)
