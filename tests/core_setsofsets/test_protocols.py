"""End-to-end tests for the four set-of-sets reconciliation protocols."""

import pytest

from repro.core.setsofsets import (
    SetOfSets,
    reconcile_cascading,
    reconcile_cascading_unknown,
    reconcile_iblt_of_iblts,
    reconcile_iblt_of_iblts_unknown,
    reconcile_multiround,
    reconcile_multiround_unknown,
    reconcile_naive,
    reconcile_naive_unknown,
)
from repro.errors import ParameterError
from repro.workloads import sets_of_sets_instance

UNIVERSE = 512


def small_instance(seed=1, changes=6, children=24, child_size=12, touched=3):
    return sets_of_sets_instance(
        children, child_size, UNIVERSE, changes, seed, max_children_touched=touched
    )


def run_known(protocol_name, instance, seed=9):
    """Dispatch to a known-d protocol with its natural arguments."""
    alice, bob = instance.alice, instance.bob
    if protocol_name == "naive":
        return reconcile_naive(
            alice, bob, instance.differing_children + 1, UNIVERSE,
            instance.max_child_size, seed,
        )
    if protocol_name == "iblt_of_iblts":
        return reconcile_iblt_of_iblts(
            alice, bob, instance.planted_difference, UNIVERSE, seed,
            differing_children_bound=instance.differing_children + 1,
        )
    if protocol_name == "cascading":
        return reconcile_cascading(
            alice, bob, instance.planted_difference, UNIVERSE,
            instance.max_child_size, seed,
        )
    if protocol_name == "multiround":
        return reconcile_multiround(
            alice, bob, instance.planted_difference, UNIVERSE,
            instance.max_child_size, seed,
        )
    raise AssertionError(protocol_name)


KNOWN_PROTOCOLS = ["naive", "iblt_of_iblts", "cascading", "multiround"]


@pytest.mark.parametrize("protocol", KNOWN_PROTOCOLS)
class TestKnownDProtocols:
    def test_recovers_alice(self, protocol):
        instance = small_instance(seed=3)
        result = run_known(protocol, instance)
        assert result.success
        assert result.recovered == instance.alice

    def test_identical_parents(self, protocol):
        alice = SetOfSets([{1, 2, 3}, {4, 5}, {6}])
        instance = type("I", (), {})()
        instance.alice = alice
        instance.bob = alice
        instance.planted_difference = 1
        instance.differing_children = 1
        instance.max_child_size = 3
        result = run_known(protocol, instance)
        assert result.success and result.recovered == alice

    def test_single_round(self, protocol):
        instance = small_instance(seed=5)
        result = run_known(protocol, instance)
        expected_rounds = 3 if protocol == "multiround" else 1
        assert result.num_rounds == expected_rounds

    def test_different_seeds_still_succeed(self, protocol):
        instance = small_instance(seed=7)
        successes = sum(run_known(protocol, instance, seed=s).success for s in range(5))
        assert successes >= 4

    def test_larger_difference(self, protocol):
        instance = small_instance(seed=11, changes=20, touched=8)
        result = run_known(protocol, instance)
        assert result.success and result.recovered == instance.alice


class TestNaiveSpecifics:
    def test_whole_child_replacement(self):
        alice = SetOfSets([{1, 2}, {5, 6, 7}])
        bob = SetOfSets([{1, 2}, {8, 9}])
        result = reconcile_naive(alice, bob, 4, 16, 4, seed=1)
        assert result.success and result.recovered == alice

    def test_unknown_variant_two_rounds(self):
        instance = small_instance(seed=13)
        result = reconcile_naive_unknown(
            instance.alice, instance.bob, UNIVERSE, instance.max_child_size, seed=2
        )
        assert result.success and result.recovered == instance.alice
        assert result.num_rounds == 2

    def test_invalid_bound(self):
        alice = SetOfSets([{1}])
        with pytest.raises(ParameterError):
            reconcile_naive(alice, alice, -1, 8, 2, seed=1)

    def test_underestimated_bound_detected(self):
        instance = small_instance(seed=15, changes=12, touched=6)
        result = reconcile_naive(
            instance.alice, instance.bob, 1, UNIVERSE, instance.max_child_size, seed=3
        )
        assert not result.success


class TestIBLTofIBLTsSpecifics:
    def test_doubling_unknown_d(self):
        instance = small_instance(seed=17)
        result = reconcile_iblt_of_iblts_unknown(
            instance.alice, instance.bob, UNIVERSE, seed=4
        )
        assert result.success and result.recovered == instance.alice
        assert result.attempts >= 1
        assert result.details["final_difference_bound"] >= 1

    def test_fresh_child_with_fallback(self):
        # A brand-new child that matches nothing on Bob's side: the relaxed
        # fallback decodes it against an arbitrary child (here within bound).
        alice = SetOfSets([{1, 2, 3}, {100, 101}])
        bob = SetOfSets([{1, 2, 3}])
        result = reconcile_iblt_of_iblts(alice, bob, 4, UNIVERSE, seed=5)
        assert result.success and result.recovered == alice

    def test_invalid_bound(self):
        alice = SetOfSets([{1}])
        with pytest.raises(ParameterError):
            reconcile_iblt_of_iblts(alice, alice, -2, 8, seed=1)

    def test_failure_reported_when_bound_too_small(self):
        instance = small_instance(seed=19, changes=16, touched=2)
        result = reconcile_iblt_of_iblts(
            instance.alice, instance.bob, 1, UNIVERSE, seed=6,
            differing_children_bound=1, fallback_to_all_children=False,
        )
        assert not result.success


class TestCascadingSpecifics:
    def test_unknown_d_doubles_until_success(self):
        instance = small_instance(seed=21)
        result = reconcile_cascading_unknown(
            instance.alice, instance.bob, UNIVERSE, instance.max_child_size, seed=7
        )
        assert result.success and result.recovered == instance.alice
        assert result.attempts >= 1

    def test_t_star_branch(self):
        # difference bound >= max_child_size triggers the explicit T* table.
        alice = SetOfSets([{1, 2}, {3, 4}, {10, 11}])
        bob = SetOfSets([{1, 2}, {3, 4}, {20, 21}])
        result = reconcile_cascading(alice, bob, 6, 32, 2, seed=8)
        assert result.details["used_t_star"]
        assert result.success and result.recovered == alice

    def test_details_reported(self):
        instance = small_instance(seed=23)
        result = reconcile_cascading(
            instance.alice, instance.bob, instance.planted_difference, UNIVERSE,
            instance.max_child_size, seed=9,
        )
        assert result.details["num_levels"] >= 1
        assert result.details["recovered_children"] >= 0

    def test_invalid_parameters(self):
        alice = SetOfSets([{1}])
        with pytest.raises(ParameterError):
            reconcile_cascading(alice, alice, 2, 8, 0, seed=1)


class TestMultiroundSpecifics:
    def test_three_rounds_known(self):
        instance = small_instance(seed=25)
        result = run_known("multiround", instance)
        assert result.num_rounds == 3

    def test_four_rounds_unknown(self):
        instance = small_instance(seed=27)
        result = reconcile_multiround_unknown(
            instance.alice, instance.bob, UNIVERSE, instance.max_child_size, seed=10
        )
        assert result.success and result.recovered == instance.alice
        assert result.num_rounds == 4

    def test_uses_cpi_for_small_differences(self):
        instance = small_instance(seed=29, changes=2, touched=1)
        result = reconcile_multiround(
            instance.alice, instance.bob, 64, UNIVERSE, instance.max_child_size, seed=11
        )
        assert result.success
        assert result.details["cpi_payloads"] >= 1

    def test_uses_iblt_for_large_differences(self):
        instance = small_instance(seed=31, changes=10, touched=1)
        result = reconcile_multiround(
            instance.alice, instance.bob, 4, UNIVERSE, instance.max_child_size, seed=12
        )
        assert result.success
        assert result.details["iblt_payloads"] >= 1

    def test_bob_missing_whole_child(self):
        alice = SetOfSets([{1, 2, 3}, {40, 41, 42}])
        bob = SetOfSets([{1, 2, 3}])
        result = reconcile_multiround(alice, bob, 6, UNIVERSE, 3, seed=13)
        assert result.success and result.recovered == alice


class TestCommunicationShapes:
    def test_structured_beats_naive_in_dense_regime(self):
        # Table 1 regime: children are dense (h = Theta(u)), so re-sending a
        # whole child (u bits) costs much more than a child IBLT.
        instance = sets_of_sets_instance(
            32, 400, 800, 6, seed=33, max_children_touched=3
        )
        naive = reconcile_naive(
            instance.alice, instance.bob, instance.differing_children, 800,
            instance.max_child_size, seed=14,
        )
        multiround = reconcile_multiround(
            instance.alice, instance.bob, instance.planted_difference, 800,
            instance.max_child_size, seed=14,
        )
        assert naive.success and multiround.success
        assert multiround.total_bits < naive.total_bits

    def test_naive_beats_structured_for_tiny_children(self):
        # Crossover: with tiny children the explicit encoding is cheapest.
        instance = sets_of_sets_instance(32, 3, 64, 4, seed=35, max_children_touched=2)
        naive = reconcile_naive(
            instance.alice, instance.bob, instance.differing_children, 64,
            instance.max_child_size, seed=15,
        )
        flat = reconcile_iblt_of_iblts(
            instance.alice, instance.bob, instance.planted_difference, 64, seed=15,
            differing_children_bound=instance.differing_children,
        )
        assert naive.success and flat.success
        assert naive.total_bits < flat.total_bits
