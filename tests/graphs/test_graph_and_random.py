"""Tests for the Graph type, random graph generation and labeled reconciliation."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graphs import Graph, gnp_random_graph, perturb_edges, reconcile_labeled_graphs
from repro.graphs.random_graphs import (
    planted_separated_graph,
    random_permutation,
    reconciliation_pair,
)
from repro.graphs.separation import is_degree_separated


class TestGraph:
    def test_add_remove_edges(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert graph.num_edges == 2
        assert graph.has_edge(1, 0)
        graph.remove_edge(0, 1)
        assert graph.num_edges == 1 and not graph.has_edge(0, 1)

    def test_duplicate_add_is_noop(self):
        graph = Graph(3, [(0, 1)])
        graph.add_edge(1, 0)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ParameterError):
            Graph(3).add_edge(1, 1)

    def test_vertex_range_checked(self):
        with pytest.raises(ParameterError):
            Graph(3).add_edge(0, 3)

    def test_toggle(self):
        graph = Graph(3)
        graph.toggle_edge(0, 2)
        assert graph.has_edge(0, 2)
        graph.toggle_edge(0, 2)
        assert not graph.has_edge(0, 2)

    def test_degrees_and_neighbors(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.neighbors(0) == {1, 2, 3}
        assert graph.degree_sequence() == [3, 1, 1, 1]

    def test_edge_keys_round_trip(self):
        graph = Graph(5, [(0, 4), (2, 3)])
        rebuilt = Graph.from_edge_keys(5, graph.edge_keys())
        assert rebuilt == graph

    def test_edge_key_canonical(self):
        graph = Graph(5)
        assert graph.edge_key(4, 1) == graph.edge_key(1, 4)

    def test_relabel_preserves_structure(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        relabeled = graph.relabel([3, 2, 1, 0])
        assert relabeled.has_edge(3, 2) and relabeled.has_edge(1, 0)
        assert relabeled.num_edges == graph.num_edges

    def test_relabel_requires_permutation(self):
        with pytest.raises(ParameterError):
            Graph(3).relabel([0, 0, 1])

    def test_edge_difference(self):
        a = Graph(4, [(0, 1), (1, 2)])
        b = Graph(4, [(0, 1), (2, 3)])
        assert a.edge_difference(b) == 2

    def test_networkx_round_trip(self):
        graph = Graph(6, [(0, 1), (2, 5), (3, 4)])
        back = Graph.from_networkx(graph.to_networkx())
        assert back == graph

    def test_copy_is_independent(self):
        graph = Graph(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert not graph.has_edge(1, 2)


class TestRandomGraphs:
    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0, 1).num_edges == 0
        assert gnp_random_graph(10, 1.0, 1).num_edges == 45

    def test_gnp_expected_density(self):
        graph = gnp_random_graph(200, 0.3, 7)
        expected = 0.3 * 199 * 200 / 2
        assert 0.8 * expected < graph.num_edges < 1.2 * expected

    def test_gnp_deterministic_by_seed(self):
        assert gnp_random_graph(50, 0.2, 3) == gnp_random_graph(50, 0.2, 3)
        assert gnp_random_graph(50, 0.2, 3) != gnp_random_graph(50, 0.2, 4)

    def test_gnp_invalid_probability(self):
        with pytest.raises(ParameterError):
            gnp_random_graph(10, 1.5, 1)

    def test_perturb_exact_changes(self):
        base = gnp_random_graph(60, 0.3, 5)
        perturbed = perturb_edges(base, 7, random.Random(1))
        assert base.edge_difference(perturbed) == 7

    def test_perturb_too_many_changes_rejected(self):
        with pytest.raises(ParameterError):
            perturb_edges(Graph(3), 10, random.Random(1))

    def test_random_permutation(self):
        permutation = random_permutation(20, random.Random(2))
        assert sorted(permutation) == list(range(20))

    def test_reconciliation_pair_difference_bound(self):
        pair = reconciliation_pair(80, 0.3, 6, seed=9, relabel_alice=False)
        assert pair.alice.edge_difference(pair.bob) <= 6

    def test_reconciliation_pair_relabeled(self):
        pair = reconciliation_pair(40, 0.4, 2, seed=11)
        # Same degree multiset even after relabeling (up to the perturbation).
        assert pair.alice.num_vertices == pair.bob.num_vertices

    def test_planted_separation_degrees(self):
        base = planted_separated_graph(200, 0.4, 12, degree_gap=3, seed=3)
        ordered = sorted((base.degree(v) for v in base.vertices()), reverse=True)
        for index in range(12):
            assert ordered[index] - ordered[index + 1] >= 3

    def test_planted_separation_invalid_params(self):
        with pytest.raises(ParameterError):
            planted_separated_graph(10, 0.2, 0, 2, seed=1)
        with pytest.raises(ParameterError):
            planted_separated_graph(10, 0.2, 2, 0, seed=1)


class TestLabeledReconciliation:
    def test_known_d(self):
        pair = reconciliation_pair(100, 0.3, 8, seed=3, relabel_alice=False)
        result = reconcile_labeled_graphs(pair.alice, pair.bob, 10, seed=4)
        assert result.success and result.recovered == pair.alice

    def test_unknown_d(self):
        pair = reconciliation_pair(100, 0.3, 8, seed=5, relabel_alice=False)
        result = reconcile_labeled_graphs(pair.alice, pair.bob, None, seed=6)
        assert result.success and result.recovered == pair.alice
        assert result.num_rounds == 2

    def test_identical_graphs(self):
        graph = gnp_random_graph(50, 0.2, 7)
        result = reconcile_labeled_graphs(graph, graph.copy(), 2, seed=8)
        assert result.success and result.recovered == graph

    def test_vertex_count_mismatch(self):
        with pytest.raises(ParameterError):
            reconcile_labeled_graphs(Graph(3), Graph(4), 1, seed=1)

    # Derandomized: the protocol has an inherent (small) peeling-failure
    # probability at bound = d + 1, so free-ranging exploration eventually
    # finds an unlucky seed and caches it as a deterministic failure; a
    # fixed example sequence keeps the gate meaningful.  The known unlucky
    # seed is pinned separately below.
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_small_graphs(self, seed):
        rng = random.Random(seed)
        base = gnp_random_graph(30, 0.3, seed)
        bob = perturb_edges(base, rng.randint(0, 5), rng)
        difference = base.edge_difference(bob)
        result = reconcile_labeled_graphs(base, bob, difference + 1, seed=seed)
        assert result.success and result.recovered == base

    def test_known_unlucky_seed_fails_detected_not_wrong(self):
        # seed 2615 triggers an inherent IBLT peeling failure at bound
        # d + 1.  The required behavior is that the failure is *detected*
        # (never a silently wrong graph) and a larger bound reconciles the
        # same instance.
        seed = 2615
        rng = random.Random(seed)
        base = gnp_random_graph(30, 0.3, seed)
        bob = perturb_edges(base, rng.randint(0, 5), rng)
        difference = base.edge_difference(bob)
        result = reconcile_labeled_graphs(base, bob, difference + 1, seed=seed)
        assert not result.success and result.recovered is None
        assert result.details["failure"] == "iblt-peel"
        retry = reconcile_labeled_graphs(base, bob, difference + 4, seed=seed)
        assert retry.success and retry.recovered == base
