"""Tests for canonical forms, the fingerprint protocol, Figure 1 and Theorem 4.3."""

import pytest

from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    are_isomorphic_small,
    canonical_form_small,
    isomorphism_fingerprint_protocol,
    reconcile_exhaustive,
)
from repro.graphs.isomorphism import (
    figure1_graphs,
    merge_ambiguity_classes,
    one_edge_extensions,
    single_sided_merge_possible,
)


def path_graph(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


class TestCanonicalForms:
    def test_relabeling_invariance(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        relabeled = graph.relabel([4, 3, 2, 1, 0])
        assert canonical_form_small(graph) == canonical_form_small(relabeled)

    def test_distinguishes_non_isomorphic(self):
        assert canonical_form_small(path_graph(4)) != canonical_form_small(cycle_graph(4))

    def test_empty_and_trivial_graphs(self):
        assert canonical_form_small(Graph(0)) == ()
        assert canonical_form_small(Graph(1)) == ()

    def test_size_limit_enforced(self):
        with pytest.raises(ParameterError):
            canonical_form_small(Graph(12))

    def test_are_isomorphic_small(self):
        assert are_isomorphic_small(path_graph(5), path_graph(5).relabel([2, 0, 4, 1, 3]))
        assert not are_isomorphic_small(path_graph(5), cycle_graph(5))
        assert not are_isomorphic_small(Graph(3), Graph(4))


class TestFingerprintProtocol:
    def test_isomorphic_graphs_accepted(self):
        graph = cycle_graph(6)
        result = isomorphism_fingerprint_protocol(graph.relabel([5, 4, 3, 2, 1, 0]), graph, 1)
        assert result.recovered is True

    def test_non_isomorphic_rejected(self):
        result = isomorphism_fingerprint_protocol(path_graph(6), cycle_graph(6), 2)
        assert result.recovered is False

    def test_communication_is_logarithmic(self):
        # Theorem 4.1 / Corollary 4.2: O(log n) bits, i.e. nothing like n^2.
        result = isomorphism_fingerprint_protocol(cycle_graph(7), cycle_graph(7), 3)
        assert result.total_bits < 200

    def test_vertex_count_mismatch(self):
        with pytest.raises(ParameterError):
            isomorphism_fingerprint_protocol(Graph(3), Graph(4), 1)


class TestFigure1:
    def test_merge_ambiguity_exists(self):
        first, second = figure1_graphs()
        classes = merge_ambiguity_classes(first, second)
        assert len(classes) >= 2

    def test_no_single_sided_merge(self):
        first, second = figure1_graphs()
        assert not single_sided_merge_possible(first, second)

    def test_one_edge_extensions_count(self):
        graph = Graph(4, [(0, 1)])
        assert len(one_edge_extensions(graph)) == 6 - 1

    def test_union_really_ambiguous(self):
        # The distinct classes are genuinely non-isomorphic merge results.
        first, second = figure1_graphs()
        classes = merge_ambiguity_classes(first, second)
        assert len(set(classes)) == len(classes)


class TestExhaustiveReconciliation:
    def test_recovers_isomorphic_graph(self):
        alice = path_graph(6).relabel([3, 1, 5, 0, 2, 4])
        bob = path_graph(6)
        bob.toggle_edge(0, 3)
        result = reconcile_exhaustive(alice, bob, 1, seed=1)
        assert result.success
        assert are_isomorphic_small(result.recovered, alice)

    def test_zero_difference(self):
        graph = cycle_graph(5)
        result = reconcile_exhaustive(graph.relabel([4, 2, 0, 3, 1]), graph, 0, seed=2)
        assert result.success and are_isomorphic_small(result.recovered, graph)

    def test_two_changes(self):
        alice = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        bob = alice.copy()
        bob.toggle_edge(0, 1)
        bob.toggle_edge(2, 4)
        result = reconcile_exhaustive(alice.relabel([1, 0, 3, 2, 4]), bob, 2, seed=3)
        assert result.success and are_isomorphic_small(result.recovered, alice)

    def test_communication_is_d_log_n(self):
        # Theorem 4.3 / 4.4: O(d log n) bits -- minuscule compared to the graph.
        alice, bob = path_graph(6), path_graph(6)
        result = reconcile_exhaustive(alice, bob, 1, seed=4)
        assert result.total_bits < 64

    def test_size_limit(self):
        with pytest.raises(ParameterError):
            reconcile_exhaustive(Graph(12), Graph(12), 1, seed=1)

    def test_mismatched_sizes(self):
        with pytest.raises(ParameterError):
            reconcile_exhaustive(Graph(4), Graph(5), 1, seed=1)

    def test_insufficient_bound_fails(self):
        alice = cycle_graph(6)
        bob = Graph(6)
        result = reconcile_exhaustive(alice, bob, 1, seed=5)
        assert not result.success
