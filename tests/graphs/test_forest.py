"""Tests for rooted forests, AHU signatures and forest reconciliation (Section 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graphs import (
    RootedForest,
    ahu_signatures,
    forest_canonical_form,
    reconcile_forest,
)
from repro.workloads import forest_instance, perturb_forest, random_forest


class TestRootedForest:
    def test_basic_structure(self):
        forest = RootedForest([None, 0, 0, 1, None])
        assert forest.num_vertices == 5
        assert forest.roots() == [0, 4]
        assert forest.children(0) == [1, 2]
        assert forest.parent(3) == 1
        assert forest.edges() == [(0, 1), (0, 2), (1, 3)]

    def test_depths(self):
        forest = RootedForest([None, 0, 1, 2])
        assert forest.depths() == [0, 1, 2, 3]
        assert forest.max_depth == 3

    def test_cycle_rejected(self):
        with pytest.raises(ParameterError):
            RootedForest([1, 0])

    def test_self_parent_rejected(self):
        with pytest.raises(ParameterError):
            RootedForest([0])

    def test_delete_edge_makes_root(self):
        forest = RootedForest([None, 0])
        forest.delete_edge(1)
        assert forest.roots() == [0, 1]
        with pytest.raises(ParameterError):
            forest.delete_edge(1)

    def test_insert_edge_rules(self):
        forest = RootedForest([None, None, 1])
        forest.insert_edge(2, 0)          # attach root 0 under 2
        assert forest.parent(0) == 2
        with pytest.raises(ParameterError):
            forest.insert_edge(0, 2)      # 2 is not a root
        fresh = RootedForest([None, None])
        with pytest.raises(ParameterError):
            fresh.insert_edge(0, 0)       # would self-loop / cycle

    def test_copy_independent(self):
        forest = RootedForest([None, 0])
        clone = forest.copy()
        clone.delete_edge(1)
        assert forest.parent(1) == 0


class TestCanonicalFormAndSignatures:
    def test_isomorphic_forests_same_form(self):
        first = RootedForest([None, 0, 0, 1])
        # Same shape with vertices renamed.
        second = RootedForest([None, 0, 1, 0])
        assert forest_canonical_form(first) == forest_canonical_form(second)

    def test_non_isomorphic_forests_differ(self):
        path = RootedForest([None, 0, 1])     # a path of depth 2
        star = RootedForest([None, 0, 0])     # a root with two leaves
        assert forest_canonical_form(path) != forest_canonical_form(star)

    def test_forest_vs_split_forest(self):
        joined = RootedForest([None, 0])
        split = RootedForest([None, None])
        assert forest_canonical_form(joined) != forest_canonical_form(split)

    def test_signatures_respect_isomorphism(self):
        first = RootedForest([None, 0, 0, 1])
        second = RootedForest([None, 0, 1, 0])
        assert sorted(ahu_signatures(first, 5)) == sorted(ahu_signatures(second, 5))

    def test_signatures_depend_on_seed(self):
        forest = RootedForest([None, 0, 0])
        assert ahu_signatures(forest, 1) != ahu_signatures(forest, 2)

    def test_leaves_share_signature(self):
        forest = RootedForest([None, 0, 0])
        signatures = ahu_signatures(forest, 3)
        assert signatures[1] == signatures[2]
        assert signatures[0] != signatures[1]


class TestWorkloadGenerators:
    def test_random_forest_respects_depth(self):
        forest = random_forest(120, seed=1, max_depth=4)
        assert forest.num_vertices == 120
        assert forest.max_depth <= 4

    def test_perturb_forest_applies_edits(self):
        forest = random_forest(60, seed=2, max_depth=5)
        edited, applied = perturb_forest(forest, 5, seed=3)
        assert applied >= 4
        assert edited.num_vertices == forest.num_vertices

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            random_forest(0, seed=1)
        with pytest.raises(ParameterError):
            perturb_forest(random_forest(5, seed=1), -1, seed=2)


class TestForestReconciliation:
    def test_end_to_end(self):
        instance = forest_instance(80, 3, seed=5, max_depth=4)
        result = reconcile_forest(
            instance.alice, instance.bob, instance.num_edits, instance.max_depth, seed=6
        )
        assert result.success
        assert forest_canonical_form(result.recovered) == forest_canonical_form(instance.alice)

    def test_identical_forests(self):
        forest = random_forest(50, seed=7, max_depth=4)
        result = reconcile_forest(forest, forest.copy(), 1, None, seed=8)
        assert result.success
        assert forest_canonical_form(result.recovered) == forest_canonical_form(forest)

    def test_single_edit(self):
        alice = random_forest(40, seed=9, max_depth=3)
        bob, applied = perturb_forest(alice, 1, seed=10)
        result = reconcile_forest(alice, bob, max(1, applied), None, seed=11)
        assert result.success
        assert forest_canonical_form(result.recovered) == forest_canonical_form(alice)

    def test_one_round(self):
        instance = forest_instance(60, 2, seed=12, max_depth=4)
        result = reconcile_forest(
            instance.alice, instance.bob, instance.num_edits, instance.max_depth, seed=13
        )
        assert result.num_rounds == 1

    def test_duplicate_subtrees_handled(self):
        # Many isomorphic leaves attached to two roots: heavy multiplicity.
        parents = [None, None] + [0] * 10 + [1] * 10
        alice = RootedForest(parents)
        bob = alice.copy()
        bob.delete_edge(2)
        result = reconcile_forest(alice, bob, 1, 1, seed=14)
        assert result.success
        assert forest_canonical_form(result.recovered) == forest_canonical_form(alice)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_random_instances(self, seed):
        instance = forest_instance(40, 2, seed=seed, max_depth=3)
        result = reconcile_forest(
            instance.alice, instance.bob, max(1, instance.num_edits),
            instance.max_depth, seed=seed + 1,
        )
        if result.success:
            assert forest_canonical_form(result.recovered) == forest_canonical_form(
                instance.alice
            )
