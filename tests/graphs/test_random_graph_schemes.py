"""Tests for the Section 5 signature schemes and graph reconciliation protocols."""

from collections import Counter

import pytest

from repro.errors import ParameterError
from repro.graphs import (
    Graph,
    degree_neighborhood_signatures,
    degree_order_signatures,
    is_degree_separated,
    neighborhood_disjointness,
    reconcile_degree_neighborhood,
    reconcile_degree_order,
)
from repro.graphs.degree_order import canonical_labeling_from_signatures
from repro.graphs.random_graphs import (
    gnp_random_graph,
    planted_separated_graph,
    reconciliation_pair,
)
from repro.graphs.separation import degree_sorted_vertices, multiset_difference_size


class TestDegreeOrderSignatures:
    def star_plus_edge(self):
        # vertex 0 has degree 4, vertex 1 degree 2, others degree 1.
        return Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])

    def test_sorted_by_degree(self):
        graph = self.star_plus_edge()
        assert degree_sorted_vertices(graph)[0] == 0

    def test_signatures_are_adjacency_with_top(self):
        graph = self.star_plus_edge()
        top, signatures = degree_order_signatures(graph, 2)
        assert top == [0, 1]
        assert signatures[2] == {0, 1}
        assert signatures[3] == {0}
        assert signatures[4] == {0}

    def test_invalid_num_top(self):
        with pytest.raises(ParameterError):
            degree_order_signatures(Graph(3), 5)

    def test_separation_check(self):
        graph = self.star_plus_edge()
        # degrees 4,2 gap=2; signatures {0,1},{0},{0}: distance 0 between 3 and 4.
        assert is_degree_separated(graph, 2, 2, 1) is False
        assert is_degree_separated(graph, 1, 2, 1) is False

    def test_planted_graph_is_degree_separated(self):
        base = planted_separated_graph(150, 0.4, 10, degree_gap=3, seed=4)
        ordered = degree_sorted_vertices(base)
        degrees = [base.degree(v) for v in ordered]
        assert all(degrees[i] - degrees[i + 1] >= 3 for i in range(10))

    def test_canonical_labeling_duplicate_signatures_rejected(self):
        with pytest.raises(ParameterError):
            canonical_labeling_from_signatures([0], {1: frozenset({0}), 2: frozenset({0})})

    def test_canonical_labeling_order(self):
        labeling = canonical_labeling_from_signatures(
            [7, 8], {1: frozenset({0, 1}), 2: frozenset({0})}
        )
        assert labeling[7] == 0 and labeling[8] == 1
        assert labeling[2] == 2 and labeling[1] == 3


class TestDegreeOrderProtocol:
    def make_pair(self, n=400, p=0.5, d=2, h=32, seed=5):
        base = planted_separated_graph(n, p, h, degree_gap=d + 1, seed=seed)
        return reconciliation_pair(n, p, d, seed=seed + 1, base=base), h, d

    def test_end_to_end_recovery(self):
        pair, h, d = self.make_pair()
        result = reconcile_degree_order(pair.alice, pair.bob, d, h, seed=6)
        assert result.success
        recovered = result.recovered
        assert sorted(recovered.degree_sequence()) == sorted(pair.alice.degree_sequence())
        assert recovered.num_edges == pair.alice.num_edges

    def test_one_round(self):
        pair, h, d = self.make_pair(seed=15)
        result = reconcile_degree_order(pair.alice, pair.bob, d, h, seed=7)
        if result.success:
            assert result.num_rounds == 1

    def test_communication_much_smaller_than_graph(self):
        pair, h, d = self.make_pair(seed=25)
        result = reconcile_degree_order(pair.alice, pair.bob, d, h, seed=8)
        if result.success:
            full_graph_bits = pair.alice.num_vertices * (pair.alice.num_vertices - 1) // 2
            assert result.total_bits < full_graph_bits / 2

    def test_unseparated_graph_fails_cleanly(self):
        pair = reconciliation_pair(60, 0.5, 4, seed=9)
        result = reconcile_degree_order(pair.alice, pair.bob, 4, 6, seed=10)
        assert not result.success
        assert result.details["failure"] is not None

    def test_vertex_count_mismatch(self):
        with pytest.raises(ParameterError):
            reconcile_degree_order(Graph(3), Graph(4), 1, 2, seed=1)

    def test_invalid_num_top(self):
        with pytest.raises(ParameterError):
            reconcile_degree_order(Graph(4), Graph(4), 1, 0, seed=1)


class TestDegreeNeighborhoodSignatures:
    def test_signature_contents(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        signatures = degree_neighborhood_signatures(graph, max_degree=3)
        assert signatures[3] == Counter({3: 1})          # neighbor 2 has degree 3
        assert signatures[0] == Counter({2: 1, 3: 1})     # neighbors 1 (deg 2), 2 (deg 3)

    def test_truncation(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        signatures = degree_neighborhood_signatures(graph, max_degree=2)
        assert signatures[3] == Counter()                 # degree-3 neighbor excluded

    def test_multiset_difference(self):
        assert multiset_difference_size(Counter({1: 2}), Counter({1: 1, 2: 1})) == 2

    def test_disjointness_monotone_in_density(self):
        sparse = gnp_random_graph(150, 0.1, 3)
        dense = gnp_random_graph(150, 0.4, 3)
        assert neighborhood_disjointness(dense, 60) >= neighborhood_disjointness(sparse, 15)

    def test_invalid_max_degree(self):
        with pytest.raises(ParameterError):
            degree_neighborhood_signatures(Graph(3), -1)


class TestDegreeNeighborhoodProtocol:
    def find_instance(self):
        # Look for a seed where the base graph supports d=1 (disjointness >= 5).
        for seed in range(5, 30):
            base = gnp_random_graph(150, 0.35, seed)
            if neighborhood_disjointness(base, int(0.35 * 150)) >= 5:
                return reconciliation_pair(150, 0.35, 1, seed=seed + 100, base=base)
        return None

    def test_end_to_end_when_disjoint(self):
        pair = self.find_instance()
        if pair is None:
            pytest.skip("no disjoint instance found at this scale")
        result = reconcile_degree_neighborhood(
            pair.alice, pair.bob, 1, int(0.35 * 150), seed=11
        )
        if result.success:
            assert sorted(result.recovered.degree_sequence()) == sorted(
                pair.alice.degree_sequence()
            )
        else:
            # The scheme is allowed to fail (Theorem 5.6 promises only 2/3),
            # but it must fail with a diagnostic rather than wrong output.
            assert result.details["failure"] is not None

    def test_vertex_count_mismatch(self):
        with pytest.raises(ParameterError):
            reconcile_degree_neighborhood(Graph(3), Graph(4), 1, 2, seed=1)

    def test_identical_graphs(self):
        graph = gnp_random_graph(60, 0.3, 13)
        if neighborhood_disjointness(graph, 18) < 5:
            pytest.skip("instance not disjoint enough for a deterministic check")
        result = reconcile_degree_neighborhood(graph, graph.copy(), 1, 18, seed=14)
        assert result.success
