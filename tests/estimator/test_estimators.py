"""Tests for the set-difference estimators (strata baseline and L0)."""

import random

import pytest

from repro.errors import ParameterError
from repro.estimator import L0Estimator, MedianEstimator, StrataEstimator


def build_pair(factory, true_difference, shared=2000, seed=0):
    """Two estimators over mostly-shared sets with a planted difference."""
    rng = random.Random(seed)
    shared_elements = rng.sample(range(1 << 40), shared)
    alice_only = rng.sample(range(1 << 40, 2 << 40), true_difference // 2)
    bob_only = rng.sample(range(2 << 40, 3 << 40), true_difference - true_difference // 2)
    alice_est = factory(777)
    bob_est = factory(777)
    alice_est.update_all(shared_elements + alice_only, 1)
    bob_est.update_all(shared_elements + bob_only, 2)
    return alice_est.merge(bob_est)


@pytest.mark.parametrize("factory", [L0Estimator, StrataEstimator], ids=["l0", "strata"])
class TestEstimatorAccuracy:
    def test_zero_difference(self, factory):
        merged = build_pair(factory, 0)
        assert merged.query() <= 4

    def test_small_difference_exactish(self, factory):
        merged = build_pair(factory, 8, seed=1)
        assert 1 <= merged.query() <= 40

    @pytest.mark.parametrize("true_d", [16, 64, 256, 1024])
    def test_constant_factor_accuracy(self, factory, true_d):
        estimate = build_pair(factory, true_d, seed=true_d).query()
        assert true_d / 8 <= estimate <= true_d * 8

    def test_monotone_trend(self, factory):
        small = build_pair(factory, 16, seed=3).query()
        large = build_pair(factory, 1024, seed=3).query()
        assert large > small


@pytest.mark.parametrize("factory", [L0Estimator, StrataEstimator], ids=["l0", "strata"])
class TestEstimatorInterface:
    def test_invalid_side_rejected(self, factory):
        with pytest.raises(ParameterError):
            factory(1).update(5, 3)

    def test_merge_requires_same_seed(self, factory):
        with pytest.raises(ParameterError):
            factory(1).merge(factory(2))

    def test_size_bits_positive(self, factory):
        assert factory(1).size_bits > 0

    def test_identical_sets_cancel(self, factory):
        estimator = factory(5)
        estimator.update_all(range(100), 1)
        estimator.update_all(range(100), 2)
        assert estimator.query() <= 4


class TestSizeComparison:
    def test_l0_is_smaller_than_strata(self):
        # The paper's Theorem 3.1 improvement: the L0 sketch drops the
        # O(log u) factor that the strata estimator pays per stratum cell.
        assert L0Estimator(1).size_bits < StrataEstimator(1).size_bits / 10


class TestL0Parameters:
    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            L0Estimator(1, num_levels=0)
        with pytest.raises(ParameterError):
            L0Estimator(1, buckets_per_level=2)
        with pytest.raises(ParameterError):
            L0Estimator(1, reliable_fraction=1.5)

    def test_size_formula(self):
        estimator = L0Estimator(1, num_levels=10, buckets_per_level=64)
        assert estimator.size_bits == 2 * 10 * 64


class TestStrataParameters:
    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            StrataEstimator(1, num_strata=0)
        with pytest.raises(ParameterError):
            StrataEstimator(1, cells_per_stratum=2)


class TestMedianEstimator:
    def test_replicas_for_delta(self):
        assert MedianEstimator.replicas_for_delta(0.5) >= 1
        assert MedianEstimator.replicas_for_delta(0.01) > MedianEstimator.replicas_for_delta(0.3)
        with pytest.raises(ParameterError):
            MedianEstimator.replicas_for_delta(0.0)

    def test_median_accuracy(self):
        merged = build_pair(lambda seed: MedianEstimator(seed, num_replicas=5), 128, seed=9)
        assert 16 <= merged.query() <= 1024

    def test_merge_shape_checked(self):
        a = MedianEstimator(1, num_replicas=3)
        b = MedianEstimator(1, num_replicas=5)
        with pytest.raises(ParameterError):
            a.merge(b)

    def test_size_is_sum_of_replicas(self):
        estimator = MedianEstimator(1, num_replicas=3)
        assert estimator.size_bits == 3 * L0Estimator(0).size_bits
