"""Tests for the synthetic-corpus workload generators."""

import pytest

from repro.errors import ParameterError
from repro.workloads import edited_corpus_pair, synthetic_corpus


class TestSyntheticCorpus:
    def test_shape(self):
        corpus = synthetic_corpus(25, 12, seed=1)
        assert len(corpus) == 25
        assert all(len(document.split()) == 12 for document in corpus)

    def test_deterministic(self):
        assert synthetic_corpus(10, 8, seed=2) == synthetic_corpus(10, 8, seed=2)

    def test_seed_sensitivity(self):
        assert synthetic_corpus(10, 8, seed=3) != synthetic_corpus(10, 8, seed=4)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            synthetic_corpus(0, 8, seed=1)
        with pytest.raises(ParameterError):
            synthetic_corpus(5, 0, seed=1)


class TestEditedCorpusPair:
    def test_planted_structure(self):
        alice, bob = edited_corpus_pair(30, 20, 3, 2, 4, seed=5)
        assert len(alice) == 30
        # Bob is missing exactly the fresh documents.
        assert len(bob) == 30 - 4
        shared = set(alice) & set(bob)
        # Everything in Bob either matches Alice verbatim or is a near
        # duplicate (an edited copy not present in Alice's corpus).
        edited = [document for document in bob if document not in set(alice)]
        assert len(edited) <= 3
        assert len(shared) >= 30 - 3 - 4

    def test_edits_change_bounded_words(self):
        alice, bob = edited_corpus_pair(20, 15, 2, 3, 0, seed=6)
        changed = [
            (a, b) for a, b in zip(alice, bob) if a != b
        ]
        assert 0 < len(changed) <= 2
        for original, edited in changed:
            original_words = original.split()
            edited_words = edited.split()
            assert len(original_words) == len(edited_words)
            differing = sum(
                1 for x, y in zip(original_words, edited_words) if x != y
            )
            assert differing <= 3

    def test_zero_edits_and_fresh(self):
        alice, bob = edited_corpus_pair(12, 10, 0, 0, 0, seed=7)
        assert alice == bob

    def test_deterministic(self):
        first = edited_corpus_pair(15, 10, 2, 1, 2, seed=8)
        second = edited_corpus_pair(15, 10, 2, 1, 2, seed=8)
        assert first == second

    def test_overcommitted_edits_rejected(self):
        with pytest.raises(ParameterError):
            edited_corpus_pair(5, 10, 4, 1, 2, seed=9)
