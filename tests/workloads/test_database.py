"""Tests for the binary-table workload generators."""

import pytest

from repro.errors import ParameterError
from repro.workloads import flipped_table_pair, random_binary_table


class TestRandomBinaryTable:
    def test_shape(self):
        table = random_binary_table(20, 32, 0.5, seed=1)
        assert table.num_rows == 20
        assert len(table.columns) == 32

    def test_rows_are_distinct(self):
        table = random_binary_table(40, 24, 0.5, seed=2)
        assert len(set(table.rows())) == 40

    def test_deterministic(self):
        first = random_binary_table(15, 16, 0.4, seed=3)
        second = random_binary_table(15, 16, 0.4, seed=3)
        assert set(first.rows()) == set(second.rows())

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            random_binary_table(10, 16, 0.0, seed=1)
        with pytest.raises(ParameterError):
            random_binary_table(10, 16, 1.0, seed=1)
        with pytest.raises(ParameterError):
            random_binary_table(0, 16, 0.5, seed=1)


class TestFlippedTablePair:
    def test_planted_flip_count(self):
        alice, bob, applied = flipped_table_pair(30, 40, 0.5, 8, seed=4)
        assert applied == 8
        assert alice.num_rows == bob.num_rows == 30
        assert alice.columns == bob.columns

    def test_tables_actually_differ(self):
        alice, bob, applied = flipped_table_pair(30, 40, 0.5, 6, seed=5)
        assert applied > 0
        assert set(alice.rows()) != set(bob.rows())

    def test_zero_flips_identical(self):
        alice, bob, applied = flipped_table_pair(20, 24, 0.5, 0, seed=6)
        assert applied == 0
        assert set(alice.rows()) == set(bob.rows())

    def test_max_rows_touched_bound(self):
        alice, bob, _ = flipped_table_pair(
            40, 48, 0.5, 10, seed=7, max_rows_touched=2
        )
        # Every flip landed on one of at most 2 rows, so at most 2 of
        # Alice's rows are missing from Bob's table.
        assert len(set(alice.rows()) - set(bob.rows())) <= 2

    def test_deterministic(self):
        first = flipped_table_pair(25, 32, 0.5, 5, seed=8)
        second = flipped_table_pair(25, 32, 0.5, 5, seed=8)
        assert set(first[1].rows()) == set(second[1].rows())
