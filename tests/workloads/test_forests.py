"""Tests for the rooted-forest workload generators."""

import pytest

from repro.errors import ParameterError
from repro.workloads import forest_instance, perturb_forest, random_forest


class TestRandomForest:
    def test_shape_and_depth_bound(self):
        forest = random_forest(80, seed=1, max_depth=3)
        assert forest.num_vertices == 80
        assert forest.max_depth <= 3

    def test_every_vertex_has_valid_parent(self):
        forest = random_forest(50, seed=2)
        for vertex in range(forest.num_vertices):
            parent = forest.parent(vertex)
            # Parents are always earlier vertices, so the structure is acyclic
            # by construction.
            assert parent is None or 0 <= parent < vertex

    def test_deterministic(self):
        first = random_forest(40, seed=3, max_depth=4)
        second = random_forest(40, seed=3, max_depth=4)
        assert [first.parent(v) for v in range(40)] == [
            second.parent(v) for v in range(40)
        ]

    def test_seed_sensitivity(self):
        first = random_forest(40, seed=4)
        second = random_forest(40, seed=5)
        assert [first.parent(v) for v in range(40)] != [
            second.parent(v) for v in range(40)
        ]

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            random_forest(0, seed=1)
        with pytest.raises(ParameterError):
            random_forest(10, seed=1, max_depth=0)


class TestPerturbForest:
    def test_result_is_still_a_forest(self):
        base = random_forest(60, seed=6, max_depth=4)
        edited, applied = perturb_forest(base, 5, seed=7)
        assert 0 <= applied <= 5
        for vertex in range(edited.num_vertices):
            # Walking to the root must terminate: no cycles were introduced.
            seen = set()
            current = vertex
            while current is not None:
                assert current not in seen
                seen.add(current)
                current = edited.parent(current)

    def test_zero_edits_is_identity(self):
        base = random_forest(30, seed=8)
        edited, applied = perturb_forest(base, 0, seed=9)
        assert applied == 0
        assert [edited.parent(v) for v in range(30)] == [
            base.parent(v) for v in range(30)
        ]

    def test_original_untouched(self):
        base = random_forest(30, seed=10)
        before = [base.parent(v) for v in range(30)]
        perturb_forest(base, 6, seed=11)
        assert [base.parent(v) for v in range(30)] == before

    def test_negative_edits_rejected(self):
        base = random_forest(10, seed=12)
        with pytest.raises(ParameterError):
            perturb_forest(base, -1, seed=13)


class TestForestInstance:
    def test_instance_fields(self):
        instance = forest_instance(100, 4, seed=14, max_depth=4)
        assert instance.alice.num_vertices == 100
        assert instance.bob.num_vertices == 100
        assert 0 <= instance.num_edits <= 4
        assert instance.max_depth == max(
            instance.alice.max_depth, instance.bob.max_depth
        )

    def test_deterministic(self):
        first = forest_instance(50, 3, seed=15)
        second = forest_instance(50, 3, seed=15)
        assert [first.bob.parent(v) for v in range(50)] == [
            second.bob.parent(v) for v in range(50)
        ]
