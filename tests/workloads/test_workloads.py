"""Tests for the sets-of-sets workload generators."""

import pytest

from repro.core.setsofsets import minimum_matching_difference
from repro.errors import ParameterError
from repro.workloads import (
    perturb_sets_of_sets,
    random_sets_of_sets,
    sets_of_sets_instance,
    table1_instance,
)


class TestRandomSetsOfSets:
    def test_shape(self):
        parent = random_sets_of_sets(20, 8, 256, seed=1)
        assert parent.num_children == 20
        assert parent.max_child_size == 8

    def test_jitter(self):
        parent = random_sets_of_sets(20, 8, 256, seed=2, child_size_jitter=3)
        sizes = {len(child) for child in parent}
        assert len(sizes) > 1

    def test_invalid_child_size(self):
        with pytest.raises(ParameterError):
            random_sets_of_sets(5, 0, 10, seed=1)
        with pytest.raises(ParameterError):
            random_sets_of_sets(5, 20, 10, seed=1)

    def test_deterministic(self):
        assert random_sets_of_sets(10, 5, 64, seed=3) == random_sets_of_sets(10, 5, 64, seed=3)


class TestPerturbation:
    def test_exact_change_count(self):
        parent = random_sets_of_sets(30, 10, 512, seed=4)
        perturbed, applied, touched = perturb_sets_of_sets(parent, 12, 512, seed=5)
        assert applied == 12
        assert touched <= 12
        assert perturbed.num_children == parent.num_children

    def test_changes_bounded_by_matching_difference(self):
        parent = random_sets_of_sets(30, 10, 512, seed=6)
        perturbed, applied, _ = perturb_sets_of_sets(parent, 8, 512, seed=7)
        assert minimum_matching_difference(parent, perturbed) <= applied

    def test_touched_children_limit(self):
        parent = random_sets_of_sets(30, 10, 512, seed=8)
        _, _, touched = perturb_sets_of_sets(
            parent, 10, 512, seed=9, max_children_touched=3
        )
        assert touched <= 3

    def test_zero_changes(self):
        parent = random_sets_of_sets(10, 5, 64, seed=10)
        perturbed, applied, touched = perturb_sets_of_sets(parent, 0, 64, seed=11)
        assert applied == 0 and touched == 0 and perturbed == parent

    def test_empty_parent_rejected(self):
        from repro.core.setsofsets import SetOfSets

        with pytest.raises(ParameterError):
            perturb_sets_of_sets(SetOfSets.empty(), 1, 8, seed=1)


class TestInstances:
    def test_instance_consistency(self):
        instance = sets_of_sets_instance(25, 10, 256, 9, seed=12, max_children_touched=4)
        assert instance.planted_difference == 9
        assert instance.differing_children <= 4
        assert instance.max_child_size >= 10
        assert minimum_matching_difference(instance.alice, instance.bob) <= 9

    def test_table1_regime_is_dense(self):
        instance = table1_instance(128, 16, 4, seed=13)
        # h = Theta(u): children are around half the universe in size.
        assert instance.max_child_size > 128 * 0.3
        assert instance.alice.num_children == 16
