"""Tests for the replicated-KV cluster workload generators."""

import pytest

from repro.errors import ParameterError
from repro.workloads import churn_writes, planted_cluster_writes
from repro.workloads.cluster import SHARED_WRITER


class TestPlantedClusterWrites:
    def test_shapes_and_counts(self):
        shared, per_node = planted_cluster_writes(4, 50, 6, seed=1)
        assert len(shared) == 50
        assert len(per_node) == 4
        assert all(len(writes) == 6 for writes in per_node)

    def test_shared_records_are_converged_prefix(self):
        shared, _ = planted_cluster_writes(3, 20, 2, seed=2)
        for index, record in enumerate(shared):
            assert record.key == f"shared:{index}"
            assert record.version == index + 1
            assert record.writer == SHARED_WRITER
            assert record.value is not None

    def test_per_node_keys_are_disjoint(self):
        _, per_node = planted_cluster_writes(6, 10, 8, seed=3)
        all_keys = [key for writes in per_node for key, _ in writes]
        assert len(all_keys) == len(set(all_keys))
        # Delta keys never collide with the shared keyspace either, so the
        # planted pairwise difference is exactly the two delta sizes.
        assert all(not key.startswith("shared:") for key in all_keys)

    def test_deterministic(self):
        assert planted_cluster_writes(4, 30, 5, seed=4) == planted_cluster_writes(
            4, 30, 5, seed=4
        )

    def test_seed_sensitivity(self):
        first, _ = planted_cluster_writes(2, 10, 1, seed=5)
        second, _ = planted_cluster_writes(2, 10, 1, seed=6)
        assert [record.value for record in first] != [
            record.value for record in second
        ]

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            planted_cluster_writes(0, 10, 1)
        with pytest.raises(ParameterError):
            planted_cluster_writes(2, -1, 1)
        with pytest.raises(ParameterError):
            planted_cluster_writes(2, 10, -1)


class TestChurnWrites:
    def test_schedule_shape(self):
        schedule = churn_writes(5, 4, 9, seed=1)
        assert len(schedule) == 4
        assert all(len(batch) == 9 for batch in schedule)
        for batch in schedule:
            for node, key, value in batch:
                assert 0 <= node < 5
                assert key.startswith("churn:")
                assert value

    def test_overwrites_hit_shared_keyspace(self):
        schedule = churn_writes(
            3, 6, 20, seed=2, shared_keys=10, overwrite_fraction=1.0
        )
        keys = {key for batch in schedule for _, key, _ in batch}
        assert keys <= {f"shared:{index}" for index in range(10)}

    def test_zero_overwrite_fraction_only_fresh_keys(self):
        schedule = churn_writes(
            3, 3, 10, seed=3, shared_keys=10, overwrite_fraction=0.0
        )
        assert all(
            key.startswith("churn:") for batch in schedule for _, key, _ in batch
        )

    def test_deterministic(self):
        assert churn_writes(4, 5, 7, seed=4, shared_keys=8) == churn_writes(
            4, 5, 7, seed=4, shared_keys=8
        )

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            churn_writes(0, 1, 1)
        with pytest.raises(ParameterError):
            churn_writes(2, -1, 1)
        with pytest.raises(ParameterError):
            churn_writes(2, 1, 1, overwrite_fraction=1.5)
