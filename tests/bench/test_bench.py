"""Tests for the experiment harness (measurement and reporting)."""

from pathlib import Path

from repro.bench import (
    BENCHMARK_RECORDS,
    format_table,
    headline_speedups,
    load_benchmark_record,
    measure_protocol,
    summarize,
    write_benchmark_record,
)
from repro.bench.table1 import Table1Config, run_table1
from repro.comm import ReconciliationResult, Transcript

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _fake_result(success=True, bits=100):
    transcript = Transcript()
    transcript.send("alice", "payload", bits)
    return ReconciliationResult(success, {1} if success else None, transcript)


class TestRunner:
    def test_measure_protocol_counts(self):
        measurement = measure_protocol("demo", lambda seed: _fake_result(), repeats=4)
        assert measurement.trials == 4
        assert measurement.successes == 4
        assert measurement.success_rate == 1.0
        assert measurement.median_bits == 100
        assert measurement.median_rounds == 1

    def test_failures_excluded_from_bits(self):
        outcomes = iter([True, False, True])

        def run(seed):
            return _fake_result(success=next(outcomes))

        measurement = measure_protocol("demo", run, repeats=3)
        assert measurement.successes == 2
        assert measurement.success_rate == 2 / 3
        assert len(measurement.bits) == 2

    def test_summarize_rows(self):
        measurement = measure_protocol("demo", lambda seed: _fake_result(), repeats=2)
        rows = summarize([measurement])
        assert rows[0]["protocol"] == "demo"
        assert rows[0]["bits"] == 100


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([])


class TestBenchmarkTrajectory:
    def test_roundtrip_record(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        write_benchmark_record(
            path,
            benchmark="demo",
            description="demo record",
            extra_field=3,
            results=[{"n": 10, "speedup": 4.5}],
        )
        record = load_benchmark_record(path)
        assert record["benchmark"] == "demo"
        assert record["extra_field"] == 3
        assert record["results"][0]["speedup"] == 4.5

    def test_headline_speedups_skips_missing(self, tmp_path):
        assert headline_speedups(tmp_path) == {}

    def test_recorded_trajectories_meet_their_floors(self):
        """Regress-check: the checked-in records must hold their floors."""
        headline = headline_speedups(REPO_ROOT)
        for name, filename in BENCHMARK_RECORDS.items():
            path = REPO_ROOT / filename
            if not path.exists():
                continue
            record = load_benchmark_record(path)
            assert headline[name] >= record.get("speedup_floor", 1.0), (
                name,
                headline[name],
            )
            # Phase-specific floors ride on individual rows: any row that
            # records a "<metric>_floor" must also hold the matching metric
            # (e.g. peel_speedup vs peel_speedup_floor at n=1e7, gcd's
            # speedup vs gcd_speedup_floor at d=1e4).
            for row in record.get("results", []):
                for metric in ("peel_speedup", "gcd_speedup", "fleet_speedup"):
                    floor = row.get(f"{metric}_floor", record.get(f"{metric}_floor"))
                    if floor is None or metric not in row:
                        continue
                    assert row[metric] >= floor, (name, metric, row)
        # All six trajectories are recorded in this repository.
        assert {
            "cell_backend",
            "cluster_convergence",
            "field_kernel",
            "setsofsets_encoding",
            "service_throughput",
            "sketch_store",
        } <= set(headline)


class TestTable1Experiment:
    def test_small_run_produces_all_protocols(self):
        config = Table1Config(
            universe_size=96, num_children=12, num_changes=4, children_touched=2, repeats=1
        )
        measurements = run_table1(config)
        assert len(measurements) == 4
        assert all(m.trials == 1 for m in measurements)
        # In this tiny regime every protocol should succeed.
        assert all(m.success_rate == 1.0 for m in measurements)
