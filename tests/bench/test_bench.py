"""Tests for the experiment harness (measurement and reporting)."""

from repro.bench import format_table, measure_protocol, summarize
from repro.bench.table1 import Table1Config, run_table1
from repro.comm import ReconciliationResult, Transcript


def _fake_result(success=True, bits=100):
    transcript = Transcript()
    transcript.send("alice", "payload", bits)
    return ReconciliationResult(success, {1} if success else None, transcript)


class TestRunner:
    def test_measure_protocol_counts(self):
        measurement = measure_protocol("demo", lambda seed: _fake_result(), repeats=4)
        assert measurement.trials == 4
        assert measurement.successes == 4
        assert measurement.success_rate == 1.0
        assert measurement.median_bits == 100
        assert measurement.median_rounds == 1

    def test_failures_excluded_from_bits(self):
        outcomes = iter([True, False, True])

        def run(seed):
            return _fake_result(success=next(outcomes))

        measurement = measure_protocol("demo", run, repeats=3)
        assert measurement.successes == 2
        assert measurement.success_rate == 2 / 3
        assert len(measurement.bits) == 2

    def test_summarize_rows(self):
        measurement = measure_protocol("demo", lambda seed: _fake_result(), repeats=2)
        rows = summarize([measurement])
        assert rows[0]["protocol"] == "demo"
        assert rows[0]["bits"] == 100


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([])


class TestTable1Experiment:
    def test_small_run_produces_all_protocols(self):
        config = Table1Config(
            universe_size=96, num_children=12, num_changes=4, children_touched=2, repeats=1
        )
        measurements = run_table1(config)
        assert len(measurements) == 4
        assert all(m.trials == 1 for m in measurements)
        # In this tiny regime every protocol should succeed.
        assert all(m.success_rate == 1.0 for m in measurements)
