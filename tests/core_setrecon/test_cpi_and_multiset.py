"""Tests for characteristic-polynomial reconciliation and multiset support."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.setrecon import (
    decode_multiset,
    encode_multiset,
    multiset_symmetric_difference,
    reconcile_cpi,
    reconcile_known_d,
    reconcile_multiset_known_d,
)
from repro.core.setrecon.cpi import cpi_decode, cpi_encode
from repro.errors import ParameterError

UNIVERSE = 1 << 16


def make_instance(size, difference, seed):
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


class TestCPIProtocol:
    def test_basic(self):
        alice, bob = make_instance(200, 10, seed=1)
        result = reconcile_cpi(alice, bob, 12, UNIVERSE, seed=2)
        assert result.success and result.recovered == alice

    def test_exact_bound(self):
        alice, bob = make_instance(150, 9, seed=3)
        result = reconcile_cpi(alice, bob, 9, UNIVERSE, seed=4)
        assert result.success and result.recovered == alice

    def test_identical_sets(self):
        alice, _ = make_instance(80, 0, seed=5)
        result = reconcile_cpi(alice, set(alice), 3, UNIVERSE, seed=6)
        assert result.success and result.recovered == alice

    def test_asymmetric_sizes(self):
        alice = set(range(100))
        bob = set(range(90))
        result = reconcile_cpi(alice, bob, 10, UNIVERSE, seed=7)
        assert result.success and result.recovered == alice

    def test_bob_superset(self):
        alice = set(range(50))
        bob = set(range(60))
        result = reconcile_cpi(alice, bob, 10, UNIVERSE, seed=8)
        assert result.success and result.recovered == alice

    def test_empty_sides(self):
        assert reconcile_cpi(set(), {1, 2}, 3, UNIVERSE, seed=9).recovered == set()
        assert reconcile_cpi({1, 2}, set(), 3, UNIVERSE, seed=10).recovered == {1, 2}

    def test_under_bound_fails_detectably(self):
        alice, bob = make_instance(100, 30, seed=11)
        result = reconcile_cpi(alice, bob, 5, UNIVERSE, seed=12)
        assert not result.success

    def test_deterministic_success_across_seeds(self):
        # Theorem 2.3: succeeds with probability 1 whenever the bound holds.
        alice, bob = make_instance(120, 14, seed=13)
        assert all(
            reconcile_cpi(alice, bob, 16, UNIVERSE, seed=s).success for s in range(10)
        )

    def test_communication_less_than_iblt(self):
        # CPI sends ~d field elements; the IBLT protocol sends ~1.8d cells of
        # (count, key, checksum); CPI should therefore be smaller.
        alice, bob = make_instance(400, 20, seed=14)
        cpi = reconcile_cpi(alice, bob, 22, UNIVERSE, seed=15)
        iblt = reconcile_known_d(alice, bob, 22, UNIVERSE, seed=15)
        assert cpi.success and iblt.success
        assert cpi.total_bits < iblt.total_bits

    def test_message_size_accounting(self):
        message = cpi_encode({1, 2, 3}, 5, UNIVERSE)
        assert message.size_bits > 0
        assert len(message.evaluations) == 6

    def test_invalid_bound(self):
        with pytest.raises(ParameterError):
            cpi_encode({1}, -1, UNIVERSE)

    def test_decode_rejects_size_gap_beyond_bound(self):
        message = cpi_encode(set(range(50)), 3, UNIVERSE)
        success, recovered = cpi_decode(message, set(), UNIVERSE)
        assert not success and recovered is None

    def test_size_gap_short_circuit_precedes_field_work(self):
        # The |size_delta| > bound rejection must fire before any field
        # arithmetic: a message carrying a *composite* modulus would raise
        # inside PrimeField construction if the field were built first.
        from repro.core.setrecon.cpi import CPIMessage

        bogus = CPIMessage(
            set_size=50, evaluations=(1, 2, 3, 4), difference_bound=3, prime=4
        )
        assert cpi_decode(bogus, set(), UNIVERSE) == (False, None)

    def test_field_for_universe_is_cached(self):
        from repro.core.setrecon.cpi import field_for_universe

        assert field_for_universe(UNIVERSE, 8) is field_for_universe(UNIVERSE, 8)
        with pytest.raises(ParameterError):
            field_for_universe(0, 1)
        # Errors are not cached: the same bad call keeps raising.
        with pytest.raises(ParameterError):
            field_for_universe(0, 1)

    @pytest.mark.parametrize("field_kernel", ["python", "numpy", None])
    def test_explicit_kernel_selection(self, field_kernel):
        from repro.field.kernels import NumpyFieldKernel

        if field_kernel == "numpy" and not NumpyFieldKernel.available():
            pytest.skip("NumPy not installed")
        alice, bob = make_instance(90, 7, seed=21)
        result = reconcile_cpi(
            alice, bob, 8, UNIVERSE, seed=22, field_kernel=field_kernel
        )
        assert result.success and result.recovered == alice

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=0, max_size=25),
        st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=0, max_size=25),
    )
    def test_property_exact_recovery(self, alice, bob):
        difference = len(alice ^ bob)
        result = reconcile_cpi(alice, bob, difference, UNIVERSE, seed=17)
        assert result.success and result.recovered == alice


class TestMultisetEncoding:
    def test_round_trip(self):
        multiset = {3: 2, 9: 1, 100: 5}
        encoded = encode_multiset(multiset, max_multiplicity=8)
        assert decode_multiset(encoded, max_multiplicity=8) == multiset

    def test_rejects_zero_multiplicity(self):
        with pytest.raises(ParameterError):
            encode_multiset({1: 0}, 4)

    def test_rejects_excess_multiplicity(self):
        with pytest.raises(ParameterError):
            encode_multiset({1: 9}, 4)

    def test_rejects_invalid_bound(self):
        with pytest.raises(ParameterError):
            encode_multiset({1: 1}, 0)

    def test_symmetric_difference(self):
        a = {1: 2, 2: 1}
        b = {1: 1, 3: 2}
        assert multiset_symmetric_difference(a, b) == 1 + 1 + 2

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=1, max_value=7),
            max_size=20,
        )
    )
    def test_encode_decode_property(self, multiset):
        encoded = encode_multiset(multiset, 7)
        assert decode_multiset(encoded, 7) == multiset


class TestMultisetReconciliation:
    def test_basic(self):
        alice = {1: 3, 2: 1, 50: 2}
        bob = {1: 2, 2: 1, 60: 1}
        result = reconcile_multiset_known_d(alice, bob, 8, 128, 8, seed=1)
        assert result.success and result.recovered == alice

    def test_identical(self):
        alice = {5: 2, 9: 4}
        result = reconcile_multiset_known_d(alice, dict(alice), 2, 64, 8, seed=2)
        assert result.success and result.recovered == alice

    def test_multiplicity_only_changes(self):
        alice = {7: 5}
        bob = {7: 1}
        result = reconcile_multiset_known_d(alice, bob, 4, 64, 8, seed=3)
        assert result.success and result.recovered == alice
