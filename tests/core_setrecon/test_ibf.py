"""Tests for IBLT-based set reconciliation (Corollaries 2.2 and 3.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.setrecon import (
    apply_difference,
    reconcile_known_d,
    reconcile_unknown_d,
    symmetric_difference_size,
)
from repro.errors import ParameterError
from repro.estimator import StrataEstimator

UNIVERSE = 1 << 24


def make_instance(size, difference, seed):
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    removals = rng.sample(sorted(alice), difference // 2)
    for element in removals:
        bob.discard(element)
    while symmetric_difference_size(alice, bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


class TestHelpers:
    def test_symmetric_difference_size(self):
        assert symmetric_difference_size({1, 2}, {2, 3}) == 2

    def test_apply_difference(self):
        assert apply_difference({1, 2, 3}, to_add={4}, to_remove={1}) == {2, 3, 4}


class TestKnownD:
    def test_basic_reconciliation(self):
        alice, bob = make_instance(500, 20, seed=1)
        result = reconcile_known_d(alice, bob, 25, UNIVERSE, seed=2)
        assert result.success and result.recovered == alice

    def test_identical_sets(self):
        alice, _ = make_instance(100, 0, seed=3)
        result = reconcile_known_d(alice, set(alice), 1, UNIVERSE, seed=4)
        assert result.success and result.recovered == alice

    def test_empty_alice(self):
        result = reconcile_known_d(set(), {1, 2, 3}, 4, UNIVERSE, seed=5)
        assert result.success and result.recovered == set()

    def test_empty_bob(self):
        result = reconcile_known_d({1, 2, 3}, set(), 4, UNIVERSE, seed=6)
        assert result.success and result.recovered == {1, 2, 3}

    def test_one_round(self):
        alice, bob = make_instance(100, 4, seed=7)
        result = reconcile_known_d(alice, bob, 6, UNIVERSE, seed=8)
        assert result.num_rounds == 1

    def test_underestimated_bound_fails_detectably(self):
        alice, bob = make_instance(500, 200, seed=9)
        result = reconcile_known_d(alice, bob, 5, UNIVERSE, seed=10)
        assert not result.success
        assert result.recovered is None

    def test_communication_scales_with_bound_not_set_size(self):
        small_alice, small_bob = make_instance(100, 10, seed=11)
        large_alice, large_bob = make_instance(5000, 10, seed=12)
        small = reconcile_known_d(small_alice, small_bob, 12, UNIVERSE, seed=13)
        large = reconcile_known_d(large_alice, large_bob, 12, UNIVERSE, seed=13)
        assert small.success and large.success
        # Only the tiny set-size counter may differ; the IBLT itself is
        # identical in size because it depends on the bound, not on |S|.
        assert abs(small.total_bits - large.total_bits) <= 16

    def test_communication_grows_with_bound(self):
        alice, bob = make_instance(500, 10, seed=14)
        loose = reconcile_known_d(alice, bob, 100, UNIVERSE, seed=15)
        tight = reconcile_known_d(alice, bob, 12, UNIVERSE, seed=15)
        assert loose.total_bits > tight.total_bits

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            reconcile_known_d({1}, {1}, -1, UNIVERSE, seed=1)
        with pytest.raises(ParameterError):
            reconcile_known_d({1}, {1}, 1, 0, seed=1)

    def test_success_rate_over_seeds(self):
        alice, bob = make_instance(400, 30, seed=20)
        successes = sum(
            reconcile_known_d(alice, bob, 35, UNIVERSE, seed=s).success for s in range(20)
        )
        assert successes >= 19

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), max_size=40),
        st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), max_size=40),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_random_sets(self, alice, bob, seed):
        difference = symmetric_difference_size(alice, bob)
        result = reconcile_known_d(alice, bob, difference + 2, UNIVERSE, seed=seed)
        if result.success:
            assert result.recovered == alice


class TestUnknownD:
    def test_two_rounds(self):
        alice, bob = make_instance(600, 16, seed=31)
        result = reconcile_unknown_d(alice, bob, UNIVERSE, seed=32)
        assert result.success and result.recovered == alice
        assert result.num_rounds == 2
        assert result.details["estimated_difference"] >= 1

    def test_zero_difference(self):
        alice, _ = make_instance(200, 0, seed=33)
        result = reconcile_unknown_d(alice, set(alice), UNIVERSE, seed=34)
        assert result.success and result.recovered == alice

    def test_large_difference(self):
        alice, bob = make_instance(800, 300, seed=35)
        result = reconcile_unknown_d(alice, bob, UNIVERSE, seed=36)
        assert result.success and result.recovered == alice

    def test_custom_estimator_factory(self):
        alice, bob = make_instance(300, 12, seed=37)
        result = reconcile_unknown_d(
            alice, bob, UNIVERSE, seed=38, estimator_factory=StrataEstimator
        )
        assert result.success and result.recovered == alice
