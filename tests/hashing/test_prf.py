"""Tests for the seeded hashing primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing import SeededHasher, bytes_to_int, derive_seed, int_to_bytes


class TestIntBytes:
    def test_round_trip_small(self):
        assert bytes_to_int(int_to_bytes(0)) == 0
        assert bytes_to_int(int_to_bytes(255)) == 255
        assert bytes_to_int(int_to_bytes(256)) == 256

    def test_fixed_length_padding(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)

    @given(st.integers(min_value=0, max_value=2**128))
    def test_round_trip_property(self, value):
        assert bytes_to_int(int_to_bytes(value)) == value


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestSeededHasher:
    def test_deterministic_across_instances(self):
        assert SeededHasher(7).hash_int(123) == SeededHasher(7).hash_int(123)

    def test_different_seeds_differ(self):
        assert SeededHasher(7).hash_int(123) != SeededHasher(8).hash_int(123)

    def test_output_width_respected(self):
        hasher = SeededHasher(3, out_bits=16)
        assert all(hasher.hash_int(i) < 2**16 for i in range(200))

    def test_wide_output_supported(self):
        hasher = SeededHasher(3, out_bits=256)
        value = hasher.hash_int(5)
        assert 0 <= value < 2**256
        assert value.bit_length() > 128  # overwhelmingly likely for a wide hash

    def test_hash_to_range(self):
        hasher = SeededHasher(11)
        values = {hasher.hash_to_range(i, 10) for i in range(1000)}
        assert values == set(range(10))

    def test_hash_to_range_invalid(self):
        with pytest.raises(ValueError):
            SeededHasher(11).hash_to_range(1, 0)

    def test_hash_iterable_order_independent(self):
        hasher = SeededHasher(5)
        assert hasher.hash_iterable([1, 2, 3]) == hasher.hash_iterable([3, 1, 2])

    def test_hash_iterable_detects_changes(self):
        hasher = SeededHasher(5)
        assert hasher.hash_iterable([1, 2, 3]) != hasher.hash_iterable([1, 2, 4])

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=30))
    def test_hash_iterable_permutation_invariant(self, values):
        hasher = SeededHasher(9)
        assert hasher.hash_iterable(values) == hasher.hash_iterable(list(reversed(values)))

    def test_distribution_roughly_uniform(self):
        hasher = SeededHasher(13, out_bits=8)
        buckets = [0] * 4
        for i in range(4000):
            buckets[hasher.hash_int(i) % 4] += 1
        assert max(buckets) - min(buckets) < 400
