"""Tests for pairwise, tabulation, family and checksum hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.hashing import Checksum, HashFamily, PairwiseHash, TabulationHash


class TestPairwiseHash:
    def test_output_range(self):
        hasher = PairwiseHash(seed=1, out_range=100)
        assert all(0 <= hasher(x) < 100 for x in range(500))

    def test_deterministic(self):
        assert PairwiseHash(2, 50)(10) == PairwiseHash(2, 50)(10)

    def test_seed_changes_function(self):
        outputs_a = [PairwiseHash(1, 1000)(x) for x in range(50)]
        outputs_b = [PairwiseHash(2, 1000)(x) for x in range(50)]
        assert outputs_a != outputs_b

    def test_out_bits(self):
        assert PairwiseHash(1, 256).out_bits == 8
        assert PairwiseHash(1, 257).out_bits == 9

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            PairwiseHash(1, 0)
        with pytest.raises(ParameterError):
            PairwiseHash(1, 10, prime=5)

    def test_negative_input_rejected(self):
        with pytest.raises(ParameterError):
            PairwiseHash(1, 10)(-3)

    def test_collision_rate_reasonable(self):
        hasher = PairwiseHash(seed=9, out_range=1 << 20)
        outputs = [hasher(x) for x in range(2000)]
        assert len(set(outputs)) > 1990


class TestTabulationHash:
    def test_deterministic(self):
        assert TabulationHash(3)(12345) == TabulationHash(3)(12345)

    def test_width_enforced(self):
        hasher = TabulationHash(3, key_bits=16)
        with pytest.raises(ParameterError):
            hasher(1 << 20)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            TabulationHash(3)(-1)

    def test_output_bits(self):
        hasher = TabulationHash(3, key_bits=32, out_bits=32)
        assert all(hasher(x) < 2**32 for x in range(100))

    def test_hash_to_range(self):
        hasher = TabulationHash(5)
        assert all(0 <= hasher.hash_to_range(x, 7) < 7 for x in range(100))

    @given(st.integers(min_value=0, max_value=2**63))
    def test_xor_structure_differs_from_identity(self, key):
        hasher = TabulationHash(11)
        assert isinstance(hasher(key), int)

    def test_few_collisions(self):
        hasher = TabulationHash(7, key_bits=32, out_bits=64)
        outputs = {hasher(x) for x in range(3000)}
        assert len(outputs) == 3000


class TestHashFamily:
    def test_cells_distinct(self):
        family = HashFamily(seed=1, num_hashes=4, num_cells=40)
        for key in range(200):
            cells = family.cells_for(key)
            assert len(set(cells)) == 4

    def test_cells_within_range(self):
        family = HashFamily(seed=1, num_hashes=3, num_cells=30)
        for key in range(200):
            assert all(0 <= cell < 30 for cell in family.cells_for(key))

    def test_partition_regions(self):
        family = HashFamily(seed=1, num_hashes=3, num_cells=30)
        for key in range(100):
            regions = [family.region_of(cell) for cell in family.cells_for(key)]
            assert regions == [0, 1, 2]

    def test_deterministic(self):
        a = HashFamily(2, 4, 44)
        b = HashFamily(2, 4, 44)
        assert a.cells_for(99) == b.cells_for(99)

    def test_uneven_partition(self):
        family = HashFamily(seed=5, num_hashes=4, num_cells=10)
        seen = set()
        for key in range(500):
            seen.update(family.cells_for(key))
        assert seen == set(range(10))

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            HashFamily(1, 0, 10)
        with pytest.raises(ParameterError):
            HashFamily(1, 5, 3)

    def test_region_of_out_of_range(self):
        family = HashFamily(1, 3, 9)
        with pytest.raises(ParameterError):
            family.region_of(9)


class TestChecksum:
    def test_deterministic(self):
        assert Checksum(1).of_key(42) == Checksum(1).of_key(42)

    def test_width(self):
        checksum = Checksum(1, bits=16)
        assert all(checksum.of_key(x) < 2**16 for x in range(300))

    def test_of_set_order_independent(self):
        checksum = Checksum(4)
        assert checksum.of_set([1, 2, 3]) == checksum.of_set([3, 2, 1])

    def test_different_keys_differ(self):
        checksum = Checksum(4)
        outputs = {checksum.of_key(x) for x in range(1000)}
        assert len(outputs) > 990
