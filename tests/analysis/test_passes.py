"""Each analysis rule fires on its seeded fixture violation.

The fixture files under ``fixtures/`` are parsed (never executed) and wrapped
in :class:`SourceFile` objects with synthetic ``src/...`` relpaths, so each
pass sees them as the production code it scopes to.
"""

import ast
from pathlib import Path

from repro.analysis.base import SourceFile
from repro.analysis.passes import (
    AsyncioPass,
    DeterminismPass,
    ExceptionHygienePass,
    ProtocolPartyPass,
    TypingCompletenessPass,
    UnusedImportPass,
)
from repro.analysis.runner import find_root

FIXTURES = Path(__file__).parent / "fixtures"
ROOT = find_root()


def load_fixture(name: str, relpath: str) -> SourceFile:
    path = FIXTURES / name
    text = path.read_text(encoding="utf-8")
    return SourceFile(
        path=path,
        relpath=relpath,
        text=text,
        tree=ast.parse(text),
        lines=text.splitlines(),
    )


def test_protocol_pass_flags_every_p_rule():
    source = load_fixture(
        "party_violations.py", "src/repro/protocols/parties/fixture_mod.py"
    )
    assert ProtocolPartyPass().interested_in(source)
    findings = list(ProtocolPartyPass().check_project(ROOT, [source]))
    rules = {finding.rule for finding in findings}
    assert {"P101", "P102", "P103", "P104", "P105"} <= rules
    # The uncharged Send is pinned to its exact line.
    p102 = [f for f in findings if f.rule == "P102"]
    assert any("uncharged" in f.message or f.line > 0 for f in p102)


def test_asyncio_pass_flags_every_a_rule():
    source = load_fixture("async_violations.py", "src/repro/service/fixture_mod.py")
    assert AsyncioPass().interested_in(source)
    rules = {finding.rule for finding in AsyncioPass().check_file(source)}
    assert rules == {"A201", "A202", "A203"}


def test_determinism_pass_flags_every_d_rule():
    source = load_fixture(
        "determinism_violations.py", "src/repro/iblt/fixture_mod.py"
    )
    assert DeterminismPass().interested_in(source)
    rules = {finding.rule for finding in DeterminismPass().check_file(source)}
    assert rules == {"D301", "D302", "D303", "D304", "D305"}


def test_exception_pass_flags_swallowing_handler():
    source = load_fixture(
        "exception_violations.py", "src/repro/service/fixture_mod.py"
    )
    findings = list(ExceptionHygienePass().check_file(source))
    assert [finding.rule for finding in findings] == ["E401"]


def test_exception_pass_accepts_reraise_and_log():
    text = (
        "import logging\n"
        "logger = logging.getLogger(__name__)\n"
        "def narrow():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception as exc:\n"
        "        raise RuntimeError('wrapped') from exc\n"
        "def logged():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception:\n"
        "        logger.exception('unexpected')\n"
    )
    source = SourceFile(
        path=Path("mem.py"),
        relpath="src/repro/service/mem.py",
        text=text,
        tree=ast.parse(text),
        lines=text.splitlines(),
    )
    assert list(ExceptionHygienePass().check_file(source)) == []


def test_import_pass_flags_unused_import():
    source = load_fixture("import_violations.py", "src/repro/comm/fixture_mod.py")
    findings = list(UnusedImportPass().check_file(source))
    assert [finding.rule for finding in findings] == ["I501"]
    assert "json" in findings[0].message


def test_typing_pass_flags_untyped_def():
    source = load_fixture(
        "typing_violations.py", "src/repro/protocols/fixture_mod.py"
    )
    findings = list(TypingCompletenessPass().check_file(source))
    assert [finding.rule for finding in findings] == ["T701"]
    assert "untyped" in findings[0].message


def test_passes_scope_to_production_paths():
    """A fixture outside the pass's paths is ignored (tests never trip CI)."""
    source = load_fixture(
        "determinism_violations.py", "tests/analysis/fixtures/determinism_violations.py"
    )
    assert not DeterminismPass().interested_in(source)
    assert not AsyncioPass().interested_in(source)
    assert not ProtocolPartyPass().interested_in(source)
