"""Seeded E401 violation: parsed by the analysis tests, never executed."""


def swallow():
    try:
        risky()
    except Exception:  # E401: broad handler, neither re-raises nor logs
        pass
