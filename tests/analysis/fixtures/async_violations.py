"""Seeded A2xx violations: parsed by the analysis tests, never executed."""

import asyncio
import time


class Worker:
    def __init__(self):
        self._lock = asyncio.Lock()

    async def slow(self):
        time.sleep(0.1)  # A201: blocking call inside a coroutine

    async def locked(self):
        with self._lock:  # A202: sync context manager held across an await
            await asyncio.sleep(0)

    async def fire(self):
        asyncio.create_task(self.slow())  # A203: un-awaited fire-and-forget
