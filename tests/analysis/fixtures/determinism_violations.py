"""Seeded D3xx violations: parsed by the analysis tests, never executed."""

import os
import random
import time


def sample(items):
    pick = random.choice(items)  # D301: unseeded module-level random
    stamp = time.time()  # D302: wall-clock read
    tag = hash(pick)  # D303: builtin hash outside __hash__
    salt = os.urandom(8)  # D304: OS entropy
    total = 0
    for element in {1, 2, 3}:  # D305: iterating a fresh set literal
        total += element
    return pick, stamp, tag, salt, total
