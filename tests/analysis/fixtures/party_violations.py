"""Seeded P-rule violations: parsed by the analysis tests, never executed.

``alice_party``/``bob_party`` form a deliberately broken pair -- alice has
two Send sites plus a non-command yield, bob has a single bare Receive -- so
one fixture file seeds every P1xx rule at once.
"""


def alice_party(ctx):
    yield Send("uncharged message")  # P102: no size_bits (and P103: no codec)
    yield Send("no codec", 64, payload=b"x")  # P103: codec missing
    yield 42  # P101: not a Send/Receive command
    return PartyOutcome(True)


def bob_party(ctx):
    payload = yield Receive()  # P104: no codec named
    return PartyOutcome(True, payload)
