"""Seeded T701 violation: parsed by the analysis tests, never executed."""


def untyped(value, count=1):  # T701: no annotations at all
    return value * count
