"""Seeded I501 violation: parsed by the analysis tests, never executed."""

import json  # I501: never referenced
import math


def area(radius):
    return math.pi * radius * radius
