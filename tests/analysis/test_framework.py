"""Suppression mechanics, registry consistency, the CLI, and the clean tree."""

import ast
import json
import shutil
from pathlib import Path

from repro.analysis.allowlist import ALLOWLIST, exempt
from repro.analysis.base import SourceFile
from repro.analysis.passes import DeterminismPass, RegistryDocsPass
from repro.analysis.runner import analyze, find_root
from repro.analysis.__main__ import main

ROOT = find_root()


def make_source(text: str, relpath: str) -> SourceFile:
    return SourceFile(
        path=Path(relpath),
        relpath=relpath,
        text=text,
        tree=ast.parse(text),
        lines=text.splitlines(),
    )


# ---------------------------------------------------------------------------
# Suppression: pragmas and the allowlist
# ---------------------------------------------------------------------------


def test_pragma_suppresses_finding_on_own_line():
    text = "import random\nx = random.random()  # lint: allow[D301] test reason\n"
    source = make_source(text, "src/repro/iblt/mem.py")
    assert analyze(ROOT, sources=[source], passes=[DeterminismPass()]) == []


def test_pragma_suppresses_finding_on_line_below():
    text = (
        "import random\n"
        "# lint: allow[D301] test reason\n"
        "x = random.random()\n"
    )
    source = make_source(text, "src/repro/iblt/mem.py")
    assert analyze(ROOT, sources=[source], passes=[DeterminismPass()]) == []


def test_without_pragma_the_finding_survives():
    text = "import random\nx = random.random()\n"
    source = make_source(text, "src/repro/iblt/mem.py")
    findings = analyze(ROOT, sources=[source], passes=[DeterminismPass()])
    assert [finding.rule for finding in findings] == ["D301"]


def test_pragma_for_another_rule_does_not_suppress():
    text = "import random\nx = random.random()  # lint: allow[D302] wrong rule\n"
    source = make_source(text, "src/repro/iblt/mem.py")
    findings = analyze(ROOT, sources=[source], passes=[DeterminismPass()])
    assert [finding.rule for finding in findings] == ["D301"]


def test_allowlist_entries_are_audited():
    """Every allowlist entry names an existing file, a rule, and a reason."""
    for entry in ALLOWLIST:
        assert (ROOT / entry.relpath).is_file(), entry.relpath
        assert entry.rule
        assert entry.reason.strip(), f"{entry.relpath} lacks a reason"
        assert exempt(entry.relpath, entry.rule)


def test_exempt_is_exact():
    assert not exempt("src/repro/iblt/table.py", "D301")


# ---------------------------------------------------------------------------
# Registry/docs consistency (R6xx) against a doctored tree
# ---------------------------------------------------------------------------


def _doctored_root(tmp_path: Path) -> Path:
    shutil.copytree(ROOT / "docs", tmp_path / "docs")
    (tmp_path / "README.md").write_text(
        (ROOT / "README.md").read_text(encoding="utf-8"), encoding="utf-8"
    )
    fixtures = tmp_path / "tests" / "protocols"
    fixtures.mkdir(parents=True)
    shutil.copy(
        ROOT / "tests" / "protocols" / "protocol_fixtures.py",
        fixtures / "protocol_fixtures.py",
    )
    return tmp_path


def test_registry_pass_is_clean_on_the_real_docs(tmp_path):
    root = _doctored_root(tmp_path)
    assert list(RegistryDocsPass().check_project(root, [])) == []


def test_missing_readme_row_fires_r601(tmp_path):
    root = _doctored_root(tmp_path)
    readme = (root / "README.md").read_text(encoding="utf-8")
    row = next(
        line for line in readme.splitlines() if line.startswith("| `ibf`")
    )
    (root / "README.md").write_text(readme.replace(row, ""), encoding="utf-8")
    findings = list(RegistryDocsPass().check_project(root, []))
    assert any(
        finding.rule == "R601" and "'ibf'" in finding.message
        for finding in findings
    )


def test_unregistered_fixture_instance_fires_r603(tmp_path):
    """A protocol with no determinism-suite fixture instance is flagged."""
    root = _doctored_root(tmp_path)
    fixtures = root / "tests" / "protocols" / "protocol_fixtures.py"
    kept = [
        line
        for line in fixtures.read_text(encoding="utf-8").splitlines()
        if 'instances["ibf"]' not in line
    ]
    fixtures.write_text("\n".join(kept) + "\n", encoding="utf-8")
    findings = list(RegistryDocsPass().check_project(root, []))
    assert any(
        finding.rule == "R603" and "'ibf'" in finding.message
        for finding in findings
    )


def test_orphan_docs_page_fires_r606(tmp_path):
    root = _doctored_root(tmp_path)
    (root / "docs" / "orphan.md").write_text("# Orphan\n", encoding="utf-8")
    findings = list(RegistryDocsPass().check_project(root, []))
    assert any(finding.rule == "R606" for finding in findings)


# ---------------------------------------------------------------------------
# CLI: exit codes and the JSON report
# ---------------------------------------------------------------------------


def test_cli_exits_zero_on_the_real_tree(capsys):
    assert main(["--root", str(ROOT)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_exits_nonzero_on_a_violation(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "iblt" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
    assert main(["--root", str(tmp_path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_scanned"] == 1
    assert [finding["rule"] for finding in report["findings"]] == ["D301"]


def test_cli_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "iblt" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nimport json\nx = random.random()\n")
    assert main(["--root", str(tmp_path), "--select", "I501", "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert [finding["rule"] for finding in report["findings"]] == ["I501"]


def test_cli_skips_cache_directories(tmp_path, capsys):
    cached = tmp_path / "src" / "repro" / "__pycache__" / "bad.py"
    cached.parent.mkdir(parents=True)
    cached.write_text("import random\nx = random.random()\n", encoding="utf-8")
    for cache_dir in (".hypothesis", ".pytest_cache", ".benchmarks"):
        stray = tmp_path / cache_dir / "stray.py"
        stray.parent.mkdir()
        stray.write_text("import random\nx = random.random()\n", encoding="utf-8")
    assert main(["--root", str(tmp_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["files_scanned"] == 0


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("P101", "A201", "D301", "R601", "E401", "I501", "T701"):
        assert rule in out


# ---------------------------------------------------------------------------
# The acceptance criterion: the real tree is clean
# ---------------------------------------------------------------------------


def test_real_tree_has_zero_findings():
    assert analyze(ROOT) == []
