"""KV records: fingerprints, LWW order, bit-exact wire form, state digest."""

import pytest

from repro.cluster import KVRecord, record_bits, record_fingerprint, state_digest
from repro.cluster.records import FINGERPRINT_UNIVERSE, read_record, write_record
from repro.comm.bits import BitReader, BitWriter
from repro.errors import ParameterError


def rec(key="user:7", version=3, writer=1, value="hello"):
    return KVRecord(key=key, version=version, writer=writer, value=value)


class TestFingerprints:
    def test_deterministic_and_in_universe(self):
        a = record_fingerprint(42, rec())
        b = record_fingerprint(42, rec())
        assert a == b
        assert 0 <= a < FINGERPRINT_UNIVERSE

    def test_every_field_moves_the_element(self):
        base = record_fingerprint(42, rec())
        assert record_fingerprint(42, rec(key="user:8")) != base
        assert record_fingerprint(42, rec(version=4)) != base
        assert record_fingerprint(42, rec(writer=2)) != base
        assert record_fingerprint(42, rec(value="other")) != base
        assert record_fingerprint(43, rec()) != base

    def test_tombstone_differs_from_any_value(self):
        dead = record_fingerprint(42, rec(value=None))
        assert dead != record_fingerprint(42, rec(value="hello"))
        assert dead != record_fingerprint(42, rec(value=""))


class TestLWWOrder:
    def test_higher_version_wins(self):
        assert rec(version=4).wins_over(rec(version=3))
        assert not rec(version=3).wins_over(rec(version=4))

    def test_writer_breaks_version_ties(self):
        assert rec(writer=2).wins_over(rec(writer=1))
        assert not rec(writer=1).wins_over(rec(writer=2))

    def test_anything_wins_over_absence(self):
        assert rec().wins_over(None)

    def test_never_wins_over_itself(self):
        assert not rec().wins_over(rec())

    def test_live_value_outranks_tombstone_at_same_version(self):
        # Total order even for same (version, writer): deletion loses.
        assert rec(value="x").wins_over(rec(value=None))

    def test_order_is_total_and_antisymmetric(self):
        records = [
            rec(version=v, writer=w, value=val)
            for v in (1, 2)
            for w in (0, 1)
            for val in (None, "a", "b")
        ]
        for left in records:
            for right in records:
                if left != right:
                    assert left.wins_over(right) != right.wins_over(left)


class TestWireForm:
    @pytest.mark.parametrize(
        "record",
        [
            rec(),
            rec(value=None),
            rec(key="k", value=""),
            rec(key="naïve-κλειδί", value="végtelen értek"),  # multi-byte UTF-8
            rec(version=(1 << 64) - 1, writer=(1 << 32) - 1),
        ],
    )
    def test_roundtrip_is_bit_exact(self, record):
        writer = BitWriter()
        write_record(writer, record)
        assert writer.bit_length == record_bits(record)
        reader = BitReader(writer.getvalue())
        assert read_record(reader) == record

    def test_json_wire_roundtrip(self):
        for record in (rec(), rec(value=None)):
            assert KVRecord.from_wire(record.to_wire()) == record

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(key=""),
            dict(version=0),
            dict(version=1 << 64),
            dict(writer=-1),
            dict(writer=1 << 32),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            rec(**kwargs)


class TestStateDigest:
    def test_order_independent(self):
        records = [rec(key=f"k{i}", version=i + 1) for i in range(5)]
        assert state_digest(records) == state_digest(reversed(records))

    def test_any_field_changes_the_digest(self):
        base = [rec(), rec(key="other", version=5)]
        assert state_digest(base) != state_digest([rec(value="x"), base[1]])
        assert state_digest(base) != state_digest([rec(version=4), base[1]])
        assert state_digest(base) != state_digest(base[:1])

    def test_tombstone_distinct_from_empty_value(self):
        assert state_digest([rec(value=None)]) != state_digest([rec(value="")])
