"""One pairwise kv session: purity, exact accounting, failure atomicity."""

import pytest

import repro
from repro.cluster import VersionedKV
from repro.cluster.parties import kv_context, kv_parties, pull_request_bits
from repro.cluster.records import records_bits
from repro.errors import ParameterError
from repro.protocols.options import ReconcileOptions
from repro.protocols.session import Session
from repro.protocols.transports import SerializingTransport

SEED = 99


def replica_pair(unique=6, shared=30):
    from repro.cluster import KVRecord

    left = VersionedKV(0, seed=SEED)
    right = VersionedKV(1, seed=SEED)
    common = [
        KVRecord(key=f"shared-{i}", version=i + 1, writer=0, value=f"c{i}")
        for i in range(shared)
    ]
    left.merge_records(common)
    right.merge_records(common)
    for i in range(unique):
        left.put(f"left-{i}", f"lv{i}")
        right.put(f"right-{i}", f"rv{i}")
    return left, right


class TestSessionOutcome:
    def test_parties_are_pure_and_outcomes_carry_the_merges(self):
        left, right = replica_pair()
        before = (left.digest(), right.digest())
        result = repro.reconcile(
            left, right, protocol="kv", seed=SEED, difference_bound=16
        )
        assert result.success
        # Neither replica moved: the session only *computed* the merges.
        assert (left.digest(), right.digest()) == before
        # Applying both sides' records converges the pair.
        ctx = kv_context(ReconcileOptions(seed=SEED, difference_bound=16))
        session = Session(*kv_parties(left, right, 16, ctx)).run()
        left.merge_records(session.alice.details["kv_apply"])
        right.merge_records(session.bob.details["kv_apply"])
        assert left.digest() == right.digest()
        assert left.get("right-0") == "rv0" and right.get("left-0") == "lv0"

    def test_unknown_d_variant_converges_too(self):
        left, right = replica_pair()
        ctx = kv_context(ReconcileOptions(seed=SEED))
        session = Session(*kv_parties(left, right, None, ctx)).run()
        assert session.alice.success and session.bob.success
        assert session.alice.details["difference_bound_used"] >= 1
        left.merge_records(session.alice.details["kv_apply"])
        right.merge_records(session.bob.details["kv_apply"])
        assert left.digest() == right.digest()

    def test_phase_two_bits_are_exact(self):
        left, right = replica_pair()
        ctx = kv_context(ReconcileOptions(seed=SEED, difference_bound=16))
        session = Session(
            *kv_parties(left, right, 16, ctx), transport=SerializingTransport()
        ).run()
        assert session.bob.success
        by_label = {m.label: m for m in session.transcript.messages}
        # Bob pulls left's 6 one-sided fingerprints and pushes his own 6
        # records; alice replies with the 6 pulled records.
        wanted = sorted(left.fingerprints - right.fingerprints)
        pushed = right.records_for(tuple(sorted(right.fingerprints - left.fingerprints)))
        assert by_label["kv pull"].size_bits == pull_request_bits(wanted, pushed)
        replied = left.records_for(tuple(wanted))
        assert by_label["kv records"].size_bits == records_bits(replied)

    def test_identical_replicas_exchange_no_records(self):
        left, right = replica_pair(unique=0)
        result = repro.reconcile(
            left, right, protocol="kv", seed=SEED, difference_bound=8
        )
        assert result.success
        assert result.details["kv_apply"] == ()
        assert result.details["difference_found"] == 0

    def test_undersized_bound_fails_without_touching_replicas(self):
        left, right = replica_pair(unique=20)
        before = (left.digest(), right.digest())
        ctx = kv_context(ReconcileOptions(seed=SEED, difference_bound=2))
        session = Session(*kv_parties(left, right, 2, ctx)).run()
        assert not session.bob.success
        assert session.bob.details["failure"] == "iblt-peel"
        assert (left.digest(), right.digest()) == before


class TestContextValidation:
    def test_foreign_universe_rejected(self):
        with pytest.raises(ParameterError, match="2\\*\\*64"):
            kv_context(ReconcileOptions(seed=SEED, universe_size=1 << 20))

    def test_custom_estimator_factory_rejected(self):
        with pytest.raises(ParameterError, match="estimator_factory"):
            kv_context(
                ReconcileOptions(seed=SEED, estimator_factory=lambda *a: None)
            )

    def test_session_seed_must_match_replica_seed(self):
        left, right = replica_pair()
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="seed"):
            repro.reconcile(
                left, right, protocol="kv", seed=SEED + 1, difference_bound=16
            )


class TestStoreReuse:
    def test_repeat_sessions_hit_the_live_sketches(self):
        """After the first geometry touch, every sketch is served live."""
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        left = VersionedKV(0, seed=SEED, metrics=metrics)
        right = VersionedKV(1, seed=SEED)
        for i in range(8):
            left.put(f"k{i}", f"v{i}")
        repro.reconcile(left, right, protocol="kv", seed=SEED, difference_bound=8)
        misses_after_first = metrics.store_misses
        assert misses_after_first > 0  # the first touch encodes once
        for _ in range(3):
            repro.reconcile(
                left, right, protocol="kv", seed=SEED, difference_bound=8
            )
        assert metrics.store_misses == misses_after_first
        assert metrics.store_hits >= 3
