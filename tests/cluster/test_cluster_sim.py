"""The simulated cluster: convergence, exact accounting, membership."""

import pytest

from repro.cluster import Cluster, GossipScheduler
from repro.errors import ClusterError, ParameterError

SEED = 7


def plant_writes(cluster, writes=4):
    for index, name in enumerate(cluster.node_names):
        for w in range(writes):
            cluster.put(name, f"{name}-key{w}", f"value-{index}-{w}")


class TestConvergence:
    def test_eight_nodes_converge_to_byte_identical_replicas(self):
        cluster = Cluster(8, seed=SEED, difference_bound=32)
        plant_writes(cluster)
        report = cluster.run_until_converged()
        assert report.converged
        assert report.node_count == 8
        digests = {cluster[name].digest() for name in cluster.node_names}
        assert digests == {report.digest}
        # Every write reached every replica.
        for name in cluster.node_names:
            assert cluster[name].get("node0-key0") == "value-0-0"
            assert len(cluster[name]) == 8 * 4

    def test_total_bits_is_exactly_the_summed_session_records(self):
        cluster = Cluster(8, seed=SEED, difference_bound=32)
        plant_writes(cluster)
        report = cluster.run_until_converged()
        assert report.total_bits == sum(
            session.bits for session in cluster.metrics.sessions
        )
        assert report.sessions == len(cluster.metrics.sessions)
        assert sum(
            cluster.metrics.bits_for_round(r + 1) for r in range(report.rounds)
        ) == report.total_bits

    def test_serializing_transport_charges_identical_bits(self):
        """The simulated loop's accounting survives real byte serialization."""
        plain = Cluster(4, seed=SEED, difference_bound=32)
        plant_writes(plain)
        report_plain = plain.run_until_converged()
        checked = Cluster(4, seed=SEED, difference_bound=32, serializing=True)
        plant_writes(checked)
        report_checked = checked.run_until_converged()
        assert report_plain.total_bits == report_checked.total_bits
        assert report_plain.digest == report_checked.digest
        assert report_plain.rounds == report_checked.rounds

    def test_run_is_a_deterministic_function_of_the_seed(self):
        reports = []
        for _ in range(2):
            cluster = Cluster(6, seed=SEED, difference_bound=32)
            plant_writes(cluster)
            reports.append(cluster.run_until_converged())
        assert reports[0] == reports[1]

    def test_unknown_d_cluster_converges(self):
        cluster = Cluster(4, seed=SEED, difference_bound=None)
        plant_writes(cluster)
        report = cluster.run_until_converged()
        assert report.converged

    def test_stale_policy_converges(self):
        cluster = Cluster(6, seed=SEED, difference_bound=32, policy="stale")
        plant_writes(cluster)
        assert cluster.run_until_converged().converged

    def test_gossip_beats_the_full_state_baseline(self):
        from repro.cluster import KVRecord

        bulk = [
            KVRecord(key=f"bulk-{i}", version=1, writer=0, value=f"payload-{i}")
            for i in range(200)
        ]
        gossip = Cluster(8, seed=SEED, difference_bound=32)
        baseline = Cluster(8, seed=SEED, exchange="full")
        for cluster in (gossip, baseline):
            for name in cluster.node_names:
                cluster[name].merge_records(bulk)  # large shared prefix
            cluster.put("node0", "delta", "d")  # small planted delta
        report_gossip = gossip.run_until_converged()
        report_full = baseline.run_until_converged()
        assert report_gossip.converged and report_full.converged
        assert report_gossip.total_bits < report_full.total_bits


class TestRetries:
    def test_undersized_bound_retries_with_larger_tables_and_charges_all(self):
        cluster = Cluster(2, seed=SEED, difference_bound=1)
        for i in range(24):
            cluster.put("node0", f"k{i}", f"v{i}")
        record = cluster.gossip_once("node1", "node0")
        assert record.success
        assert record.attempts > 1
        assert cluster.metrics.total_bits == record.bits
        assert cluster["node1"].digest() == cluster["node0"].digest()

    def test_self_gossip_rejected(self):
        cluster = Cluster(2, seed=SEED)
        with pytest.raises(ParameterError):
            cluster.gossip_once("node0", "node0")


class TestMembership:
    def test_cold_join_catches_up_by_gossip_alone(self):
        cluster = Cluster(4, seed=SEED, difference_bound=32)
        plant_writes(cluster)
        cluster.run_until_converged()
        name = cluster.add_node()
        assert len(cluster[name]) == 0
        report = cluster.run_until_converged()
        assert report.converged and report.node_count == 5
        assert cluster[name].get("node0-key0") == "value-0-0"

    def test_crash_restart_replays_journal_then_reconverges(self, tmp_path):
        cluster = Cluster(4, seed=SEED, difference_bound=32, journal_root=tmp_path)
        plant_writes(cluster)
        cluster.run_until_converged()
        pre_crash = cluster["node3"].digest()
        cluster.crash("node3")
        assert "node3" not in cluster.node_names
        cluster.put("node0", "while-down", "missed")
        cluster.run_round()
        replica = cluster.restart("node3")
        # Journal replay restored the exact pre-crash state...
        assert replica.digest() == pre_crash
        assert replica.get("while-down") is None
        # ...and catch-up gossip delivers what it missed.
        report = cluster.run_until_converged()
        assert report.converged
        assert replica.get("while-down") == "missed"

    def test_restart_requires_a_crash(self):
        cluster = Cluster(2, seed=SEED)
        with pytest.raises(ClusterError):
            cluster.restart("node0")
        with pytest.raises(ClusterError):
            cluster.crash("ghost")

    def test_duplicate_node_name_rejected(self):
        cluster = Cluster(2, seed=SEED)
        with pytest.raises(ParameterError):
            cluster.add_node("node0")


class TestScheduler:
    def test_peer_selection_is_deterministic_and_never_self(self):
        names = [f"node{i}" for i in range(5)]
        first = GossipScheduler(3, "uniform")
        second = GossipScheduler(3, "uniform")
        for round_index in range(1, 20):
            for name in names:
                peer = first.select_peer(name, round_index, names)
                assert peer != name
                assert peer == second.select_peer(name, round_index, names)

    def test_stale_policy_visits_every_peer(self):
        names = [f"node{i}" for i in range(5)]
        scheduler = GossipScheduler(3, "stale")
        seen = set()
        for round_index in range(1, 5):
            peer = scheduler.select_peer("node0", round_index, names)
            assert peer not in seen  # least-recently-synced cycles the ring
            seen.add(peer)
            scheduler.record_sync("node0", peer)
        assert seen == set(names) - {"node0"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ParameterError):
            GossipScheduler(0, "bogus")

    def test_no_candidates_rejected(self):
        scheduler = GossipScheduler(0)
        with pytest.raises(ParameterError):
            scheduler.select_peer("node0", 1, ["node0"])
