"""The live cluster: N ClusterNodes on the asyncio service stack.

Acceptance pin: an N=8 cluster with planted per-node deltas converges to
byte-identical replicas over real sockets, with every client-reported bit
total matching the sum the server-side metrics charged.
"""

import asyncio

import pytest

from repro.cluster import Cluster, ClusterNode, GossipScheduler, VersionedKV, acontrol
from repro.cluster.node import DIGEST_LABEL, GOSSIP_LABEL, PUT_LABEL
from repro.errors import ClusterError
from repro.protocols.options import ReconcileOptions
from repro.service.metrics import ServiceMetrics

SEED = 31


def run_async(coroutine):
    return asyncio.run(coroutine)


def make_nodes(count, *, difference_bound=32):
    nodes = {}
    metrics = {}
    for index in range(count):
        name = f"node{index}"
        metrics[name] = ServiceMetrics()
        nodes[name] = ClusterNode(
            name,
            VersionedKV(index, seed=SEED),
            options=ReconcileOptions(seed=SEED, difference_bound=difference_bound),
            metrics=metrics[name],
        )
    return nodes, metrics


@pytest.mark.timeout(120)
def test_eight_live_nodes_converge_with_exact_bit_accounting():
    async def body():
        nodes, metrics = make_nodes(8)
        for node in nodes.values():
            await node.start()
        try:
            for index, (name, node) in enumerate(sorted(nodes.items())):
                for w in range(4):
                    node.replica.put(f"{name}-key{w}", f"value-{index}-{w}")
            scheduler = GossipScheduler(SEED, "uniform")
            names = sorted(nodes)
            client_bits = 0
            sessions = 0
            for round_index in range(1, 9):
                for name in names:
                    peer = scheduler.select_peer(name, round_index, names)
                    target = nodes[peer]
                    summary = await nodes[name].agossip(target.host, target.port)
                    assert summary["ok"], summary
                    client_bits += summary["bits"]
                    sessions += 1
                    scheduler.record_sync(name, peer)
                digests = {node.replica.digest() for node in nodes.values()}
                if len(digests) == 1:
                    break
            digests = {node.replica.digest() for node in nodes.values()}
            assert len(digests) == 1, "live cluster failed to converge"
            for node in nodes.values():
                assert len(node.replica) == 8 * 4
            # Every gossip bit the clients observed was charged, exactly
            # once, by some server's transcript accounting.
            server_bits = sum(m.bits_charged_total for m in metrics.values())
            assert server_bits == client_bits
            served = sum(m.sessions_served for m in metrics.values())
            assert served == sessions
        finally:
            for node in nodes.values():
                await node.aclose()

    run_async(body())


@pytest.mark.timeout(60)
def test_live_and_simulated_sessions_charge_identical_bits():
    """The same planted delta costs the same bits on sockets as simulated."""
    sim = Cluster(2, seed=SEED, difference_bound=32)
    for w in range(4):
        sim.put("node0", f"key{w}", f"v{w}")
    record = sim.gossip_once("node1", "node0")
    assert record.success

    async def body():
        nodes, _ = make_nodes(2)
        for w in range(4):
            nodes["node0"].replica.put(f"key{w}", f"v{w}")
        async with nodes["node0"], nodes["node1"]:
            summary = await nodes["node1"].agossip(
                nodes["node0"].host, nodes["node0"].port
            )
        assert summary["ok"]
        return summary["bits"]

    assert run_async(body()) == record.bits


@pytest.mark.timeout(60)
def test_control_frames_drive_writes_and_digests():
    async def body():
        nodes, _ = make_nodes(2)
        async with nodes["node0"] as left, nodes["node1"] as right:
            reply = await acontrol(
                left.host, left.port, PUT_LABEL, {"key": "user:7", "value": "hi"}
            )
            assert reply["ok"] and reply["version"] == 1
            # Remote-triggered gossip: tell node1 to pull from node0.
            reply = await acontrol(
                right.host,
                right.port,
                GOSSIP_LABEL,
                {"host": left.host, "port": left.port},
            )
            assert reply["ok"] and reply["applied"] == 1
            left_digest = await acontrol(left.host, left.port, DIGEST_LABEL, {})
            right_digest = await acontrol(right.host, right.port, DIGEST_LABEL, {})
            assert left_digest["digest"] == right_digest["digest"]
            assert right.replica.get("user:7") == "hi"

    run_async(body())


@pytest.mark.timeout(60)
def test_gossip_with_unreachable_peer_reports_not_ok():
    async def body():
        nodes, _ = make_nodes(2)
        async with nodes["node0"] as node:
            with pytest.raises(ClusterError, match="refused"):
                await acontrol(
                    node.host, node.port, GOSSIP_LABEL, {"host": "127.0.0.1", "port": 1}
                )
            # The node itself is unharmed and still serves.
            reply = await acontrol(node.host, node.port, DIGEST_LABEL, {})
            assert reply["ok"]

    run_async(body())


def test_options_seed_must_match_replica():
    with pytest.raises(ClusterError, match="seed"):
        ClusterNode(
            "node0", VersionedKV(0, seed=SEED), options=ReconcileOptions(seed=SEED + 1)
        )
