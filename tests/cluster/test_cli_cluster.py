"""The ``python -m repro.cluster`` CLI, run as real processes.

Acceptance pin: a SIGKILL'd node restarted on the same journal replays its
pre-crash state and reconverges with the survivors through catch-up gossip.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SEED = 2018


def run_cli(*argv):
    return main([str(arg) for arg in argv])


def spawn_node(node_id, journal, port=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cluster", "node",
            "--node-id", str(node_id), "--port", str(port),
            "--seed", str(SEED), "--journal", str(journal),
            "--difference-bound", "16",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"kv node \d+ serving on 127\.0\.0\.1:(\d+) \((\d+) records\)", line)
    assert match, f"unexpected node banner: {line!r}"
    return proc, int(match.group(1)), int(match.group(2))


def stop(proc):
    if proc.poll() is None:
        proc.kill()
        proc.communicate(timeout=30)


def digest_of(port, capsys):
    import json

    assert run_cli("digest", "--port", port) == 0
    return json.loads(capsys.readouterr().out)


@pytest.mark.timeout(180)
def test_sigkilled_node_rejoins_via_journal_replay_and_reconverges(
    tmp_path, capsys
):
    procs = {}
    try:
        ports = {}
        for node_id in range(3):
            proc, port, records = spawn_node(
                node_id, tmp_path / f"node{node_id}.journal.jsonl"
            )
            assert records == 0
            procs[node_id] = proc
            ports[node_id] = port

        # Plant distinct writes on every node, then gossip to convergence.
        for node_id in range(3):
            for w in range(3):
                assert run_cli(
                    "put", "--port", ports[node_id],
                    "--key", f"node{node_id}-k{w}", "--value", f"v{node_id}-{w}",
                ) == 0
        capsys.readouterr()
        for _ in range(3):
            for node_id, peer in ((0, 1), (1, 2), (2, 0)):
                assert run_cli(
                    "gossip", "--port", ports[node_id],
                    "--peer-port", ports[peer],
                ) == 0
        out = capsys.readouterr().out
        assert re.search(r"gossiped with .*: \d+ bits, \d+ records applied", out)
        digests = [digest_of(ports[i], capsys) for i in range(3)]
        assert {d["digest"] for d in digests} == {digests[0]["digest"]}
        assert all(d["size"] == 9 for d in digests)
        converged = digests[0]["digest"]

        # SIGKILL node 2: no drain, no goodbye -- the journal is all it has.
        procs[2].kill()
        procs[2].communicate(timeout=30)

        # The survivors keep writing while it is down.
        assert run_cli(
            "put", "--port", ports[0], "--key", "while-down", "--value", "missed"
        ) == 0
        assert run_cli("gossip", "--port", ports[0], "--peer-port", ports[1]) == 0
        capsys.readouterr()

        # Restart on the same journal: replay restores the pre-crash state...
        proc, port, records = spawn_node(2, tmp_path / "node2.journal.jsonl")
        procs[2] = proc
        ports[2] = port
        assert records == 9
        reborn = digest_of(ports[2], capsys)
        assert reborn["digest"] == converged
        assert reborn["size"] == 9

        # ...and catch-up gossip delivers what it missed.
        assert run_cli("gossip", "--port", ports[2], "--peer-port", ports[0]) == 0
        capsys.readouterr()
        digests = [digest_of(ports[i], capsys) for i in range(3)]
        assert {d["digest"] for d in digests} == {digests[0]["digest"]}
        assert all(d["size"] == 10 for d in digests)

        # Graceful shutdown drains cleanly on SIGTERM.
        procs[0].send_signal(signal.SIGTERM)
        stdout, _ = procs[0].communicate(timeout=60)
        assert procs[0].returncode == 0, stdout
        assert "draining..." in stdout
        assert re.search(r"drained: \d+ finished, \d+ aborted", stdout)
    finally:
        for proc in procs.values():
            stop(proc)


@pytest.mark.timeout(120)
def test_readme_cluster_quickstart(tmp_path, capsys):
    """The README "Workloads & cluster" example, end to end."""
    procs = []
    try:
        proc, port0, records = spawn_node(0, tmp_path / "node0.jsonl")
        procs.append(proc)
        assert records == 0
        proc, port1, records = spawn_node(1, tmp_path / "node1.jsonl")
        procs.append(proc)
        assert records == 0

        assert run_cli(
            "put", "--port", port0, "--key", "user:7", "--value", "eve"
        ) == 0
        assert run_cli("gossip", "--port", port1, "--peer-port", port0) == 0
        capsys.readouterr()

        first = digest_of(port0, capsys)
        second = digest_of(port1, capsys)
        assert first["digest"] == second["digest"]
        assert first["size"] == second["size"] == 1
    finally:
        for proc in procs:
            stop(proc)


@pytest.mark.timeout(60)
def test_sim_subcommand_prints_rounds_table_and_converges(capsys):
    assert run_cli("sim", "--nodes", 4, "--writes", 2, "--seed", 5) == 0
    out = capsys.readouterr().out
    assert "gossip rounds" in out
    assert re.search(r"converged: 4 nodes in \d+ round\(s\), \d+ sessions, \d+ bits", out)


def test_unreachable_node_is_a_clean_error(capsys):
    assert run_cli("digest", "--port", 1) == 2
    assert "error:" in capsys.readouterr().err
