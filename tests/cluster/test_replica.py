"""Replica semantics: LWW merge, journal replay, crash tails, sketch seam."""

import json

import pytest

from repro.cluster import KVRecord, RecordJournal, VersionedKV
from repro.cluster.records import FINGERPRINT_UNIVERSE
from repro.errors import ClusterError, ParameterError
from repro.store.config import SketchConfig


class TestLocalWrites:
    def test_put_get_delete(self):
        kv = VersionedKV(0, seed=5)
        kv.put("a", "1")
        assert kv.get("a") == "1"
        kv.put("a", "2")
        assert kv.get("a") == "2"
        assert len(kv) == 1
        kv.delete("a")
        assert kv.get("a") is None
        # The tombstone is a first-class record, not an absence.
        assert kv.record("a").tombstone
        assert len(kv) == 1

    def test_clock_advances_past_merged_versions(self):
        kv = VersionedKV(0, seed=5)
        kv.merge_records([KVRecord(key="x", version=41, writer=9, value="v")])
        record = kv.put("y", "w")
        assert record.version == 42

    def test_overwrite_swaps_exactly_one_fingerprint(self):
        kv = VersionedKV(0, seed=5)
        kv.put("a", "1")
        before = kv.fingerprints
        kv.put("a", "2")
        after = kv.fingerprints
        assert len(before) == len(after) == 1
        assert before != after


class TestMerge:
    def records(self):
        return [
            KVRecord(key="a", version=1, writer=0, value="old"),
            KVRecord(key="a", version=2, writer=1, value="new"),
            KVRecord(key="b", version=1, writer=1, value=None),
            KVRecord(key="c", version=3, writer=0, value="x"),
        ]

    def test_merge_is_order_independent(self):
        forward = VersionedKV(0, seed=5)
        backward = VersionedKV(1, seed=5)
        forward.merge_records(self.records())
        backward.merge_records(reversed(self.records()))
        assert forward.digest() == backward.digest()
        assert forward.get("a") == "new"

    def test_merge_is_idempotent(self):
        kv = VersionedKV(0, seed=5)
        assert kv.merge_records(self.records()) == 4
        assert kv.merge_records(self.records()) == 0

    def test_superseded_records_do_not_apply(self):
        kv = VersionedKV(0, seed=5)
        kv.merge_records(self.records())
        stale = KVRecord(key="a", version=1, writer=0, value="old")
        assert kv.merge_records([stale]) == 0
        assert kv.get("a") == "new"

    def test_fingerprint_collision_raises(self, monkeypatch):
        import repro.cluster.replica as replica_module

        monkeypatch.setattr(replica_module, "record_fingerprint", lambda s, r: 77)
        kv = VersionedKV(0, seed=5)
        kv.put("a", "1")
        with pytest.raises(ClusterError, match="collision"):
            kv.put("b", "2")


class TestJournal:
    def test_replay_restores_exact_state(self, tmp_path):
        path = tmp_path / "node.journal.jsonl"
        kv = VersionedKV(0, seed=5, journal_path=path)
        kv.put("a", "1")
        kv.put("b", "2")
        kv.put("a", "3")
        kv.delete("b")
        digest = kv.digest()
        kv.close()
        reborn = VersionedKV(0, seed=5, journal_path=path)
        assert reborn.digest() == digest
        assert reborn.get("a") == "3"
        assert reborn.get("b") is None
        assert reborn.clock == kv.clock

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "node.journal.jsonl"
        kv = VersionedKV(0, seed=5, journal_path=path)
        kv.put("a", "1")
        kv.put("b", "2")
        kv.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "c", "version": 3')  # crash mid-append
        reborn = VersionedKV(0, seed=5, journal_path=path)
        assert reborn.get("a") == "1" and reborn.get("b") == "2"
        assert len(reborn) == 2
        # The next append lands on a clean line, not the torn fragment.
        reborn.put("d", "4")
        reborn.close()
        third = VersionedKV(0, seed=5, journal_path=path)
        assert third.get("d") == "4"

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "node.journal.jsonl"
        kv = VersionedKV(0, seed=5, journal_path=path)
        kv.put("a", "1")
        kv.close()
        lines = path.read_text().splitlines()
        path.write_text("not json\n" + "\n".join(lines) + "\n")
        with pytest.raises(ClusterError, match="corrupt journal"):
            VersionedKV(0, seed=5, journal_path=path)

    def test_compact_rewrites_to_merged_state(self, tmp_path):
        path = tmp_path / "node.journal.jsonl"
        kv = VersionedKV(0, seed=5, journal_path=path)
        for i in range(5):
            kv.put("a", f"v{i}")
        assert len(RecordJournal(path).records()) == 5
        kv.compact_journal()
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(entries) == 1 and entries[0]["value"] == "v4"
        reborn = VersionedKV(0, seed=5, journal_path=path)
        assert reborn.digest() == kv.digest()

    def test_compact_without_journal_raises(self):
        with pytest.raises(ClusterError, match="no journal"):
            VersionedKV(0, seed=5).compact_journal()


class TestSessionSeam:
    def config(self, **overrides):
        params = dict(universe_size=FINGERPRINT_UNIVERSE, seed=5)
        params.update(overrides)
        return SketchConfig(**params)

    def test_view_serves_the_fingerprint_set(self):
        kv = VersionedKV(0, seed=5)
        kv.put("a", "1")
        view = kv.view_for(self.config())
        assert view.size == 1

    def test_wrong_universe_rejected(self):
        kv = VersionedKV(0, seed=5)
        with pytest.raises(ParameterError, match="2\\*\\*64"):
            kv.view_for(self.config(universe_size=1 << 32))

    def test_seed_disagreement_rejected(self):
        kv = VersionedKV(0, seed=5)
        with pytest.raises(ClusterError, match="seed"):
            kv.view_for(self.config(seed=6))

    def test_negative_node_id_rejected(self):
        with pytest.raises(ParameterError):
            VersionedKV(-1)
