"""Cross-backend determinism: same seed => identical transcripts and results.

The cell-store backends (:mod:`repro.iblt.backends`) must be observationally
identical: for the same seed and inputs, a protocol run with the pure-Python
store and one with the NumPy store must exchange byte-identical messages and
return identical :class:`~repro.comm.ReconciliationResult`\\ s.  These tests
pin that guarantee for the flat set-reconciliation protocol and the
structured set-of-sets protocols (IBLT-of-IBLTs, cascading, multiround), all
of which route their child encodings through the batched
:class:`~repro.iblt.multi.IBLTArray` pipeline.

The same guarantee covers the compiled tier and every step of its fallback
chain: ``backend="numba"`` must produce byte-identical transcripts whether it
runs compiled (numba installed), falls back to the NumPy store (numba
missing), or falls all the way to the reference store (NumPy missing, or
keys wider than 64 bits).
"""

import random

import pytest

from repro.config import resolve_cell_backend
from repro.core.setrecon.ibf import reconcile_known_d
from repro.core.setsofsets.cascading import reconcile_cascading
from repro.core.setsofsets.iblt_of_iblts import reconcile_iblt_of_iblts
from repro.core.setsofsets.multiround import reconcile_multiround
from repro.core.setsofsets.types import SetOfSets
from repro.iblt import IBLT, IBLTParameters, NumbaCellStore, NumpyCellStore

pytestmark = pytest.mark.skipif(
    not NumpyCellStore.available(), reason="NumPy not installed"
)


def transcript_fingerprint(transcript):
    """Message metadata plus canonical payload bytes (tables serialize)."""
    fingerprint = []
    for message in transcript.messages:
        payload = message.payload
        serialized = []
        stack = [payload]
        while stack:
            item = stack.pop()
            if isinstance(item, IBLT):
                serialized.append(item.serialize())
            elif isinstance(item, (list, tuple)):
                stack.extend(item)
        fingerprint.append(
            (message.sender, message.round_index, message.label, message.size_bits,
             tuple(serialized))
        )
    return fingerprint


def run_known_d(backend):
    rng = random.Random(1234)
    shared = set(rng.sample(range(1 << 30), 500))
    alice = shared | {1 << 30, (1 << 30) + 7}
    bob = shared | {(1 << 30) + 100}
    return reconcile_known_d(
        alice, bob, 8, 1 << 31, seed=77, backend=backend
    )


def run_cascading(backend):
    alice = SetOfSets([{1, 2, 3}, {4, 5, 6}, {7, 8}, {9, 10, 11, 12}])
    bob = SetOfSets([{1, 2, 3}, {4, 5, 600}, {7, 8}, {9, 10, 11}])
    return reconcile_cascading(
        alice, bob, 4, 1024, 4, seed=55, backend=backend
    )


def _structured_instance():
    rng = random.Random(4321)
    children = [
        frozenset(rng.sample(range(1 << 16), 6)) for _ in range(32)
    ]
    bob_children = [set(child) for child in children]
    bob_children[3].add(60000)
    bob_children[11].discard(min(bob_children[11]))
    alice = SetOfSets(children)
    bob = SetOfSets(bob_children)
    return alice, bob


def run_iblt_of_iblts(backend):
    alice, bob = _structured_instance()
    return reconcile_iblt_of_iblts(
        alice, bob, 6, 1 << 16, seed=66, backend=backend
    )


def run_multiround(backend):
    alice, bob = _structured_instance()
    return reconcile_multiround(
        alice, bob, 6, 1 << 16, 7, seed=88, backend=backend
    )


class TestKnownD:
    def test_identical_results(self):
        py = run_known_d("python")
        np_result = run_known_d("numpy")
        assert py.success and np_result.success
        assert py.recovered == np_result.recovered
        assert py.details == np_result.details

    def test_byte_identical_transcripts(self):
        py = run_known_d("python")
        np_result = run_known_d("numpy")
        assert transcript_fingerprint(py.transcript) == transcript_fingerprint(
            np_result.transcript
        )


class TestCascading:
    def test_identical_results(self):
        py = run_cascading("python")
        np_result = run_cascading("numpy")
        assert py.success and np_result.success
        assert py.recovered == np_result.recovered
        assert py.details == np_result.details

    def test_byte_identical_transcripts(self):
        py = run_cascading("python")
        np_result = run_cascading("numpy")
        assert transcript_fingerprint(py.transcript) == transcript_fingerprint(
            np_result.transcript
        )


class TestIBLTofIBLTs:
    def test_identical_results(self):
        py = run_iblt_of_iblts("python")
        np_result = run_iblt_of_iblts("numpy")
        assert py.success and np_result.success
        assert py.recovered == np_result.recovered
        assert py.details == np_result.details

    def test_byte_identical_transcripts(self):
        py = run_iblt_of_iblts("python")
        np_result = run_iblt_of_iblts("numpy")
        assert transcript_fingerprint(py.transcript) == transcript_fingerprint(
            np_result.transcript
        )


class TestMultiround:
    def test_identical_results(self):
        py = run_multiround("python")
        np_result = run_multiround("numpy")
        assert py.success and np_result.success
        assert py.recovered == np_result.recovered
        assert py.details == np_result.details

    def test_byte_identical_transcripts(self):
        py = run_multiround("python")
        np_result = run_multiround("numpy")
        assert transcript_fingerprint(py.transcript) == transcript_fingerprint(
            np_result.transcript
        )


class TestDefaultBackendInvariance:
    def test_auto_matches_forced_backends(self):
        auto = run_known_d(None)
        forced = run_known_d("python")
        assert auto.recovered == forced.recovered
        assert transcript_fingerprint(auto.transcript) == transcript_fingerprint(
            forced.transcript
        )


ALL_RUNS = [run_known_d, run_cascading, run_iblt_of_iblts, run_multiround]


class TestNumbaTier:
    """``backend="numba"`` is byte-identical to the reference, compiled or not.

    Without numba installed the request resolves down the fallback chain to
    the NumPy (or Python) store; with numba installed it runs compiled.  The
    transcripts must be identical either way, so this test pins the whole
    chain on every install.
    """

    @pytest.mark.parametrize("run", ALL_RUNS, ids=lambda run: run.__name__)
    def test_byte_identical_to_python(self, run):
        numba_result = run("numba")
        py = run("python")
        assert numba_result.success == py.success
        assert numba_result.recovered == py.recovered
        assert transcript_fingerprint(numba_result.transcript) == (
            transcript_fingerprint(py.transcript)
        )


class TestFallbackChain:
    def params(self, **kwargs):
        defaults = dict(num_cells=64, key_bits=32, seed=1)
        defaults.update(kwargs)
        return IBLTParameters(**defaults)

    def test_numba_request_resolves_down_the_chain(self):
        resolved = resolve_cell_backend("numba", self.params())
        if NumbaCellStore.available():
            assert resolved is NumbaCellStore
        else:
            assert resolved is NumpyCellStore

    def test_wide_keys_force_reference_store(self):
        wide = self.params(key_bits=80)
        assert resolve_cell_backend("numba", wide).name == "python"
        table = IBLT(wide, backend="numba")
        assert table.backend == "python"
        table.insert_batch([1 << 70, 5])
        result = table.try_decode()
        assert result.success and result.positive == {1 << 70, 5}

    def test_numpy_absent_runs_reference_chain(self, monkeypatch):
        """With NumPy (and hence numba) reported unavailable, ``numba``
        requests degrade to the reference store and still produce the exact
        python-tier transcript."""
        monkeypatch.setattr(
            NumpyCellStore, "available", classmethod(lambda cls: False)
        )
        monkeypatch.setattr(
            NumbaCellStore, "available", classmethod(lambda cls: False)
        )
        assert resolve_cell_backend("numba", self.params()).name == "python"
        degraded = run_iblt_of_iblts("numba")
        monkeypatch.undo()
        py = run_iblt_of_iblts("python")
        assert degraded.recovered == py.recovered
        assert transcript_fingerprint(degraded.transcript) == (
            transcript_fingerprint(py.transcript)
        )

    def test_numba_absent_resolves_to_numpy(self, monkeypatch):
        monkeypatch.setattr(
            NumbaCellStore, "available", classmethod(lambda cls: False)
        )
        assert resolve_cell_backend("numba", self.params()) is NumpyCellStore
        degraded = run_known_d("numba")
        monkeypatch.undo()
        py = run_known_d("python")
        assert degraded.recovered == py.recovered
        assert transcript_fingerprint(degraded.transcript) == (
            transcript_fingerprint(py.transcript)
        )
