"""Field-kernel registry, selection, and cross-kernel exactness tests.

The contract under test: every registered :class:`~repro.field.kernels.
FieldKernel` computes *bit-identical* values for the batched primitives
(evaluation, products, division, elimination, system assembly), and
identical root sets for the factorisation entry point, no matter how
different the internal strategies are.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    AUTO_BACKEND,
    _resolve_field_kernel_cached,
    available_field_kernels,
    default_field_kernel,
    field_kernel_names,
    resolve_field_kernel,
    set_default_field_kernel,
)
from repro.errors import ParameterError
from repro.field import Polynomial, find_roots, prime_field
from repro.field.kernels import (
    _GCD_VECTOR_CUTOFF,
    NumpyFieldKernel,
    PythonFieldKernel,
    _poly_gcd_scalar,
    _poly_mul_scalar,
    kernel_for,
    use_kernel,
)
from repro.field.kernels_numba import NumbaFieldKernel
from repro.field.linalg import (
    gaussian_elimination,
    rational_interpolation_system,
    solve_linear_system,
)
from repro.field.roots import _find_roots_reference

needs_numpy = pytest.mark.skipif(
    not NumpyFieldKernel.available(), reason="NumPy not installed"
)

PRIMES = [3, 5, 17, 257, 65537, 1048583, (1 << 29) + 11]
BIG_PRIME = (1 << 61) - 1  # Mersenne prime above the NumPy kernel's range

python_kernel = PythonFieldKernel()


def both_kernels():
    kernels = [python_kernel]
    if NumpyFieldKernel.available():
        kernels.append(NumpyFieldKernel())
    return kernels


def vectorized_kernels():
    kernels = []
    if NumpyFieldKernel.available():
        kernels.append(NumpyFieldKernel())
    if NumbaFieldKernel.available():
        kernels.append(NumbaFieldKernel())
    return kernels


# ---------------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_python_kernel_always_registered_and_available(self):
        assert "python" in field_kernel_names()
        assert "python" in available_field_kernels()

    def test_numpy_kernel_registered(self):
        assert "numpy" in field_kernel_names()

    def test_unknown_name_raises(self):
        with pytest.raises(ParameterError):
            resolve_field_kernel("no-such-kernel", 17)

    def test_auto_prefers_vectorized_when_supported(self):
        cls = resolve_field_kernel(AUTO_BACKEND, 1048583)
        if NumbaFieldKernel.available():
            assert cls is NumbaFieldKernel
        elif NumpyFieldKernel.available():
            assert cls is NumpyFieldKernel
        else:
            assert cls is PythonFieldKernel

    def test_large_modulus_falls_back_to_reference(self):
        # 2**61 - 1 squared overflows int64, so only the reference kernel
        # qualifies -- even when numpy is requested explicitly.
        assert resolve_field_kernel(AUTO_BACKEND, BIG_PRIME) is PythonFieldKernel
        assert resolve_field_kernel("numpy", BIG_PRIME) is PythonFieldKernel

    def test_explicit_python_request_is_honoured(self):
        assert resolve_field_kernel("python", 1048583) is PythonFieldKernel

    def test_process_default_and_context_override(self):
        assert default_field_kernel() == AUTO_BACKEND
        try:
            set_default_field_kernel("python")
            assert kernel_for(1048583).name == "python"
            with use_kernel(AUTO_BACKEND):
                if NumbaFieldKernel.available():
                    expected = "numba"
                elif NumpyFieldKernel.available():
                    expected = "numpy"
                else:
                    expected = "python"
                assert kernel_for(1048583).name == expected
            assert kernel_for(1048583).name == "python"
        finally:
            set_default_field_kernel(None)

    def test_use_kernel_none_is_inherit(self):
        with use_kernel(None):
            assert kernel_for(BIG_PRIME).name == "python"

    def test_set_default_validates(self):
        with pytest.raises(ParameterError):
            set_default_field_kernel("bogus")


# ---------------------------------------------------------------------------
# Cross-kernel exactness (property tests against the scalar reference)
# ---------------------------------------------------------------------------


@st.composite
def prime_and_elements(draw, count):
    p = draw(st.sampled_from(PRIMES))
    values = draw(
        st.lists(st.integers(0, p - 1), min_size=count[0], max_size=count[1])
    )
    return p, values


class TestBatchedPrimitives:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_evaluate_from_roots_many_matches_scalar(self, data):
        p, roots = data.draw(prime_and_elements((0, 20)))
        points = data.draw(st.lists(st.integers(0, p - 1), max_size=8))
        field = prime_field(p)
        expected = [
            Polynomial.evaluate_from_roots(field, roots, z) for z in points
        ]
        for kernel in both_kernels():
            assert kernel.evaluate_from_roots_many(p, roots, points) == expected

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_poly_eval_many_matches_scalar(self, data):
        p, coeffs = data.draw(prime_and_elements((1, 12)))
        points = data.draw(st.lists(st.integers(0, p - 1), max_size=8))
        field = prime_field(p)
        poly = Polynomial.from_coefficients(field, coeffs)
        expected = [poly.evaluate(z) for z in points]
        for kernel in both_kernels():
            assert kernel.poly_eval_many(p, poly.coeffs, points) == expected

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_poly_mul_and_divmod_match_across_kernels(self, data):
        p, a = data.draw(prime_and_elements((1, 40)))
        b = data.draw(st.lists(st.integers(0, p - 1), min_size=1, max_size=40))
        while a and a[-1] == 0:
            a.pop()
        while b and b[-1] == 0:
            b.pop()
        if not a or not b:
            return
        reference_mul = python_kernel.poly_mul(p, a, b)
        reference_div = python_kernel.poly_divmod(p, a, b)
        for kernel in both_kernels():
            assert kernel.poly_mul(p, a, b) == reference_mul
            assert kernel.poly_divmod(p, a, b) == reference_div

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_gaussian_elimination_and_solve_match(self, data):
        p = data.draw(st.sampled_from(PRIMES))
        rows = data.draw(st.integers(1, 8))
        cols = data.draw(st.integers(1, 8))
        matrix = [
            [data.draw(st.integers(0, p - 1)) for _ in range(cols)]
            for _ in range(rows)
        ]
        rhs = [data.draw(st.integers(0, p - 1)) for _ in range(rows)]
        reference_ge = python_kernel.gaussian_elimination(p, matrix)
        reference_solve = python_kernel.solve_linear_system(p, matrix, rhs)
        for kernel in both_kernels():
            assert kernel.gaussian_elimination(p, matrix) == reference_ge
            assert kernel.solve_linear_system(p, matrix, rhs) == reference_solve
        if reference_solve is not None:
            for produced, expected in zip(
                (
                    sum(c * x for c, x in zip(row, reference_solve)) % p
                    for row in matrix
                ),
                rhs,
            ):
                assert produced == expected % p

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_find_roots_identical_root_sets(self, data):
        p = data.draw(st.sampled_from([5, 17, 257, 1048583, (1 << 29) + 11]))
        field = prime_field(p)
        roots = data.draw(
            st.lists(st.integers(0, p - 1), min_size=1, max_size=10)
        )
        poly = Polynomial.from_roots(field, roots)
        if data.draw(st.booleans()):
            # Mix in a (often irreducible) cofactor: the kernels must agree
            # on polynomials that are not pure products of distinct linears.
            extra = Polynomial.from_coefficients(
                field,
                [data.draw(st.integers(0, p - 1)) for _ in range(3)] + [1],
            )
            poly = poly * extra
        seed = data.draw(st.integers(0, 2**16))
        expected = _find_roots_reference(poly, random.Random(seed))
        assert set(roots) <= set(expected)
        for kernel in both_kernels():
            produced = kernel.find_distinct_roots(
                p, poly.coeffs, random.Random(seed + 1)
            )
            assert produced == expected

    def test_inv_many_matches_scalar_and_rejects_zero(self):
        p = 1048583
        field = prime_field(p)
        values = [random.Random(0).randrange(1, p) for _ in range(50)]
        for kernel in both_kernels():
            assert kernel.inv_many(p, values) == [field.inv(v) for v in values]
            with pytest.raises(ZeroDivisionError):
                kernel.inv_many(p, values + [0])

    def test_rational_system_identical_across_kernels(self):
        p = 1048583
        field = prime_field(p)
        rng = random.Random(42)
        points = [rng.randrange(p) for _ in range(10)]
        numer = [rng.randrange(p) for _ in range(10)]
        denom = [rng.randrange(1, p) for _ in range(10)]
        results = [
            rational_interpolation_system(
                field, points, numer, denom, 6, 4, kernel=kernel
            )
            for kernel in both_kernels()
        ]
        assert all(result == results[0] for result in results)


# ---------------------------------------------------------------------------
# Polynomial layer integration (ops route through the active kernel)
# ---------------------------------------------------------------------------


class TestPolynomialIntegration:
    @needs_numpy
    def test_polynomial_ops_identical_under_both_kernels(self):
        p = 1048583
        field = prime_field(p)
        rng = random.Random(7)
        a = Polynomial.from_coefficients(field, [rng.randrange(p) for _ in range(30)])
        b = Polynomial.from_coefficients(field, [rng.randrange(p) for _ in range(18)])
        results = []
        for name in ("python", "numpy"):
            with use_kernel(name):
                results.append(
                    (a * b, a.divmod(b), a.gcd(b), (a * b).divmod(a))
                )
        assert results[0] == results[1]

    def test_evaluate_from_roots_many_matches_points_loop(self):
        p = 65537
        field = prime_field(p)
        roots = {3, 7, 1000, 40000}
        points = [1, 2, 65535]
        batch = Polynomial.evaluate_from_roots_many(field, roots, points)
        assert batch == [
            Polynomial.evaluate_from_roots(field, roots, z) for z in points
        ]

    def test_linalg_wrappers_accept_kernel_argument(self):
        p = 257
        field = prime_field(p)
        matrix = [[1, 2], [3, 4]]
        for kernel in both_kernels():
            rref, pivots = gaussian_elimination(field, matrix, kernel=kernel)
            assert pivots == [0, 1]
            assert solve_linear_system(field, matrix, [5, 6], kernel=kernel) is not None

    def test_find_roots_kernel_argument(self):
        field = prime_field(1048583)
        poly = Polynomial.from_roots(field, [11, 22, 33, 44, 55])
        for kernel in both_kernels():
            assert find_roots(poly, kernel=kernel) == [11, 22, 33, 44, 55]


# ---------------------------------------------------------------------------
# Compiled tier: registry fallback chain (numba -> numpy -> python)
# ---------------------------------------------------------------------------


class TestCompiledTierChain:
    """``field_kernel="numba"`` requests degrade gracefully down the chain.

    The resolver is cached, so every availability monkeypatch must clear
    :func:`repro.config._resolve_field_kernel_cached` both after patching
    and after undoing the patch.
    """

    def test_numba_kernel_registered(self):
        assert "numba" in field_kernel_names()

    def test_numba_request_resolves_down_the_chain(self):
        resolved = resolve_field_kernel("numba", 1048583)
        if NumbaFieldKernel.available():
            assert resolved is NumbaFieldKernel
        elif NumpyFieldKernel.available():
            assert resolved is NumpyFieldKernel
        else:
            assert resolved is PythonFieldKernel

    def test_large_modulus_forces_reference(self):
        # 2**61 - 1 exceeds the exact int64 range of the whole vectorized
        # tier, so even an explicit "numba" request lands on the reference.
        assert resolve_field_kernel("numba", BIG_PRIME) is PythonFieldKernel

    @needs_numpy
    def test_numba_absent_resolves_to_numpy(self, monkeypatch):
        monkeypatch.setattr(
            NumbaFieldKernel, "available", classmethod(lambda cls: False)
        )
        _resolve_field_kernel_cached.cache_clear()
        try:
            assert resolve_field_kernel("numba", 1048583) is NumpyFieldKernel
        finally:
            monkeypatch.undo()
            _resolve_field_kernel_cached.cache_clear()

    def test_numba_and_numpy_absent_resolve_to_reference(self, monkeypatch):
        monkeypatch.setattr(
            NumbaFieldKernel, "available", classmethod(lambda cls: False)
        )
        monkeypatch.setattr(
            NumpyFieldKernel, "available", classmethod(lambda cls: False)
        )
        _resolve_field_kernel_cached.cache_clear()
        try:
            assert resolve_field_kernel("numba", 1048583) is PythonFieldKernel
            assert (
                resolve_field_kernel(AUTO_BACKEND, 1048583) is PythonFieldKernel
            )
        finally:
            monkeypatch.undo()
            _resolve_field_kernel_cached.cache_clear()


# ---------------------------------------------------------------------------
# Vectorized Euclid chain (large-degree gcds above _GCD_VECTOR_CUTOFF)
# ---------------------------------------------------------------------------


class TestLargeDegreeGcd:
    """The vectorized gcd chain is exact: bit-identical to the scalar
    reference on operands large enough to engage it."""

    @staticmethod
    def _operands(p, rng, common_degree=60, extra=35):
        common = [rng.randrange(p) for _ in range(common_degree)] + [1]
        left = _poly_mul_scalar(
            p, common, [rng.randrange(p) for _ in range(extra)] + [1]
        )
        right = _poly_mul_scalar(
            p, common, [rng.randrange(p) for _ in range(extra + 7)] + [1]
        )
        return left, right

    @pytest.mark.parametrize("p", [65537, 1048583, (1 << 29) + 11])
    def test_matches_scalar_reference(self, p):
        rng = random.Random(p)
        a, b = self._operands(p, rng)
        assert min(len(a), len(b)) > _GCD_VECTOR_CUTOFF
        expected = _poly_gcd_scalar(p, a, b)
        for kernel in vectorized_kernels():
            assert kernel.poly_gcd(p, a, b) == expected

    @needs_numpy
    def test_gcd_recovers_planted_common_factor(self):
        p = 1048583
        field = prime_field(p)
        a = Polynomial.from_roots(field, range(1, 120))
        b = Polynomial.from_roots(field, range(60, 200))
        expected = Polynomial.from_roots(field, range(60, 120))
        for kernel in vectorized_kernels():
            assert kernel.poly_gcd(p, a.coeffs, b.coeffs) == list(
                expected.coeffs
            )

    @needs_numpy
    def test_root_finding_at_degree_200_exercises_the_chain(self):
        # Degree 200 keeps every top-level gcd above the cutoff, so the
        # Cantor-Zassenhaus driver runs through the vectorized Euclid path.
        p = 1048583
        field = prime_field(p)
        rng = random.Random(11)
        roots = sorted(rng.sample(range(1, p), 200))
        poly = Polynomial.from_roots(field, roots)
        for kernel in vectorized_kernels():
            produced = kernel.find_distinct_roots(
                p, poly.coeffs, random.Random(5)
            )
            assert produced == roots
