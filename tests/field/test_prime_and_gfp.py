"""Tests for primality utilities and GF(p) arithmetic."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.field import PrimeField, is_probable_prime, next_prime
from repro.field.prime import prime_at_least


class TestPrimality:
    def test_small_primes(self):
        assert all(is_probable_prime(p) for p in (2, 3, 5, 7, 11, 13, 97, 101))

    def test_small_composites(self):
        assert not any(is_probable_prime(c) for c in (0, 1, 4, 6, 9, 15, 91, 100))

    def test_large_prime(self):
        assert is_probable_prime((1 << 61) - 1)  # Mersenne prime

    def test_large_composite(self):
        assert not is_probable_prime((1 << 61) - 3)

    def test_carmichael_number(self):
        assert not is_probable_prime(561)
        assert not is_probable_prime(41041)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    def test_prime_at_least(self):
        assert prime_at_least(13) == 13
        assert prime_at_least(14) == 17
        assert prime_at_least(1) == 2

    def test_prime_at_least_is_memoized(self):
        # The multiround inner loop hits the same arguments repeatedly; the
        # lru_cache must serve them without re-running Miller-Rabin.
        prime_at_least.cache_clear()
        assert prime_at_least(10**6) == prime_at_least(10**6)
        assert prime_at_least.cache_info().hits >= 1

    def test_prime_field_factory_is_memoized(self):
        from repro.field import prime_field

        assert prime_field(65537) is prime_field(65537)
        with pytest.raises(ParameterError):
            prime_field(65536)

    @given(st.integers(min_value=2, max_value=10**6))
    def test_next_prime_is_prime_and_greater(self, value):
        result = next_prime(value)
        assert result > value
        assert is_probable_prime(result)


class TestPrimeField:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ParameterError):
            PrimeField(10)

    def test_basic_arithmetic(self):
        field = PrimeField(97)
        assert field.add(90, 10) == 3
        assert field.sub(5, 10) == 92
        assert field.mul(12, 9) == 108 % 97
        assert field.neg(1) == 96

    def test_inverse(self):
        field = PrimeField(101)
        for value in range(1, 101):
            assert field.mul(value, field.inv(value)) == 1

    def test_inverse_of_zero_fails(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(7).inv(0)

    def test_division(self):
        field = PrimeField(13)
        assert field.mul(field.div(5, 3), 3) == 5

    def test_pow_negative_exponent(self):
        field = PrimeField(13)
        assert field.pow(3, -1) == field.inv(3)

    def test_contains(self):
        field = PrimeField(7)
        assert 0 in field and 6 in field and 7 not in field and -1 not in field

    def test_element_reduction(self):
        field = PrimeField(7)
        assert field.element(-1) == 6
        assert field.element(15) == 1

    def test_uniform_sampling(self):
        field = PrimeField(11)
        rng = random.Random(0)
        samples = {field.uniform_element(rng) for _ in range(300)}
        assert samples == set(range(11))
        nonzero = {field.uniform_nonzero(rng) for _ in range(300)}
        assert 0 not in nonzero

    @given(st.integers(), st.integers())
    def test_field_axioms_mod_large_prime(self, a, b):
        field = PrimeField((1 << 61) - 1)
        a, b = field.element(a), field.element(b)
        assert field.add(a, b) == field.add(b, a)
        assert field.mul(a, b) == field.mul(b, a)
        assert field.sub(field.add(a, b), b) == a
