"""Tests for polynomial arithmetic over GF(p)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.field import PrimeField, Polynomial

FIELD = PrimeField(10007)


def poly(*coeffs):
    return Polynomial.from_coefficients(FIELD, list(coeffs))


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert poly(1, 2, 0, 0).degree == 1

    def test_zero_polynomial(self):
        assert Polynomial.zero(FIELD).degree == -1
        assert Polynomial.zero(FIELD).is_zero()

    def test_one_and_x(self):
        assert Polynomial.one(FIELD).degree == 0
        assert Polynomial.x(FIELD).degree == 1

    def test_from_roots(self):
        p = Polynomial.from_roots(FIELD, [2, 3])
        assert p.evaluate(2) == 0 and p.evaluate(3) == 0 and p.evaluate(4) != 0
        assert p.is_monic()

    def test_evaluate_from_roots_matches(self):
        roots = [5, 17, 101, 999]
        p = Polynomial.from_roots(FIELD, roots)
        for point in (0, 1, 12, 9999):
            assert p.evaluate(point) == Polynomial.evaluate_from_roots(FIELD, roots, point)


class TestArithmetic:
    def test_addition_and_subtraction(self):
        a, b = poly(1, 2, 3), poly(4, 5)
        assert (a + b).coeffs == (5, 7, 3)
        assert (a - b).coeffs == (10004, 10004, 3)
        assert ((a + b) - b) == a

    def test_multiplication(self):
        assert (poly(1, 1) * poly(1, 1)).coeffs == (1, 2, 1)

    def test_multiplication_by_zero(self):
        assert (poly(1, 2) * Polynomial.zero(FIELD)).is_zero()

    def test_scale(self):
        assert poly(1, 2).scale(3).coeffs == (3, 6)

    def test_divmod_exact(self):
        a = poly(1, 1) * poly(2, 0, 1)
        quotient, remainder = a.divmod(poly(1, 1))
        assert remainder.is_zero()
        assert quotient == poly(2, 0, 1)

    def test_divmod_with_remainder(self):
        dividend, divisor = poly(1, 0, 0, 1), poly(1, 1)
        quotient, remainder = dividend.divmod(divisor)
        assert quotient * divisor + remainder == dividend
        assert remainder.degree < divisor.degree

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly(1, 2).divmod(Polynomial.zero(FIELD))

    def test_mod_and_floordiv_operators(self):
        dividend, divisor = poly(3, 2, 1), poly(1, 1)
        assert (dividend // divisor) * divisor + (dividend % divisor) == dividend

    def test_gcd(self):
        common = poly(1, 1)
        a = common * poly(2, 1)
        b = common * poly(3, 0, 1)
        assert a.gcd(b) == common.monic()

    def test_gcd_coprime(self):
        assert poly(1, 1).gcd(poly(2, 1)).degree == 0

    def test_monic(self):
        assert poly(2, 4).monic().coeffs[-1] == 1

    def test_pow_mod(self):
        modulus = poly(1, 0, 1)
        base = Polynomial.x(FIELD)
        assert base.pow_mod(2, modulus) == poly(10006)  # x^2 = -1 mod (x^2+1)

    def test_pow_mod_negative_exponent(self):
        with pytest.raises(ParameterError):
            poly(1, 1).pow_mod(-1, poly(1, 0, 1))

    def test_mismatched_fields(self):
        other = Polynomial.from_coefficients(PrimeField(7), [1])
        with pytest.raises(ParameterError):
            poly(1) + other


class TestEvaluationInterpolation:
    def test_horner_evaluation(self):
        p = poly(1, 2, 3)  # 1 + 2x + 3x^2
        assert p.evaluate(2) == (1 + 4 + 12) % 10007

    def test_derivative(self):
        assert poly(5, 3, 4).derivative().coeffs == (3, 8)
        assert poly(7).derivative().is_zero()

    def test_interpolation_recovers_polynomial(self):
        p = poly(3, 0, 5, 1)
        points = [(x, p.evaluate(x)) for x in range(5)]
        assert Polynomial.interpolate(FIELD, points) == p

    def test_interpolation_duplicate_x_rejected(self):
        with pytest.raises(ParameterError):
            Polynomial.interpolate(FIELD, [(1, 2), (1, 3)])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10006), min_size=1, max_size=6))
    def test_interpolation_round_trip(self, coeffs):
        p = Polynomial.from_coefficients(FIELD, coeffs)
        points = [(x, p.evaluate(x)) for x in range(len(coeffs) + 1)]
        assert Polynomial.interpolate(FIELD, points) == p

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10006), max_size=5),
        st.lists(st.integers(min_value=0, max_value=10006), max_size=5),
    )
    def test_evaluation_is_ring_homomorphism(self, coeffs_a, coeffs_b):
        a = Polynomial.from_coefficients(FIELD, coeffs_a)
        b = Polynomial.from_coefficients(FIELD, coeffs_b)
        point = 1234
        assert (a * b).evaluate(point) == FIELD.mul(a.evaluate(point), b.evaluate(point))
        assert (a + b).evaluate(point) == FIELD.add(a.evaluate(point), b.evaluate(point))
