"""Tests for Gaussian elimination, nullspaces and root finding over GF(p)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.field import PrimeField, Polynomial, find_roots
from repro.field.linalg import gaussian_elimination, solve_linear_system, solve_nullspace_vector
from repro.field.roots import _split_roots, roots_with_multiplicity

FIELD = PrimeField(10007)


class TestGaussianElimination:
    def test_identity_stays(self):
        rref, pivots = gaussian_elimination(FIELD, [[1, 0], [0, 1]])
        assert rref == [[1, 0], [0, 1]]
        assert pivots == [0, 1]

    def test_rank_deficient(self):
        rref, pivots = gaussian_elimination(FIELD, [[1, 2], [2, 4]])
        assert pivots == [0]
        assert rref[1] == [0, 0]

    def test_ragged_rows_rejected(self):
        with pytest.raises(ParameterError):
            gaussian_elimination(FIELD, [[1, 2], [1]])

    def test_empty_matrix(self):
        assert gaussian_elimination(FIELD, []) == ([], [])


class TestLinearSolve:
    def test_unique_solution(self):
        solution = solve_linear_system(FIELD, [[1, 1], [1, 10006]], [10, 4])
        assert solution is not None
        a, b = solution
        assert FIELD.add(a, b) == 10 and FIELD.sub(a, b) == 4

    def test_inconsistent_system(self):
        assert solve_linear_system(FIELD, [[1, 1], [1, 1]], [1, 2]) is None

    def test_underdetermined_system(self):
        solution = solve_linear_system(FIELD, [[1, 1, 0]], [5])
        assert solution is not None
        assert FIELD.add(solution[0], solution[1]) == 5

    def test_size_mismatch(self):
        with pytest.raises(ParameterError):
            solve_linear_system(FIELD, [[1, 2]], [1, 2])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10**6))
    def test_random_invertible_systems(self, size, seed):
        rng = random.Random(seed)
        matrix = [[rng.randrange(FIELD.modulus) for _ in range(size)] for _ in range(size)]
        target = [rng.randrange(FIELD.modulus) for _ in range(size)]
        solution = solve_linear_system(FIELD, matrix, target)
        if solution is None:
            return  # singular matrix: nothing to verify
        for row, value in zip(matrix, target):
            acc = 0
            for coeff, x in zip(row, solution):
                acc = FIELD.add(acc, FIELD.mul(coeff, x))
            assert acc == value


class TestNullspace:
    def test_full_rank_has_no_nullspace(self):
        assert solve_nullspace_vector(FIELD, [[1, 0], [0, 1]]) is None

    def test_nullspace_vector_is_in_kernel(self):
        matrix = [[1, 2, 3], [2, 4, 6]]
        vector = solve_nullspace_vector(FIELD, matrix)
        assert vector is not None and any(vector)
        for row in matrix:
            acc = 0
            for coeff, x in zip(row, vector):
                acc = FIELD.add(acc, FIELD.mul(coeff, x))
            assert acc == 0


class TestRootFinding:
    def test_roots_of_product_of_linears(self):
        roots = [3, 77, 1024, 9999]
        p = Polynomial.from_roots(FIELD, roots)
        assert find_roots(p, random.Random(1)) == sorted(roots)

    def test_constant_polynomial_has_no_roots(self):
        assert find_roots(Polynomial.from_coefficients(FIELD, [5])) == []

    def test_zero_polynomial_rejected(self):
        with pytest.raises(ParameterError):
            find_roots(Polynomial.zero(FIELD))

    def test_irreducible_quadratic(self):
        # x^2 + 1 has no roots mod p when p = 3 (mod 4); 10007 % 4 == 3.
        p = Polynomial.from_coefficients(FIELD, [1, 0, 1])
        assert find_roots(p, random.Random(3)) == []

    def test_mixed_factors(self):
        p = Polynomial.from_roots(FIELD, [11, 22]) * Polynomial.from_coefficients(
            FIELD, [1, 0, 1]
        )
        assert find_roots(p, random.Random(5)) == [11, 22]

    def test_repeated_roots_reported_once(self):
        p = Polynomial.from_roots(FIELD, [9, 9, 42])
        assert find_roots(p, random.Random(7)) == [9, 42]

    def test_roots_with_multiplicity(self):
        p = Polynomial.from_roots(FIELD, [9, 9, 42])
        assert roots_with_multiplicity(p, random.Random(9)) == {9: 2, 42: 1}

    @settings(max_examples=15, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=10006), min_size=1, max_size=8))
    def test_random_root_sets_recovered(self, roots):
        p = Polynomial.from_roots(FIELD, roots)
        assert find_roots(p, random.Random(11)) == sorted(roots)


class TestSplitRootsWorkStack:
    """Regression: maximally unbalanced Cantor-Zassenhaus splits at d=5000.

    A probe that peels exactly one linear factor per split used to drive the
    recursive ``_split_roots`` to call depth ``d`` -- a ``RecursionError``
    well below d=5000 under CPython's default limit.  The explicit work-stack
    must recover every root.  The probe is forced via ``pow_mod`` so the
    worst case is deterministic rather than a (vanishingly unlikely) run of
    unlucky random shifts.
    """

    def test_deeply_unbalanced_split_peels_all_roots(self, monkeypatch):
        degree = 5000
        assert FIELD.modulus > degree  # all roots distinct mod p
        poly = Polynomial.from_roots(FIELD, range(1, degree + 1))
        peeled = iter(range(1, degree + 1))

        def one_linear_factor(self, exponent, modulus):
            # probe = pow_mod(...) - 1 must equal (x - r): return (x - r) + 1.
            r = next(peeled)
            return Polynomial.from_coefficients(
                FIELD, [(1 - r) % FIELD.modulus, 1]
            )

        monkeypatch.setattr(Polynomial, "pow_mod", one_linear_factor)
        roots: list[int] = []
        _split_roots(poly, random.Random(0), roots)
        assert sorted(roots) == list(range(1, degree + 1))
