"""Tests for shingling and document-collection reconciliation."""

import pytest

from repro.documents import (
    DocumentCollection,
    classify_documents,
    document_signature,
    reconcile_collections,
    shingle_hashes,
)
from repro.documents.shingle import tokenize
from repro.errors import ParameterError
from repro.workloads import edited_corpus_pair, synthetic_corpus


class TestShingling:
    def test_tokenize(self):
        assert tokenize("Hello, World! it's me") == ["hello", "world", "it's", "me"]

    def test_shingle_count(self):
        hashes = shingle_hashes("a b c d e", 3, seed=1)
        assert len(hashes) == 3

    def test_short_document(self):
        assert len(shingle_hashes("one two", 5, seed=1)) == 1
        assert shingle_hashes("", 3, seed=1) == set()

    def test_deterministic_and_seeded(self):
        text = "the quick brown fox jumps"
        assert shingle_hashes(text, 3, seed=1) == shingle_hashes(text, 3, seed=1)
        assert shingle_hashes(text, 3, seed=1) != shingle_hashes(text, 3, seed=2)

    def test_invalid_shingle_size(self):
        with pytest.raises(ParameterError):
            shingle_hashes("a b c", 0, seed=1)

    def test_small_edit_changes_few_shingles(self):
        original = "w0 w1 w2 w3 w4 w5 w6 w7 w8 w9"
        edited = "w0 w1 w2 w3 xx w5 w6 w7 w8 w9"
        a = shingle_hashes(original, 3, seed=3)
        b = shingle_hashes(edited, 3, seed=3)
        assert 0 < len(a ^ b) <= 2 * 3

    def test_signature_subsampling(self):
        text = " ".join(f"w{i}" for i in range(100))
        full = document_signature(text, 3, seed=1)
        small = document_signature(text, 3, seed=1, signature_size=10)
        assert len(small) == 10
        assert small <= full

    def test_signature_invalid_size(self):
        with pytest.raises(ParameterError):
            document_signature("a b c d", 2, seed=1, signature_size=0)


class TestDocumentCollection:
    def test_signatures_parallel_to_documents(self):
        collection = DocumentCollection(["a b c d", "e f g h"], shingle_size=2, seed=1)
        assert len(collection) == 2
        assert len(collection.signatures) == 2

    def test_to_sets_of_sets(self):
        collection = DocumentCollection(["a b c d", "e f g h"], shingle_size=2, seed=1)
        assert collection.to_sets_of_sets().num_children == 2

    def test_universe_and_max_signature(self):
        collection = DocumentCollection(["a b c d e f"], shingle_size=2, seed=1, hash_bits=20)
        assert collection.universe_size == 1 << 20
        assert collection.max_signature_size == 5


class TestClassification:
    def test_expected_categories(self):
        alice_texts, bob_texts = edited_corpus_pair(20, 60, 2, 2, 2, seed=1)
        alice = DocumentCollection(alice_texts, 3, seed=1)
        bob = DocumentCollection(bob_texts, 3, seed=1)
        classification = classify_documents(alice, bob)
        assert len(classification.exact_duplicates) == 16
        assert len(classification.near_duplicates) == 2
        assert len(classification.fresh) == 2

    def test_threshold_validation(self):
        collection = DocumentCollection(["a b c"], 2, seed=1)
        with pytest.raises(ParameterError):
            classify_documents(collection, collection, near_duplicate_threshold=0.0)


class TestReconciliation:
    def test_end_to_end(self):
        alice_texts, bob_texts = edited_corpus_pair(25, 50, 2, 2, 1, seed=2)
        alice = DocumentCollection(alice_texts, 3, seed=2, signature_size=24)
        bob = DocumentCollection(bob_texts, 3, seed=2, signature_size=24)
        result = reconcile_collections(
            alice, bob, 2 * 24, seed=3, differing_children_bound=8
        )
        assert result.success
        assert result.recovered == alice.to_sets_of_sets()

    def test_parameter_mismatch_rejected(self):
        alice = DocumentCollection(["a b c"], 2, seed=1)
        bob = DocumentCollection(["a b c"], 3, seed=1)
        with pytest.raises(ParameterError):
            reconcile_collections(alice, bob, 4, seed=1)

    def test_identical_collections(self):
        texts = synthetic_corpus(15, 40, seed=4)
        alice = DocumentCollection(texts, 3, seed=4, signature_size=16)
        bob = DocumentCollection(list(texts), 3, seed=4, signature_size=16)
        result = reconcile_collections(alice, bob, 8, seed=5)
        assert result.success and result.recovered == alice.to_sets_of_sets()


class TestCorpusWorkload:
    def test_corpus_shapes(self):
        corpus = synthetic_corpus(10, 30, seed=6)
        assert len(corpus) == 10
        assert all(len(doc.split()) == 30 for doc in corpus)

    def test_edited_pair_counts(self):
        alice, bob = edited_corpus_pair(20, 30, 3, 2, 4, seed=7)
        assert len(alice) == 20
        assert len(bob) == 16

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            synthetic_corpus(0, 10, seed=1)
        with pytest.raises(ParameterError):
            edited_corpus_pair(5, 10, 4, 1, 3, seed=1)
