"""Session-loop mechanics: scheduling, END delivery, errors, accounting."""

import pytest

from repro.comm import Transcript
from repro.errors import ParameterError, ReconciliationError
from repro.protocols import (
    END_OF_SESSION,
    NULL_CODEC,
    PartyOutcome,
    Receive,
    ReconcileOptions,
    Send,
    SerializingTransport,
    Session,
    WireAccountingError,
    WireError,
)
from repro.protocols.party import aborted_outcome
from repro.protocols.session import run_session
from repro.protocols.wire import PayloadCodec


class _FatCodec(PayloadCodec):
    """Deliberately encodes more bytes than the charged size allows."""

    def write(self, writer, payload):
        writer.write(0, 256)

    def read(self, reader):
        return None


def _sender(label="ping", size_bits=64, codec=NULL_CODEC, payload=None):
    yield Send(label, size_bits, payload=payload, codec=codec)
    return PartyOutcome(True)


def _receiver():
    payload = yield Receive(NULL_CODEC)
    return PartyOutcome(True, recovered=payload)


class TestSessionLoop:
    def test_basic_exchange_and_outcome_merge(self):
        result = run_session(_sender(), _receiver())
        assert result.success
        assert result.transcript.num_rounds == 1
        assert result.transcript.messages[0].label == "ping"

    def test_end_of_session_delivered_to_waiting_party(self):
        def waiting_bob():
            first = yield Receive(NULL_CODEC)
            second = yield Receive(NULL_CODEC)
            assert second is END_OF_SESSION
            return PartyOutcome(True, recovered=first)

        result = run_session(_sender(payload=None), waiting_bob())
        assert result.success

    def test_deadlock_detected(self):
        def stuck():
            yield Receive(NULL_CODEC)
            return PartyOutcome(True)

        with pytest.raises(ReconciliationError, match="deadlock"):
            run_session(stuck(), stuck())

    def test_invalid_yield_rejected(self):
        def bad():
            yield "not a command"
            return PartyOutcome(True)

        with pytest.raises(ReconciliationError, match="Send or Receive"):
            run_session(bad(), _receiver())

    def test_party_details_merge_with_bob_winning(self):
        def alice():
            yield Send("m", 8, codec=NULL_CODEC)
            return PartyOutcome(True, details={"shared": "alice", "alice_only": 1})

        def bob():
            yield Receive(NULL_CODEC)
            return PartyOutcome(True, details={"shared": "bob", "bob_only": 2})

        result = run_session(alice(), bob())
        assert result.details == {"shared": "bob", "alice_only": 1, "bob_only": 2}

    def test_failure_on_either_side_fails_the_result(self):
        def failing_alice():
            yield Send("m", 8, codec=NULL_CODEC)
            return PartyOutcome(False, details={"failure": "alice-side"})

        result = run_session(failing_alice(), _receiver())
        assert not result.success
        assert result.recovered is None
        assert result.details["failure"] == "alice-side"

    def test_aborted_outcome_flag(self):
        outcome = aborted_outcome()
        assert outcome.aborted and not outcome.success and outcome.details == {}

    def test_appends_to_existing_transcript(self):
        transcript = Transcript()
        transcript.send("bob", "earlier", 8)
        result = run_session(_sender(), _receiver(), transcript=transcript)
        assert len(result.transcript) == 2
        assert result.transcript.num_rounds == 2  # direction flipped


class TestSerializingTransportChecks:
    def test_missing_codec_rejected(self):
        with pytest.raises(WireError, match="no wire codec"):
            run_session(
                _sender(codec=None), _receiver(), transport=SerializingTransport()
            )

    def test_over_budget_message_rejected_when_strict(self):
        with pytest.raises(WireAccountingError, match="charged"):
            run_session(
                _sender(size_bits=8, codec=_FatCodec()),
                _receiver(),
                transport=SerializingTransport(),
            )

    def test_over_budget_message_recorded_when_lenient(self):
        transport = SerializingTransport(strict=False)
        result = run_session(
            _sender(size_bits=8, codec=_FatCodec()), _receiver(), transport=transport
        )
        assert result.success
        assert len(transport.measurements) == 1
        assert not transport.measurements[0].within_budget


class TestReconcileOptions:
    def test_merged_rejects_unknown(self):
        with pytest.raises(ParameterError, match="unknown reconcile option"):
            ReconcileOptions().merged(nope=1)

    def test_merged_returns_new_frozen_copy(self):
        base = ReconcileOptions(seed=1)
        merged = base.merged(seed=2, universe_size=10)
        assert base.seed == 1 and merged.seed == 2
        assert merged.universe_size == 10

    def test_require(self):
        with pytest.raises(ParameterError, match="universe_size"):
            ReconcileOptions().require("universe_size")
        ReconcileOptions(universe_size=4).require("universe_size")


class TestTranscriptHelpers:
    def test_empty_label_rejected(self):
        with pytest.raises(ParameterError, match="label"):
            Transcript().send("alice", "", 8)

    def test_by_sender_and_rounds(self):
        transcript = Transcript()
        transcript.send("alice", "a1", 10)
        transcript.send("alice", "a2", 5)
        transcript.send("bob", "b1", 7)
        grouped = transcript.by_sender()
        assert [m.label for m in grouped["alice"]] == ["a1", "a2"]
        assert [m.label for m in grouped["bob"]] == ["b1"]
        assert transcript.bits_by_round() == {1: 15, 2: 7}
        summary = transcript.round_summary()
        assert summary == [
            {"round": 1, "sender": "alice", "bits": 15, "messages": 2},
            {"round": 2, "sender": "bob", "bits": 7, "messages": 1},
        ]
