"""Cross-transport determinism and accounting verification.

For every registered protocol: the in-memory and serializing transports must
produce identical results and transcripts, every serialized message must fit
the bits its transcript entry charged (plus the codec's documented framing),
and the socket transport (two endpoints over a real byte stream) must agree
with both.
"""

import socket
import threading

import pytest

import repro
from repro.protocols import (
    InMemoryTransport,
    SerializingTransport,
    SocketTransport,
    run_party,
)
from repro.protocols.parties.setsofsets import context_for, multiround_parties
from repro.protocols.registry import get, names

from protocol_fixtures import protocol_instances

_INSTANCES = protocol_instances()


def transcript_meta(transcript):
    return [
        (m.sender, m.round_index, m.label, m.size_bits) for m in transcript.messages
    ]


def test_every_registered_protocol_has_an_instance():
    # A protocol registered without cross-transport coverage must fail here.
    assert set(_INSTANCES) == set(names())


@pytest.mark.parametrize("protocol", sorted(_INSTANCES))
class TestCrossTransport:
    def run_both(self, protocol):
        alice, bob, kwargs = _INSTANCES[protocol]
        memory = repro.reconcile(
            alice, bob, protocol=protocol, seed=99,
            transport=InMemoryTransport(), **kwargs,
        )
        transport = SerializingTransport()
        serialized = repro.reconcile(
            alice, bob, protocol=protocol, seed=99, transport=transport, **kwargs
        )
        return memory, serialized, transport

    def test_identical_results_and_transcripts(self, protocol):
        memory, serialized, _ = self.run_both(protocol)
        assert memory.success and serialized.success, (
            memory.details, serialized.details,
        )
        assert memory.recovered == serialized.recovered
        assert memory.attempts == serialized.attempts
        assert transcript_meta(memory.transcript) == transcript_meta(
            serialized.transcript
        )

    def test_measured_bytes_within_charged_bits(self, protocol):
        _, _, transport = self.run_both(protocol)
        assert transport.measurements, "serializing transport saw no messages"
        for measurement in transport.measurements:
            assert measurement.within_budget, (
                measurement.label,
                measurement.measured_bytes,
                measurement.budget_bytes,
            )

    def test_framing_slack_is_small(self, protocol):
        # Documented framing must stay a rounding error next to the charged
        # bits: per message, at most 32 header bits plus 57 bits for each
        # 121-bit-minimum multiround child entry -- bounded here by half the
        # charged size plus one word.
        _, _, transport = self.run_both(protocol)
        for measurement in transport.measurements:
            assert measurement.framing_bits <= measurement.charged_bits // 2 + 64, (
                measurement.label,
                measurement.framing_bits,
                measurement.charged_bits,
            )


@pytest.mark.parametrize("protocol", sorted(_INSTANCES))
def test_unknown_d_variants_cross_transport(protocol):
    spec = get(protocol)
    if not spec.supports_unknown_d:
        pytest.skip("known-d only")
    alice, bob, kwargs = _INSTANCES[protocol]
    kwargs = dict(kwargs, difference_bound=None)
    memory = repro.reconcile(
        alice, bob, protocol=protocol, seed=99, transport=InMemoryTransport(), **kwargs
    )
    transport = SerializingTransport()
    serialized = repro.reconcile(
        alice, bob, protocol=protocol, seed=99, transport=transport, **kwargs
    )
    assert memory.success == serialized.success
    assert memory.recovered == serialized.recovered
    assert transcript_meta(memory.transcript) == transcript_meta(serialized.transcript)
    for measurement in transport.measurements:
        assert measurement.within_budget, measurement


def test_failure_paths_cross_transport():
    # An undersized bound makes the multiround hash IBLT fail to peel; both
    # transports must report the identical truncated transcript and details.
    inst_alice, inst_bob, kwargs = _INSTANCES["multiround"]
    ctx = context_for(inst_alice, inst_bob, kwargs["universe_size"], 3,
                      max_child_size=16, differing_children_bound=1)
    from repro.protocols.session import run_session

    memory = run_session(
        *multiround_parties(inst_alice, inst_bob, 1, ctx),
        transport=InMemoryTransport(),
    )
    serialized = run_session(
        *multiround_parties(inst_alice, inst_bob, 1, ctx),
        transport=SerializingTransport(),
    )
    assert memory.success == serialized.success
    assert memory.details == serialized.details
    assert transcript_meta(memory.transcript) == transcript_meta(serialized.transcript)


class TestSocketTransport:
    def run_over_socketpair(self, protocol):
        alice, bob, kwargs = _INSTANCES[protocol]
        spec = get(protocol)
        from repro.protocols.options import ReconcileOptions

        options = ReconcileOptions(seed=99).merged(**kwargs)
        results = {}

        def drive(role):
            alice_party, bob_party = spec.build(alice, bob, options)
            party = alice_party if role == "alice" else bob_party
            transport = SocketTransport(socks[role], role)
            results[role] = run_party(party, transport)

        left, right = socket.socketpair()
        socks = {"alice": left, "bob": right}
        threads = [
            threading.Thread(target=drive, args=(role,)) for role in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        left.close()
        right.close()
        return results

    @pytest.mark.parametrize("protocol", ["ibf", "multiround", "iblt_of_iblts"])
    def test_two_endpoint_session_matches_in_memory(self, protocol):
        alice, bob, kwargs = _INSTANCES[protocol]
        reference = repro.reconcile(alice, bob, protocol=protocol, seed=99, **kwargs)
        results = self.run_over_socketpair(protocol)
        alice_outcome, alice_transcript = results["alice"]
        bob_outcome, bob_transcript = results["bob"]
        assert bob_outcome.success and reference.success
        assert bob_outcome.recovered == reference.recovered
        # Both endpoints observe the same transcript, equal to the in-memory one.
        assert transcript_meta(alice_transcript) == transcript_meta(bob_transcript)
        assert transcript_meta(bob_transcript) == transcript_meta(reference.transcript)
