"""Back-compat: the legacy free functions keep their signatures and results.

The ``reconcile_*`` functions are now thin wrappers over protocol sessions;
these tests pin (a) their exact signatures and (b) their results on fixed
inputs against values recorded from the pre-session implementation, so the
refactor is observationally invisible.
"""

import inspect

import repro
from repro.workloads import sets_of_sets_instance

#: (success, total_bits, num_rounds, attempts) recorded from the
#: pre-session implementation (commit ea3d034) on the fixed inputs below.
PINNED = {
    "known_d": (True, 2710, 1, 1),
    "unknown_d": (True, 12002, 2, 1),
    "cpi": (True, 142, 1, 1),
    "naive": (True, 3364, 1, 1),
    "naive_unknown": (True, 17496, 2, 1),
    "iblt_of_iblts": (True, 35392, 1, 1),
    "iblt_of_iblts_unknown": (True, 8128, 1, 1),
    "cascading": (True, 73408, 1, 1),
    "cascading_unknown": (True, 8128, 1, 1),
    "multiround": (True, 9192, 3, 1),
    "multiround_unknown": (True, 19870, 4, 1),
}

SIGNATURES = {
    repro.reconcile_known_d: (
        "alice", "bob", "difference_bound", "universe_size", "seed",
        "num_hashes", "backend", "transcript",
    ),
    repro.reconcile_unknown_d: (
        "alice", "bob", "universe_size", "seed",
        "estimator_factory", "safety_factor", "num_hashes", "backend",
    ),
    repro.reconcile_cpi: (
        "alice", "bob", "difference_bound", "universe_size", "seed",
        "field_kernel", "transcript",
    ),
    repro.reconcile_naive: (
        "alice", "bob", "differing_children_bound", "universe_size",
        "max_child_size", "seed", "num_hashes", "backend", "transcript",
    ),
    repro.reconcile_naive_unknown: (
        "alice", "bob", "universe_size", "max_child_size", "seed",
        "estimator_factory", "safety_factor", "num_hashes", "backend",
    ),
    repro.reconcile_iblt_of_iblts: (
        "alice", "bob", "difference_bound", "universe_size", "seed",
        "differing_children_bound", "child_hash_bits", "num_hashes",
        "backend", "fallback_to_all_children", "transcript",
    ),
    repro.reconcile_iblt_of_iblts_unknown: (
        "alice", "bob", "universe_size", "seed",
        "initial_bound", "max_bound", "child_hash_bits", "num_hashes", "backend",
    ),
    repro.reconcile_cascading: (
        "alice", "bob", "difference_bound", "universe_size", "max_child_size",
        "seed", "differing_children_bound", "child_hash_bits", "num_hashes",
        "backend", "field_kernel", "level_slack", "transcript",
    ),
    repro.reconcile_cascading_unknown: (
        "alice", "bob", "universe_size", "max_child_size", "seed",
        "initial_bound", "max_bound", "child_hash_bits", "num_hashes",
        "backend", "field_kernel", "level_slack",
    ),
    repro.reconcile_multiround: (
        "alice", "bob", "difference_bound", "universe_size", "max_child_size",
        "seed", "differing_children_bound", "child_hash_bits", "num_hashes",
        "backend", "field_kernel", "estimator_factory", "estimate_safety",
        "transcript",
    ),
    repro.reconcile_multiround_unknown: (
        "alice", "bob", "universe_size", "max_child_size", "seed",
        "child_hash_bits", "num_hashes", "backend", "field_kernel",
        "estimator_factory", "estimate_safety", "hash_estimator_factory",
    ),
}


def test_signatures_unchanged():
    for function, expected in SIGNATURES.items():
        parameters = tuple(inspect.signature(function).parameters)
        assert parameters == expected, function.__qualname__


def _fixture_results():
    a = set(range(60))
    b = set(range(8, 68))
    inst = sets_of_sets_instance(20, 12, 256, 6, 31, max_children_touched=3)
    sos = (inst.alice, inst.bob)
    return {
        "known_d": repro.reconcile_known_d(a, b, 20, 128, 41),
        "unknown_d": repro.reconcile_unknown_d(a, b, 128, 41),
        "cpi": repro.reconcile_cpi(a, b, 16, 128, 41),
        "naive": repro.reconcile_naive(
            *sos, inst.differing_children, 256, inst.max_child_size, 31
        ),
        "naive_unknown": repro.reconcile_naive_unknown(
            *sos, 256, inst.max_child_size, 31
        ),
        "iblt_of_iblts": repro.reconcile_iblt_of_iblts(
            *sos, inst.planted_difference, 256, 31
        ),
        "iblt_of_iblts_unknown": repro.reconcile_iblt_of_iblts_unknown(*sos, 256, 31),
        "cascading": repro.reconcile_cascading(
            *sos, inst.planted_difference, 256, inst.max_child_size, 31
        ),
        "cascading_unknown": repro.reconcile_cascading_unknown(
            *sos, 256, inst.max_child_size, 31
        ),
        "multiround": repro.reconcile_multiround(
            *sos, inst.planted_difference, 256, inst.max_child_size, 31
        ),
        "multiround_unknown": repro.reconcile_multiround_unknown(
            *sos, 256, inst.max_child_size, 31
        ),
    }


def test_results_match_pinned_fixtures():
    results = _fixture_results()
    assert set(results) == set(PINNED)
    for name, result in results.items():
        observed = (
            result.success, result.total_bits, result.num_rounds, result.attempts
        )
        assert observed == PINNED[name], name


def test_recovered_objects_are_correct():
    results = _fixture_results()
    a = set(range(60))
    inst = sets_of_sets_instance(20, 12, 256, 6, 31, max_children_touched=3)
    assert results["known_d"].recovered == a
    assert results["cpi"].recovered == a
    for name in ("naive", "iblt_of_iblts", "cascading", "multiround"):
        assert results[name].recovered == inst.alice, name
