"""Session-layer failure paths on the socket transport.

The satellite hardening contract: a peer disconnect, a truncated or garbage
frame, a party raising mid-protocol, or a codec over-running its charged
``size_bits`` must every one surface as a clean library error
(:class:`ReconciliationError` / :class:`WireAccountingError`) on a finite
timeline -- never a hang, never a leaked ``struct.error`` or
``UnicodeDecodeError``.
"""

import socket
import struct
import threading

import pytest

from repro.errors import ReconciliationError, ReproError
from repro.protocols import (
    END_OF_SESSION,
    NULL_CODEC,
    PartyOutcome,
    Receive,
    Send,
    SocketTransport,
    WireAccountingError,
    run_party,
)
from repro.protocols.transports import FRAME_HEADER, FRAME_MESSAGE
from repro.protocols.wire import PayloadCodec


def socket_pair():
    left, right = socket.socketpair()
    left.settimeout(10)
    right.settimeout(10)
    return left, right


def receiving_party():
    payload = yield Receive(NULL_CODEC)
    return PartyOutcome(payload is not END_OF_SESSION)


class WordCodec(PayloadCodec):
    """Codec for a single 64-bit word payload."""

    def write(self, writer, payload):
        writer.write(payload, 64)

    def read(self, reader):
        return reader.read(64)


class OverrunCodec(WordCodec):
    """Writes ten words no matter what the message charged."""

    def write(self, writer, payload):
        for _ in range(10):
            writer.write(payload, 64)


@pytest.mark.timeout(30)
def test_peer_close_before_any_frame_raises_cleanly():
    left, right = socket_pair()
    left.close()
    with pytest.raises(ReconciliationError, match="closed the connection"):
        run_party(receiving_party(), SocketTransport(right, "bob"))
    right.close()


@pytest.mark.timeout(30)
def test_truncated_header_raises_reconciliation_error():
    left, right = socket_pair()
    left.sendall(b"\x00\x05")  # two bytes of a header, then gone
    left.close()
    with pytest.raises(ReconciliationError, match="closed the connection"):
        run_party(receiving_party(), SocketTransport(right, "bob"))
    right.close()


@pytest.mark.timeout(30)
def test_truncated_payload_raises_reconciliation_error():
    left, right = socket_pair()
    # A valid header promising 100 payload bytes, of which 3 arrive.
    left.sendall(
        FRAME_HEADER.pack(FRAME_MESSAGE, 5, 1, 800, 100) + b"alicex" + b"yyy"
    )
    left.close()
    with pytest.raises(ReconciliationError, match="closed the connection"):
        run_party(receiving_party(), SocketTransport(right, "bob"))
    right.close()


@pytest.mark.timeout(30)
def test_oversized_frame_claim_is_refused():
    left, right = socket_pair()
    left.sendall(FRAME_HEADER.pack(FRAME_MESSAGE, 0, 0, 0, 1 << 31))
    with pytest.raises(ReconciliationError, match="refusing"):
        run_party(receiving_party(), SocketTransport(right, "bob"))
    left.close()
    right.close()


@pytest.mark.timeout(30)
def test_undecodable_sender_bytes_raise_reconciliation_error():
    left, right = socket_pair()
    left.sendall(FRAME_HEADER.pack(FRAME_MESSAGE, 2, 0, 0, 0) + b"\xff\xfe")
    with pytest.raises(ReconciliationError, match="undecodable"):
        run_party(receiving_party(), SocketTransport(right, "bob"))
    left.close()
    right.close()


@pytest.mark.timeout(30)
def test_send_after_peer_close_raises_reconciliation_error():
    left, right = socket_pair()
    left.close()

    def sender():
        yield Send("word", 64, payload=7, codec=WordCodec())
        yield Send("word", 64, payload=8, codec=WordCodec())
        return PartyOutcome(True)

    transport = SocketTransport(right, "alice")
    with pytest.raises(ReconciliationError, match="send failed"):
        # The first frames land in the socket buffer; repeating the send
        # eventually hits the closed peer and must raise cleanly.
        for _ in range(10_000):
            transport.send_message(
                Send("word", 64, payload=7, codec=WordCodec())
            )
    right.close()


@pytest.mark.timeout(30)
def test_party_raising_mid_protocol_unblocks_the_peer():
    """A crash on one side FINs the stream; the peer aborts, neither hangs."""
    left, right = socket_pair()

    def crashing_party():
        yield Send("word", 64, payload=1, codec=WordCodec())
        raise ReproError("deliberate mid-protocol crash")

    def patient_party():
        first = yield Receive(WordCodec())
        second = yield Receive(WordCodec())  # never sent: peer crashed
        return PartyOutcome(
            first == 1 and second is not END_OF_SESSION, details={"second": second}
        )

    results = {}

    def run_peer():
        results["peer"] = run_party(patient_party(), SocketTransport(right, "bob"))

    thread = threading.Thread(target=run_peer)
    thread.start()
    with pytest.raises(ReproError, match="deliberate"):
        run_party(crashing_party(), SocketTransport(left, "alice"))
    thread.join(timeout=10)
    assert not thread.is_alive(), "peer hung after the crash"
    outcome, transcript = results["peer"]
    assert not outcome.success
    assert transcript.total_bits == 64  # the one message that did arrive
    left.close()
    right.close()


@pytest.mark.timeout(30)
def test_codec_overrun_raises_wire_accounting_error_and_unblocks_peer():
    """Charging 64 bits but serializing 640 must fail at send time."""
    left, right = socket_pair()
    results = {}

    def run_peer():
        results["peer"] = run_party(receiving_party(), SocketTransport(right, "bob"))

    thread = threading.Thread(target=run_peer)
    thread.start()

    def overcharging_party():
        yield Send("word", 64, payload=7, codec=OverrunCodec())
        return PartyOutcome(True)

    with pytest.raises(WireAccountingError, match="charged 64 bits"):
        run_party(overcharging_party(), SocketTransport(left, "alice"))
    thread.join(timeout=10)
    assert not thread.is_alive(), "peer hung after the accounting failure"
    outcome, _ = results["peer"]
    assert not outcome.success  # peer saw END_OF_SESSION, nothing delivered
    left.close()
    right.close()


@pytest.mark.timeout(30)
def test_tcp_sockets_get_nodelay():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client = socket.create_connection(listener.getsockname())
    server, _ = listener.accept()
    listener.close()
    SocketTransport(client, "alice")
    SocketTransport(server, "bob")
    assert client.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
    assert server.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
    client.close()
    server.close()


@pytest.mark.timeout(30)
def test_socketpair_without_tcp_is_tolerated():
    left, right = socket_pair()  # AF_UNIX: setsockopt(TCP_NODELAY) must not raise
    SocketTransport(left, "alice")
    SocketTransport(right, "bob")
    left.close()
    right.close()


def test_malformed_header_struct_error_is_wrapped():
    from repro.protocols.transports import parse_frame_header

    with pytest.raises(ReconciliationError, match="malformed frame header"):
        parse_frame_header(b"\x00\x01")
    assert not isinstance(
        pytest.raises(ReconciliationError, parse_frame_header, b"xx").value,
        struct.error,
    )
