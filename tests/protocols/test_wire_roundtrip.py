"""Round-trip property tests for the wire layer.

Every codec must satisfy ``decode(encode(m)) == m``, and every encoding must
fit the byte budget its transcript charge implies:
``len(encode(m)) <= ceil((size_bits + framing_bits(m)) / 8)``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bits import BitReader, BitWriter
from repro.comm.sizing import bits_for_value
from repro.core.setrecon.cpi import cpi_encode
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.estimator import L0Estimator, MedianEstimator, StrataEstimator
from repro.iblt import IBLT, IBLTParameters
from repro.protocols.parties.setrecon import (
    CPIMessageCodec,
    IBFMessageCodec,
    SetReconContext,
    set_verification_hash,
)
from repro.protocols.parties.setsofsets import (
    CascadingMessageCodec,
    ChildPayload,
    MultiroundPayloadsCodec,
    MultiroundRound2Codec,
    SetsOfSetsContext,
    _cascade_plan,
    _hash_iblt_params,
    _multiround_child_estimator,
    _multiround_child_params,
    _naive_codec,
    _naive_parent_params,
    default_child_estimator_factory,
)
from repro.protocols.parties.graphs import FingerprintCodec
from repro.protocols.wire import (
    NULL_CODEC,
    EstimatorCodec,
    TableCodec,
    WireError,
)

sets_of_small_ints = st.sets(st.integers(min_value=0, max_value=199), max_size=40)


def assert_within_budget(codec, payload, size_bits):
    data = codec.encode(payload)
    budget = (size_bits + codec.framing_bits(payload) + 7) // 8
    assert len(data) <= budget, (len(data), budget)
    return data


class TestBitStream:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=80), st.data()),
            max_size=8,
        )
    )
    def test_fixed_fields_roundtrip(self, specs):
        writer = BitWriter()
        values = []
        for bits, data in specs:
            value = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
            values.append((value, bits))
            writer.write(value, bits)
        reader = BitReader(writer.getvalue())
        for value, bits in values:
            assert reader.read(bits) == value

    @given(
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=77),
    )
    def test_tail_roundtrip_any_prefix(self, value, prefix_bits):
        writer = BitWriter()
        writer.write((1 << prefix_bits) - 1, prefix_bits)
        writer.write_tail(value)
        reader = BitReader(writer.getvalue())
        assert reader.read(prefix_bits) == (1 << prefix_bits) - 1
        assert reader.read_tail_int() == value

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=40))
    def test_tail_costs_no_extra_bytes(self, value, prefix_bits):
        writer = BitWriter()
        writer.write(0, prefix_bits)
        writer.write_tail(value)
        charged = prefix_bits + bits_for_value(value)
        assert len(writer.getvalue()) == (charged + 7) // 8

    def test_signed_roundtrip(self):
        writer = BitWriter()
        for value in (-8, -1, 0, 7):
            writer.write_signed(value, 4)
        reader = BitReader(writer.getvalue())
        assert [reader.read_signed(4) for _ in range(4)] == [-8, -1, 0, 7]

    def test_overflow_rejected(self):
        with pytest.raises(ParameterError):
            BitWriter().write(4, 2)

    def test_read_past_end_rejected(self):
        with pytest.raises(ParameterError):
            BitReader(b"\x00").read(9)


class TestNullCodec:
    def test_roundtrip_empty(self):
        assert NULL_CODEC.encode(None) == b""
        assert NULL_CODEC.decode(b"") is None

    def test_rejects_payload(self):
        with pytest.raises(WireError):
            NULL_CODEC.encode(42)


class TestTableCodec:
    @given(sets_of_small_ints)
    @settings(max_examples=25)
    def test_roundtrip(self, keys):
        params = IBLTParameters.for_difference(8, 8, seed=5)
        table = IBLT.from_items(params, keys)
        codec = TableCodec(params)
        data = assert_within_budget(codec, table, params.size_bits)
        assert codec.decode(data) == table


class TestIBFMessageCodec:
    @given(sets_of_small_ints, st.booleans())
    @settings(max_examples=25)
    def test_roundtrip(self, alice, self_describing):
        ctx = SetReconContext(200, 9)
        bound = 6
        table = IBLT.from_items(ctx.table_params(bound), alice)
        payload = (table, set_verification_hash(9, alice), len(alice))
        encoder = IBFMessageCodec(ctx, bound, self_describing)
        decoder = IBFMessageCodec(
            ctx, None if self_describing else bound, self_describing
        )
        size_bits = table.size_bits + bits_for_value(len(alice)) + 64
        data = assert_within_budget(encoder, payload, size_bits)
        decoded_table, decoded_hash, decoded_size = decoder.decode(data)
        assert decoded_table == table
        assert decoded_hash == payload[1]
        assert decoded_size == len(alice)


class TestCPICodec:
    @given(sets_of_small_ints, st.integers(min_value=0, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, alice, bound):
        message = cpi_encode(alice, bound, 200)
        codec = CPIMessageCodec(200, bound)
        data = assert_within_budget(codec, message, message.size_bits)
        assert codec.decode(data) == message


def _sos(children):
    return SetOfSets(children)


class TestSetsOfSetsCodecs:
    def ctx(self, **kwargs):
        defaults = dict(max_child_size=8, max_num_children=6, max_total_elements=40)
        defaults.update(kwargs)
        return SetsOfSetsContext(64, 11, **defaults)

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=63), max_size=8),
            max_size=6,
        ),
        st.booleans(),
    )
    @settings(max_examples=25)
    def test_naive_roundtrip(self, children, self_describing):
        ctx = self.ctx()
        parent = _sos(children)
        bound = 4
        from repro.core.setsofsets.encoding import ExplicitChildScheme, parent_hash

        scheme = ExplicitChildScheme(ctx.universe_size, ctx.max_child_size)
        table = IBLT(_naive_parent_params(ctx, bound))
        table.insert_batch(scheme.encode(child) for child in parent)
        payload = (table, parent_hash(parent, ctx.seed))
        encoder = _naive_codec(ctx, bound, self_describing)
        decoder = _naive_codec(ctx, None if self_describing else bound, self_describing)
        data = assert_within_budget(encoder, payload, table.size_bits + 64)
        decoded_table, decoded_hash = decoder.decode(data)
        assert decoded_table == table and decoded_hash == payload[1]

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=63), max_size=8),
            max_size=5,
        ),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=20, deadline=None)
    def test_cascading_roundtrip(self, children, bound):
        ctx = self.ctx()
        parent = _sos(children)
        plan = _cascade_plan(ctx, bound)
        from repro.core.setsofsets.encoding import parent_hash

        level_tables = []
        for scheme, params in zip(plan.schemes, plan.level_params):
            table = IBLT(params)
            table.insert_batch(scheme.encode_all(parent))
            level_tables.append(table)
        t_star = None
        if plan.t_star_params is not None:
            t_star = IBLT(plan.t_star_params)
            t_star.insert_batch(plan.explicit_scheme.encode(child) for child in parent)
        payload = (level_tables, t_star, parent_hash(parent, ctx.seed))
        codec = CascadingMessageCodec(plan)
        data = assert_within_budget(codec, payload, plan.total_bits)
        decoded_tables, decoded_t_star, decoded_hash = codec.decode(data)
        assert decoded_tables == level_tables
        assert decoded_t_star == t_star
        assert decoded_hash == payload[2]

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=63), min_size=1, max_size=8),
            max_size=4,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_multiround_round2_roundtrip(self, differing):
        ctx = self.ctx()
        params = _hash_iblt_params(ctx, 4)
        factory, estimator_seed = _multiround_child_estimator(ctx)
        table = IBLT.from_items(params, range(1, 5))
        estimators = []
        for index, child in enumerate(differing):
            estimator = factory(estimator_seed)
            estimator.update_all(child, 1)
            estimators.append((index + 1, estimator))
        payload = (table, estimators)
        size_bits = table.size_bits + sum(
            ctx.child_hash_bits + est.size_bits for _, est in estimators
        )
        codec = MultiroundRound2Codec(ctx, params)
        data = assert_within_budget(codec, payload, size_bits)
        decoded_table, decoded_estimators = codec.decode(data)
        assert decoded_table == table
        assert len(decoded_estimators) == len(estimators)
        for (sent_hash, sent), (got_hash, got) in zip(estimators, decoded_estimators):
            assert sent_hash == got_hash
            assert sent._counters == got._counters

    @given(
        st.lists(
            st.tuples(
                st.frozensets(st.integers(min_value=0, max_value=63), max_size=8),
                st.booleans(),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=4,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_multiround_payloads_roundtrip(self, specs):
        ctx = self.ctx()
        payloads = []
        for index, (child, use_cpi, bound) in enumerate(specs):
            own_hash = index + 10
            if use_cpi:
                payloads.append(
                    ChildPayload(
                        index, own_hash, bound, None,
                        cpi_encode(set(child), bound, ctx.universe_size),
                    )
                )
            else:
                params = _multiround_child_params(ctx, bound, own_hash)
                payloads.append(
                    ChildPayload(
                        index, own_hash, bound,
                        IBLT.from_items(params, child), None,
                    )
                )
        codec = MultiroundPayloadsCodec(ctx)
        size_bits = sum(p.size_bits(ctx.child_hash_bits) for p in payloads)
        data = assert_within_budget(codec, payloads, size_bits)
        decoded = codec.decode(data)
        assert decoded == payloads


class TestEstimatorCodecs:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: L0Estimator(seed, num_levels=6, buckets_per_level=16),
            lambda seed: StrataEstimator(seed, num_strata=4, cells_per_stratum=10),
            lambda seed: MedianEstimator(
                seed, 3, lambda s: L0Estimator(s, num_levels=4, buckets_per_level=8)
            ),
        ],
        ids=["l0", "strata", "median"],
    )
    @given(elements=st.sets(st.integers(min_value=0, max_value=10**6), max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip(self, factory, elements):
        estimator = factory(31)
        estimator.update_all(elements, 1)
        codec = EstimatorCodec(factory, 31)
        data = assert_within_budget(codec, estimator, estimator.size_bits)
        decoded = codec.decode(data)
        assert decoded.query() == estimator.query()
        assert decoded.size_bits == estimator.size_bits
        # Re-encoding the decoded sketch must give identical bytes.
        assert codec.encode(decoded) == data


class TestFingerprintCodec:
    @given(st.integers(min_value=0, max_value=16), st.integers(min_value=0, max_value=16))
    def test_roundtrip(self, point, evaluation):
        codec = FingerprintCodec(17)
        data = assert_within_budget(codec, (point, evaluation), 2 * bits_for_value(16))
        assert codec.decode(data) == (point, evaluation)
