"""Shared fixtures: one runnable instance per registered protocol."""

import functools

from repro.cluster import KVRecord, VersionedKV
from repro.documents import DocumentCollection
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import (
    gnp_random_graph,
    planted_separated_graph,
    reconciliation_pair,
)
from repro.graphs.separation import neighborhood_disjointness
from repro.workloads import sets_of_sets_instance
from repro.workloads.database import flipped_table_pair
from repro.workloads.documents import edited_corpus_pair
from repro.workloads.forests import forest_instance


def _degree_neighborhood_pair():
    # Mirror the legacy test's search for a (pn, 4d+1)-disjoint instance.
    for seed in range(5, 30):
        base = gnp_random_graph(150, 0.35, seed)
        if neighborhood_disjointness(base, int(0.35 * 150)) >= 5:
            return reconciliation_pair(150, 0.35, 1, seed=seed + 100, base=base)
    return None  # pragma: no cover - the scan above always finds one


@functools.lru_cache(maxsize=1)
def _cached_instances():
    """Build every instance once per process."""
    instances = {}
    a_set, b_set = set(range(40)), set(range(6, 46))
    instances["ibf"] = (a_set, b_set, dict(universe_size=64, difference_bound=12))
    instances["cpi"] = (a_set, b_set, dict(universe_size=64, difference_bound=12))

    inst = sets_of_sets_instance(24, 16, 512, 8, 7, max_children_touched=4)
    instances["naive"] = (
        inst.alice, inst.bob,
        dict(universe_size=512, difference_bound=inst.differing_children),
    )
    instances["iblt_of_iblts"] = (
        inst.alice, inst.bob,
        dict(universe_size=512, difference_bound=inst.planted_difference),
    )
    instances["cascading"] = (
        inst.alice, inst.bob,
        dict(universe_size=512, difference_bound=inst.planted_difference),
    )
    instances["multiround"] = (
        inst.alice, inst.bob,
        dict(universe_size=512, difference_bound=inst.planted_difference),
    )

    base = planted_separated_graph(400, 0.5, 32, degree_gap=3, seed=5)
    pair = reconciliation_pair(400, 0.5, 2, seed=6, base=base)
    instances["degree_order"] = (
        pair.alice, pair.bob, dict(difference_bound=2, num_top=32)
    )
    dn_pair = _degree_neighborhood_pair()
    instances["degree_neighborhood"] = (
        dn_pair.alice, dn_pair.bob,
        dict(difference_bound=1, max_degree=int(0.35 * 150)),
    )
    g1 = Graph(6, [(0, 1), (1, 2), (3, 4)])
    g2 = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    instances["labeled"] = (g1, g2, dict(difference_bound=2))
    instances["exhaustive"] = (g1, g2, dict(difference_bound=1))

    finst = forest_instance(30, 3, 13)
    instances["forest"] = (
        finst.alice, finst.bob, dict(difference_bound=max(1, finst.num_edits))
    )
    ta, tb, flips = flipped_table_pair(12, 8, 0.4, 5, 17)
    instances["db"] = (ta, tb, dict(difference_bound=max(1, flips)))
    alice_texts, bob_texts = edited_corpus_pair(8, 30, 2, 2, 1, seed=19)
    instances["documents"] = (
        DocumentCollection(alice_texts, 3, seed=19),
        DocumentCollection(bob_texts, 3, seed=19),
        dict(difference_bound=200),
    )
    left, right = _replica_pair(seed=99)
    instances["kv"] = (left, right, dict(difference_bound=16))
    return instances


def _replica_pair(seed):
    """Two kv replicas: 30 shared records, 6 one-sided each, one tombstone."""
    left = VersionedKV(0, seed=seed)
    right = VersionedKV(1, seed=seed)
    shared = [
        KVRecord(f"shared-{i}", version=i + 1, writer=0, value=f"common-{i}")
        for i in range(30)
    ]
    left.merge_records(shared)
    right.merge_records(shared)
    for i in range(6):
        left.put(f"left-{i}", f"lv-{i}")
        right.put(f"right-{i}", f"rv-{i}")
    # One side deleted a shared key after the other last saw it: d = 14.
    right.delete("shared-0")
    return left, right


def protocol_instances():
    """``{protocol_name: (alice, bob, reconcile-kwargs)}`` for every protocol."""
    return _cached_instances()
