"""Registry behavior: names, metadata, the uniform entry point, docs sync."""

from pathlib import Path

import pytest

import repro
from repro.errors import ParameterError
from repro.protocols import ReconcileOptions
from repro.protocols.registry import get, names, registry_table_markdown, specs

from protocol_fixtures import protocol_instances

EXPECTED_PROTOCOLS = {
    "ibf",
    "cpi",
    "naive",
    "iblt_of_iblts",
    "cascading",
    "multiround",
    "degree_order",
    "degree_neighborhood",
    "forest",
    "labeled",
    "exhaustive",
    "db",
    "documents",
    "kv",
}


class TestRegistry:
    def test_names_lists_every_protocol(self):
        assert set(names()) == EXPECTED_PROTOCOLS
        assert names() == sorted(names())

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(ParameterError, match="registered"):
            get("bogus")

    def test_metadata_present(self):
        for spec in specs():
            assert spec.name and spec.input_kind and spec.summary and spec.reference
            assert spec.rounds_known >= 1
            if spec.supports_unknown_d:
                assert spec.rounds_unknown is not None
            assert spec.rounds_label()

    def test_input_kinds(self):
        kinds = {spec.name: spec.input_kind for spec in specs()}
        assert kinds["ibf"] == kinds["cpi"] == "set"
        assert kinds["multiround"] == "set_of_sets"
        assert kinds["degree_order"] == "graph"
        assert kinds["forest"] == "forest"
        assert kinds["db"] == "table"
        assert kinds["documents"] == "documents"
        assert kinds["kv"] == "kv"


class TestReconcileEntryPoint:
    def test_every_protocol_runs(self):
        for protocol, (alice, bob, kwargs) in protocol_instances().items():
            result = repro.reconcile(
                alice, bob, protocol=protocol, seed=99, **kwargs
            )
            assert result.success, (protocol, result.details)
            assert result.total_bits > 0

    def test_options_object_and_overrides_compose(self):
        alice, bob, kwargs = protocol_instances()["ibf"]
        options = ReconcileOptions(seed=99, universe_size=kwargs["universe_size"])
        result = repro.reconcile(
            alice, bob, protocol="ibf",
            options=options, difference_bound=kwargs["difference_bound"],
        )
        assert result.success

    def test_unknown_option_rejected(self):
        alice, bob, kwargs = protocol_instances()["ibf"]
        with pytest.raises(ParameterError, match="unknown reconcile option"):
            repro.reconcile(alice, bob, protocol="ibf", bogus_option=1, **kwargs)

    def test_missing_required_option_rejected(self):
        with pytest.raises(ParameterError, match="universe_size"):
            repro.reconcile({1}, {2}, protocol="ibf", difference_bound=1)
        with pytest.raises(ParameterError, match="difference_bound"):
            repro.reconcile({1}, {2}, protocol="cpi", universe_size=8)

    def test_matches_legacy_free_functions(self):
        alice, bob, kwargs = protocol_instances()["cascading"]
        unified = repro.reconcile(
            alice, bob, protocol="cascading", seed=99, **kwargs
        )
        legacy = repro.reconcile_cascading(
            alice, bob, kwargs["difference_bound"], kwargs["universe_size"],
            max(alice.max_child_size, bob.max_child_size), 99,
        )
        assert unified.success == legacy.success
        assert unified.recovered == legacy.recovered
        assert unified.total_bits == legacy.total_bits

    # The composite protocols keep their legacy function bodies (for the
    # custom-callable parameters); these pins stop the registered party
    # versions from silently diverging from them.

    def _assert_equivalent(self, unified, legacy):
        assert unified.success == legacy.success, (unified.details, legacy.details)
        assert unified.recovered == legacy.recovered
        assert unified.total_bits == legacy.total_bits
        assert unified.num_rounds == legacy.num_rounds

    def test_degree_order_matches_legacy(self):
        alice, bob, kwargs = protocol_instances()["degree_order"]
        unified = repro.reconcile(alice, bob, protocol="degree_order", seed=99, **kwargs)
        legacy = repro.reconcile_degree_order(
            alice, bob, kwargs["difference_bound"], kwargs["num_top"], 99
        )
        self._assert_equivalent(unified, legacy)
        assert unified.details == legacy.details

    def test_degree_neighborhood_matches_legacy(self):
        alice, bob, kwargs = protocol_instances()["degree_neighborhood"]
        unified = repro.reconcile(
            alice, bob, protocol="degree_neighborhood", seed=99, **kwargs
        )
        legacy = repro.reconcile_degree_neighborhood(
            alice, bob, kwargs["difference_bound"], kwargs["max_degree"], 99
        )
        self._assert_equivalent(unified, legacy)
        assert unified.details == legacy.details

    def test_forest_matches_legacy(self):
        alice, bob, kwargs = protocol_instances()["forest"]
        unified = repro.reconcile(alice, bob, protocol="forest", seed=99, **kwargs)
        legacy = repro.reconcile_forest(
            alice, bob, kwargs["difference_bound"], None, 99
        )
        self._assert_equivalent(unified, legacy)
        assert unified.details == legacy.details

    def test_db_matches_legacy(self):
        alice, bob, kwargs = protocol_instances()["db"]
        unified = repro.reconcile(alice, bob, protocol="db", seed=99, **kwargs)
        legacy = repro.reconcile_tables(alice, bob, kwargs["difference_bound"], 99)
        self._assert_equivalent(unified, legacy)

    def test_documents_matches_legacy(self):
        alice, bob, kwargs = protocol_instances()["documents"]
        unified = repro.reconcile(alice, bob, protocol="documents", seed=99, **kwargs)
        legacy = repro.reconcile_collections(
            alice, bob, kwargs["difference_bound"], 99
        )
        self._assert_equivalent(unified, legacy)

    def test_labeled_and_exhaustive_match_legacy(self):
        alice, bob, kwargs = protocol_instances()["labeled"]
        for bound in (kwargs["difference_bound"], None):
            unified = repro.reconcile(
                alice, bob, protocol="labeled", seed=99, difference_bound=bound
            )
            legacy = repro.reconcile_labeled_graphs(alice, bob, bound, 99)
            self._assert_equivalent(unified, legacy)
            assert unified.details == legacy.details
        unified = repro.reconcile(alice, bob, protocol="exhaustive", seed=99,
                                  difference_bound=1)
        legacy = repro.reconcile_exhaustive(alice, bob, 1, 99)
        self._assert_equivalent(unified, legacy)


class TestDocsSync:
    def test_table_mentions_every_protocol(self):
        table = registry_table_markdown()
        for name in names():
            assert f"`{name}`" in table

    def test_readme_table_in_sync(self):
        readme = Path(__file__).resolve().parents[2] / "README.md"
        content = readme.read_text()
        for line in registry_table_markdown().strip().splitlines():
            assert line in content, f"README protocol table out of date: {line!r}"
