"""Tests for the communication layer: transcripts, sizing helpers, results."""

import pytest

from repro.comm import ReconciliationResult, Transcript, WORD_BITS
from repro.comm.sizing import (
    bits_for_count,
    bits_for_elements,
    bits_for_field_elements,
    bits_for_naive_child_set,
    bits_for_value,
    ceil_log2,
)
from repro.errors import ParameterError


class TestTranscript:
    def test_single_message_is_one_round(self):
        transcript = Transcript()
        transcript.send("alice", "payload", 100)
        assert transcript.num_rounds == 1
        assert transcript.total_bits == 100

    def test_same_sender_same_round(self):
        transcript = Transcript()
        transcript.send("alice", "a", 10)
        transcript.send("alice", "b", 20)
        assert transcript.num_rounds == 1
        assert transcript.total_bits == 30

    def test_direction_switch_increments_round(self):
        transcript = Transcript()
        transcript.send("bob", "estimator", 5)
        transcript.send("alice", "table", 50)
        transcript.send("bob", "reply", 5)
        transcript.send("alice", "payloads", 50)
        assert transcript.num_rounds == 4

    def test_empty_transcript(self):
        transcript = Transcript()
        assert transcript.num_rounds == 0
        assert transcript.total_bits == 0
        assert len(transcript) == 0

    def test_bits_by_sender_and_label(self):
        transcript = Transcript()
        transcript.send("alice", "table", 10)
        transcript.send("bob", "table", 20)
        transcript.send("alice", "hash", 5)
        assert transcript.bits_by_sender() == {"alice": 15, "bob": 20}
        assert transcript.bits_by_label() == {"table": 30, "hash": 5}

    def test_invalid_messages_rejected(self):
        transcript = Transcript()
        with pytest.raises(ParameterError):
            transcript.send("alice", "x", -1)
        with pytest.raises(ParameterError):
            transcript.send("", "x", 1)

    def test_extend_renumbers_rounds(self):
        first = Transcript()
        first.send("alice", "a", 1)
        second = Transcript()
        second.send("alice", "b", 2)
        second.send("bob", "c", 3)
        first.extend(second)
        assert first.num_rounds == 2
        assert first.total_bits == 6

    def test_payload_carried(self):
        transcript = Transcript()
        payload = {"key": 1}
        message = transcript.send("alice", "obj", 8, payload=payload)
        assert message.payload is payload


class TestSizing:
    def test_bits_for_value(self):
        assert bits_for_value(0) == 1
        assert bits_for_value(1) == 1
        assert bits_for_value(255) == 8
        assert bits_for_value(256) == 9

    def test_bits_for_elements(self):
        assert bits_for_elements(10, 1024) == 10 * 10

    def test_bits_for_count_negative_rejected(self):
        with pytest.raises(ParameterError):
            bits_for_count(-1, 8)

    def test_bits_for_field_elements(self):
        assert bits_for_field_elements(3, 2**13) == 3 * 13

    def test_naive_child_set_uses_minimum(self):
        # Small universe: bitmap (u bits) wins over the packed list.
        assert bits_for_naive_child_set(16, 10) == 16
        # Large universe: the packed list wins; each slot carries a presence
        # bit on top of the ceil(log2 u)-bit element.
        assert bits_for_naive_child_set(2**20, 5) == 5 * 21

    def test_naive_child_set_matches_explicit_scheme_width(self):
        # The analytic accounting must charge exactly what the explicit
        # child encoding occupies on the wire (the PR 3 accounting fix).
        from repro.core.setsofsets.encoding import ExplicitChildScheme

        for universe_size in (1, 2, 5, 16, 64, 1023, 1024, 2**20):
            for max_child_size in (0, 1, 2, 7, 32, 200):
                assert (
                    bits_for_naive_child_set(universe_size, max_child_size)
                    == ExplicitChildScheme(universe_size, max_child_size).key_bits
                ), (universe_size, max_child_size)

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        with pytest.raises(ParameterError):
            ceil_log2(0)

    def test_word_bits_constant(self):
        assert WORD_BITS == 64


class TestReconciliationResult:
    def _transcript(self, bits):
        transcript = Transcript()
        transcript.send("alice", "x", bits)
        return transcript

    def test_bool_and_accessors(self):
        result = ReconciliationResult(True, {1}, self._transcript(10))
        assert result
        assert result.total_bits == 10
        assert result.num_rounds == 1

    def test_failed_result_is_falsy(self):
        result = ReconciliationResult(False, None, self._transcript(10))
        assert not result

    def test_details_default(self):
        result = ReconciliationResult(True, None, Transcript())
        assert result.details == {}
        assert result.attempts == 1
