"""Admission control: token buckets, the in-flight cap, and the coded
refusal path -- a shed client gets a typed error, never a hang or a bare
``OSError``."""

import asyncio
import random
import socket

import pytest

from repro.errors import (
    ParameterError,
    ReconciliationError,
    ServiceError,
    SessionRejectedError,
)
from repro.protocols import pack_frame, read_frame
from repro.protocols.options import ReconcileOptions
from repro.protocols.transports import FRAME_CONTROL
from repro.service import (
    REJECT_AT_CAPACITY,
    REJECT_RATE_LIMITED,
    AdmissionController,
    AdmissionPolicy,
    SyncServer,
    areconcile,
)
from repro.service.admission import TokenBucket
from repro.service.hello import ACK_LABEL, HELLO_LABEL, Hello, PeerStats, parse_ack
from repro.service.hello import options_to_wire

UNIVERSE = 1 << 20
SEED = 2018


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, now=clock())
        assert bucket.try_take(clock())
        assert bucket.try_take(clock())
        assert not bucket.try_take(clock())  # burst exhausted
        clock.advance(1.0)
        assert bucket.try_take(clock())  # one token refilled
        assert not bucket.try_take(clock())

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, now=clock())
        clock.advance(100.0)  # idle for ages: still only `burst` available
        taken = sum(bucket.try_take(clock()) for _ in range(10))
        assert taken == 3


class TestAdmissionPolicy:
    def test_disabled_when_no_knobs(self):
        assert not AdmissionPolicy().enabled
        assert AdmissionPolicy(max_inflight=4).enabled
        assert AdmissionPolicy(client_rate=1.0).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"client_rate": 0.0},
            {"client_rate": 1.0, "client_burst": 0.0},
            {"max_tracked_clients": 0},
        ],
    )
    def test_rejects_nonpositive_knobs(self, kwargs):
        with pytest.raises(ParameterError):
            AdmissionPolicy(**kwargs)


class TestAdmissionController:
    def test_capacity_cap_and_release(self):
        controller = AdmissionController(AdmissionPolicy(max_inflight=2))
        assert controller.try_admit("a") is None
        assert controller.try_admit("b") is None
        assert controller.try_admit("c") == REJECT_AT_CAPACITY
        controller.release()
        assert controller.try_admit("c") is None

    def test_per_client_rate_limit(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(client_rate=1.0, client_burst=1.0), clock=clock
        )
        assert controller.try_admit("10.0.0.1") is None
        assert controller.try_admit("10.0.0.1") == REJECT_RATE_LIMITED
        assert controller.try_admit("10.0.0.2") is None  # separate bucket
        clock.advance(1.0)
        assert controller.try_admit("10.0.0.1") is None

    def test_rate_checked_before_capacity(self):
        """A client hammering a full server drains its own bucket: the
        refusal it gets is rate-limited, not at-capacity."""
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_inflight=1, client_rate=1.0, client_burst=1.0),
            clock=clock,
        )
        assert controller.try_admit("a") is None  # holds the one slot
        assert controller.try_admit("b") == REJECT_AT_CAPACITY
        assert controller.try_admit("b") == REJECT_RATE_LIMITED

    def test_bucket_table_is_bounded_lru(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(
                client_rate=1.0, client_burst=1.0, max_tracked_clients=2
            ),
            clock=clock,
        )
        assert controller.try_admit("a") is None
        assert controller.try_admit("b") is None
        assert controller.try_admit("c") is None  # evicts "a" (oldest)
        # "a" got a fresh bucket, so despite having just spent its token it
        # is admitted again -- bounded memory traded for forgiving evicted
        # clients.
        assert controller.try_admit("a") is None
        assert controller.try_admit("a") == REJECT_RATE_LIMITED


def make_set(size=200):
    rng = random.Random(SEED)
    return set(rng.sample(range(UNIVERSE), size))


def options(client_id=0):
    return ReconcileOptions(
        seed=SEED + client_id, universe_size=UNIVERSE, difference_bound=8
    )


@pytest.mark.timeout(120)
def test_shed_session_surfaces_as_typed_error_not_hang():
    """With max_inflight=1 and a slow in-flight session, the second client
    is refused with a coded ack that raises SessionRejectedError -- which is
    both a ServiceError and a ReconciliationError, so existing retry
    handlers already catch it."""
    server_set = make_set()
    mine = set(server_set)
    mine.add(UNIVERSE - 1)

    async def scenario():
        admission = AdmissionController(AdmissionPolicy(max_inflight=1))
        async with SyncServer(
            {"ibf": server_set}, latency=0.2, admission=admission
        ) as server:
            first = asyncio.create_task(
                areconcile(
                    "127.0.0.1", server.port, "ibf", set(mine),
                    options=options(0), latency=0.2,
                )
            )
            await asyncio.sleep(0.2)  # first session is now holding the slot
            with pytest.raises(SessionRejectedError) as excinfo:
                await areconcile(
                    "127.0.0.1", server.port, "ibf", set(mine), options=options(1)
                )
            assert excinfo.value.code == REJECT_AT_CAPACITY
            assert isinstance(excinfo.value, ServiceError)
            assert isinstance(excinfo.value, ReconciliationError)
            result = await first
            assert result.success and result.recovered == server_set
            assert server.metrics.sessions_shed_capacity == 1
            assert server.metrics.sessions_served == 1

    asyncio.run(scenario())


@pytest.mark.timeout(120)
def test_rejection_frame_parseable_by_blocking_client():
    """The refusal is an ordinary coded ack: the blocking socket client's
    parse_ack turns it into the same typed error."""
    server_set = make_set()

    async def scenario():
        admission = AdmissionController(
            AdmissionPolicy(client_rate=0.001, client_burst=1.0)
        )
        async with SyncServer({"ibf": server_set}, admission=admission) as server:
            port = server.port

            def blocking_hello():
                hello = Hello("ibf", "bob", options_to_wire(options()),
                              PeerStats().to_wire())
                with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                    sock.sendall(
                        pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0,
                                   hello.to_json())
                    )
                    ack = read_frame(sock)
                    assert ack.label == ACK_LABEL
                    parse_ack(ack.payload)

            # First session drains the one-token bucket...
            await asyncio.to_thread(blocking_hello)
            # ...so the next hello from the same address is shed.
            with pytest.raises(SessionRejectedError) as excinfo:
                await asyncio.to_thread(blocking_hello)
            assert excinfo.value.code == REJECT_RATE_LIMITED
            assert "rate-limited" in str(excinfo.value)
            assert server.metrics.sessions_shed_rate == 1

    asyncio.run(scenario())


@pytest.mark.timeout(120)
def test_mid_handshake_disconnect_leaves_server_healthy():
    """A client that vanishes mid-handshake (partial frame, then close) must
    not wedge the server or leak an admission slot; a client whose peer
    closes mid-handshake gets a ReconciliationError, not a hang."""
    server_set = make_set()

    async def scenario():
        admission = AdmissionController(AdmissionPolicy(max_inflight=4))
        async with SyncServer({"ibf": server_set}, admission=admission) as server:
            port = server.port

            def vanish_mid_handshake():
                hello = Hello("ibf", "bob", options_to_wire(options()),
                              PeerStats().to_wire())
                frame = pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0,
                                   hello.to_json())
                with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                    sock.sendall(frame[: len(frame) // 2])  # half a hello

            def read_against_closed():
                with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                    sock.sendall(
                        pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0,
                                   Hello("ibf", "bob", options_to_wire(options()),
                                         PeerStats().to_wire()).to_json())
                    )
                    ack = read_frame(sock)
                    parse_ack(ack.payload)
                    # Now abandon the session mid-protocol; the server's
                    # session task must clean up on its own.

            await asyncio.to_thread(vanish_mid_handshake)
            await asyncio.to_thread(read_against_closed)
            await asyncio.sleep(0.1)  # let the aborted session tasks settle

            # The server still serves complete sessions afterwards, and no
            # admission slot leaked (all four are available again).
            for client_id in range(4):
                result = await areconcile(
                    "127.0.0.1", port, "ibf", set(server_set),
                    options=options(client_id),
                )
                assert result.success and result.recovered == server_set

    asyncio.run(scenario())
