"""The ``python -m repro.service`` CLI: stats renders the reporting-style
table (with ``--json`` for the raw dict), sync and mutate round-trip."""

import asyncio
import json
import threading

import pytest

from repro.service import SyncServer
from repro.service.__main__ import demo_set, main

UNIVERSE = 1 << 20
SIZE = 512
SEED = 2018


class ServerThread:
    """The demo server on its own event-loop thread, port 0."""

    def __init__(self, store_root=None):
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.port = None
        self._store_root = store_root

    def __enter__(self):
        def body():
            async def serve():
                from repro.store import SketchStore

                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                demo = demo_set(UNIVERSE, SIZE, SEED)
                store = (
                    SketchStore(self._store_root) if self._store_root else None
                )
                async with SyncServer({"ibf": demo}, store=store) as server:
                    self.port = server.port
                    self._ready.set()
                    await self._stop.wait()

            asyncio.run(serve())

        self._thread = threading.Thread(target=body, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def run_cli(*argv):
    return main([str(arg) for arg in argv])


@pytest.mark.timeout(120)
def test_sync_then_stats_renders_the_table(capsys):
    with ServerThread() as server:
        code = run_cli(
            "sync", "--port", server.port, "--size", SIZE,
            "--protocol", "ibf", "--mutations", "8", "--difference-bound", "16",
        )
        assert code == 0
        assert "reconciled" in capsys.readouterr().out

        assert run_cli("stats", "--port", server.port) == 0
        out = capsys.readouterr().out
        # The reporting-style aggregate line plus the per-protocol table.
        assert "service metrics: 1 served / 0 failed" in out
        assert "wire bytes" in out and "overhead" in out
        assert "per-protocol" in out
        assert "protocol" in out and "ibf" in out


@pytest.mark.timeout(120)
def test_stats_json_flag_prints_the_raw_report(capsys):
    with ServerThread() as server:
        assert run_cli("stats", "--port", server.port, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sessions_served"] == 0
        assert "store" in report and "mutations" in report


@pytest.mark.timeout(120)
def test_mutate_subcommand_round_trips(tmp_path, capsys):
    with ServerThread(store_root=tmp_path) as server:
        code = run_cli(
            "mutate", "--port", server.port,
            "--insert", 1, 2, "--delete",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "+2 / -0 keys" in out

        assert run_cli("stats", "--port", server.port) == 0
        out = capsys.readouterr().out
        assert "mutations: 1 applied / 0 rejected" in out


@pytest.mark.timeout(120)
def test_mutate_against_storeless_server_fails_cleanly(capsys):
    with ServerThread() as server:
        code = run_cli("mutate", "--port", server.port, "--insert", 1)
        assert code == 2
        assert "no sketch store" in capsys.readouterr().err
