"""Service metrics: counters, per-protocol breakdown, report rendering."""

import json
import threading

from repro.service.metrics import ServiceMetrics, SessionRecord


def record(metrics, protocol="ibf", success=True, **kwargs):
    defaults = dict(
        rounds=2,
        messages=3,
        bits_charged=1000,
        wire_bytes_sent=80,
        wire_bytes_received=70,
        attempts=1,
    )
    defaults.update(kwargs)
    metrics.record_session(SessionRecord(protocol, "alice", success, **defaults))


def test_counters_aggregate():
    metrics = ServiceMetrics()
    metrics.record_start()
    metrics.record_start()
    record(metrics)
    record(metrics, protocol="cpi", success=False, attempts=3)
    record(metrics, protocol="ibf", sharded=True)
    metrics.record_resplit()
    metrics.record_stats_request()
    metrics.record_rejected()

    report = metrics.report()
    assert report["sessions_started"] == 2
    assert report["sessions_served"] == 2
    assert report["sessions_failed"] == 1
    assert report["rounds_total"] == 6
    assert report["messages_total"] == 9
    assert report["bits_charged_total"] == 3000
    assert report["wire_bytes_sent"] == 240
    assert report["wire_bytes_received"] == 210
    assert report["retries"] == 2  # attempts=3 -> two retries
    assert report["shard_sessions"] == 1
    assert report["shard_resplits"] == 1
    assert report["stats_requests"] == 1
    assert report["rejected_hellos"] == 1
    assert report["by_protocol"]["ibf"]["served"] == 2
    assert report["by_protocol"]["cpi"]["failed"] == 1
    json.dumps(report)  # must stay JSON-safe


def test_wire_overhead_is_bytes_beyond_charged_bits():
    metrics = ServiceMetrics()
    record(
        metrics,
        bits_charged=800,  # 100 charged bytes
        wire_bytes_sent=90,
        wire_bytes_received=40,  # 130 raw bytes -> 30 bytes of framing
    )
    assert metrics.report()["wire_overhead_bytes"] == 30


def test_format_report_mentions_every_protocol():
    metrics = ServiceMetrics()
    record(metrics, protocol="ibf")
    record(metrics, protocol="multiround", success=False)
    text = metrics.format_report()
    assert "1 served / 1 failed" in text
    assert "ibf" in text and "multiround" in text


def test_format_report_without_sessions():
    assert "0 served" in ServiceMetrics().format_report()


def test_thread_safety_of_recording():
    metrics = ServiceMetrics()

    def hammer():
        for _ in range(500):
            record(metrics)
            metrics.record_resplit()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report = metrics.report()
    assert report["sessions_served"] == 2000
    assert report["shard_resplits"] == 2000
    assert report["bits_charged_total"] == 2_000_000
