"""The ``serve --workers N`` CLI path, run as a real subprocess: the
README quickstart must start a fleet, serve syncs, render fleet-wide
stats, and drain gracefully on SIGTERM."""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import fleet_supported
from repro.service.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SIZE = 256

needs_fleet = pytest.mark.skipif(
    not fleet_supported(), reason="fleet needs POSIX descriptor passing"
)


def run_cli(*argv, capsys=None):
    return main([str(arg) for arg in argv])


@needs_fleet
@pytest.mark.timeout(180)
def test_serve_workers_quickstart_round_trip(capsys):
    """The README example, end to end: ``serve --workers 2``, a client
    sync, fleet stats with the per-worker table, SIGTERM -> drained exit."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--workers", "2", "--port", "0", "--size", str(SIZE),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+) with 2 workers", line)
        assert match, f"unexpected serve banner: {line!r}"
        port = int(match.group(1))

        code = run_cli(
            "sync", "--port", port, "--size", SIZE,
            "--protocol", "ibf", "--mutations", "8", "--difference-bound", "16",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reconciled" in out and "recovered the server dataset: yes" in out

        assert run_cli("stats", "--port", port) == 0
        out = capsys.readouterr().out
        assert "service metrics: 1 served / 0 failed" in out
        assert "per-worker" in out  # the fleet breakdown table
        assert re.search(r"^\s*0\s", out, re.M) and re.search(r"^\s*1\s", out, re.M)

        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, stdout
        assert "draining..." in stdout
        assert re.search(r"drained: \d+ finished, \d+ aborted", stdout)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)


@needs_fleet
@pytest.mark.timeout(120)
def test_serve_single_worker_sigterm_drains_too():
    """The same drain path guards the plain single-server CLI."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--port", "0", "--size", str(SIZE), "--drain-deadline", "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        assert re.search(r"on 127\.0\.0\.1:\d+", line), line
        time.sleep(0.2)
        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, stdout
        assert "draining..." in stdout
        assert "drained: 0 finished, 0 aborted" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)
