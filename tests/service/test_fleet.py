"""The multi-process sync fleet: FD-passing dispatch, dataset ownership,
crash recovery, rolling drain, and fleet-wide metrics aggregation.

The acceptance pins live here: fleet-routed sessions are transcript-
identical to single-server sessions for every routed protocol, and a
SIGKILLed worker is respawned and serves its partition again after journal
replay."""

import asyncio
import json
import os
import random
import signal
import socket

import pytest

from repro.core.setsofsets.types import SetOfSets
from repro.errors import ServiceError, SessionRejectedError
from repro.protocols import pack_frame, read_frame
from repro.protocols.options import ReconcileOptions
from repro.protocols.transports import FRAME_CONTROL
from repro.service import (
    LeastLoadedDispatcher,
    ServiceMetrics,
    SessionRecord,
    SyncFleet,
    SyncServer,
    afetch_stats,
    amutate,
    areconcile,
    fleet_supported,
    owner_of,
)
from repro.service.hello import HELLO_LABEL, Hello, PeerStats, options_to_wire
from repro.service.metrics import MERGEABLE_COUNTERS

UNIVERSE = 1 << 20
SEED = 2018

needs_fleet = pytest.mark.skipif(
    not fleet_supported(), reason="fleet needs POSIX descriptor passing"
)

ROUTED_PROTOCOLS = ("ibf", "cpi", "iblt_of_iblts", "multiround", "cascading", "naive")


def make_datasets(rng):
    server_set = set(rng.sample(range(UNIVERSE), 300))
    children = [frozenset(rng.sample(range(UNIVERSE), 6)) for _ in range(40)]
    server_sos = SetOfSets(children)
    return {
        "ibf": server_set,
        "cpi": server_set,
        "iblt_of_iblts": server_sos,
        "multiround": server_sos,
        "cascading": server_sos,
        "naive": server_sos,
    }


def perturb(data, rng):
    if isinstance(data, SetOfSets):
        children = [set(child) for child in sorted(data.children, key=sorted)]
        for index in rng.sample(range(len(children)), 2):
            children[index].add(rng.randrange(UNIVERSE))
        return SetOfSets(children)
    mutated = set(data)
    for element in rng.sample(sorted(data), 2):
        mutated.discard(element)
    mutated.add(rng.randrange(UNIVERSE))
    return mutated


def options(client_id=0, bound=12):
    return ReconcileOptions(
        seed=SEED + client_id, universe_size=UNIVERSE, difference_bound=bound
    )


class TestOwnership:
    def test_owner_is_deterministic_and_in_range(self):
        for workers in (1, 2, 3, 8):
            for name in ROUTED_PROTOCOLS:
                owner = owner_of(name, workers, SEED)
                assert 0 <= owner < workers
                assert owner == owner_of(name, workers, SEED)

    def test_owner_depends_on_seed_and_name(self):
        owners = {owner_of(name, 64, SEED) for name in ROUTED_PROTOCOLS}
        assert len(owners) > 1  # names spread across workers
        assert any(
            owner_of(name, 64, SEED) != owner_of(name, 64, SEED + 1)
            for name in ROUTED_PROTOCOLS
        )

    def test_single_worker_owns_everything(self):
        assert all(owner_of(name, 1, SEED) == 0 for name in ROUTED_PROTOCOLS)


class TestDispatcher:
    def test_spreads_load_and_respects_budget(self):
        dispatcher = LeastLoadedDispatcher(4, per_worker_budget=2, seed=SEED)
        picked = []
        for _ in range(8):
            worker = dispatcher.pick()
            assert worker is not None
            dispatcher.assign(worker)
            picked.append(worker)
        # 8 assignments against a 4x2 budget must fill every slot exactly.
        assert sorted(picked.count(w) for w in range(4)) == [2, 2, 2, 2]
        assert dispatcher.pick() is None  # everyone at budget
        dispatcher.complete(picked[0])
        assert dispatcher.pick() == picked[0]

    def test_reset_clears_a_crashed_workers_load(self):
        dispatcher = LeastLoadedDispatcher(2, per_worker_budget=1, seed=SEED)
        for worker in range(2):
            dispatcher.assign(worker)
        assert dispatcher.pick() is None
        dispatcher.reset(1)  # worker 1 crashed: its sessions are gone
        assert dispatcher.pick() == 1

    def test_eligible_filter(self):
        dispatcher = LeastLoadedDispatcher(3, seed=SEED)
        assert dispatcher.pick(eligible=[2]) == 2


@needs_fleet
@pytest.mark.timeout(180)
class TestFleetServing:
    def test_transcripts_identical_to_single_server_for_every_protocol(self):
        """The routing acceptance pin: for each routed protocol, a session
        through the 2-worker fleet is transcript-identical (same recovered
        data, bits, rounds, per-round breakdown) to the same session
        against a plain SyncServer."""
        rng = random.Random(SEED)
        datasets = make_datasets(rng)
        mutated = {
            name: perturb(data, random.Random(SEED + index))
            for index, (name, data) in enumerate(sorted(datasets.items()))
        }

        async def run_all(port):
            outcomes = {}
            for index, name in enumerate(sorted(datasets)):
                result = await areconcile(
                    "127.0.0.1", port, name, mutated[name], options=options(index)
                )
                assert result.success, name
                outcomes[name] = (
                    result.recovered,
                    result.total_bits,
                    result.num_rounds,
                    result.attempts,
                    result.transcript.round_summary(),
                )
            return outcomes

        async def scenario():
            async with SyncServer(datasets) as server:
                single = await run_all(server.port)
            async with SyncFleet(datasets, workers=2, seed=SEED) as fleet:
                fleet_runs = await run_all(fleet.port)
            return single, fleet_runs

        single, fleet_runs = asyncio.run(scenario())
        assert set(single) == set(ROUTED_PROTOCOLS)
        for name in ROUTED_PROTOCOLS:
            assert fleet_runs[name] == single[name], name
            assert fleet_runs[name][0] == datasets[name], name

    def test_burst_kill_restart_burst(self):
        """The CI smoke: an 8-client burst against 2 workers, then a
        SIGKILLed worker is respawned and the next burst still succeeds."""
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 300))

        async def burst(port, offset):
            async def one(client_id):
                mine = perturb(server_set, random.Random(SEED + offset + client_id))
                result = await areconcile(
                    "127.0.0.1", port, "ibf", mine, options=options(offset + client_id)
                )
                assert result.success and result.recovered == server_set

            await asyncio.gather(*(one(i) for i in range(8)))

        async def scenario():
            async with SyncFleet({"ibf": server_set}, workers=2, seed=SEED) as fleet:
                await burst(fleet.port, 0)

                victim = fleet._handles[0].process
                os.kill(victim.pid, signal.SIGKILL)
                for _ in range(200):  # wait for respawn + ready
                    await asyncio.sleep(0.05)
                    handle = fleet._handles.get(0)
                    if (
                        handle is not None
                        and handle.alive
                        and handle.process.pid != victim.pid
                        and handle.ready.is_set()
                    ):
                        break
                else:
                    raise AssertionError("worker 0 was not respawned")

                await burst(fleet.port, 100)
                report = await fleet.fleet_report()
                summary = await fleet.adrain()
            return report, summary

        report, summary = asyncio.run(scenario())
        # The supervisor's dispatch counter survives the crash; the killed
        # worker's own session counters die with it (its second incarnation
        # plus the surviving worker still account for >= the second burst).
        assert report["fleet"]["connections_dispatched"] == 16
        assert report["sessions_served"] >= 8
        assert report["sessions_failed"] == 0
        assert report["fleet"]["worker_restarts"] == 1
        assert summary["aborted"] == 0

    def test_per_worker_budget_sheds_instead_of_queueing(self):
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 200))

        async def scenario():
            async with SyncFleet(
                {"ibf": server_set},
                workers=2,
                seed=SEED,
                latency=0.1,
                per_worker_inflight=1,
            ) as fleet:
                async def one(client_id):
                    mine = perturb(server_set, random.Random(SEED + client_id))
                    try:
                        result = await areconcile(
                            "127.0.0.1", fleet.port, "ibf", mine,
                            options=options(client_id), latency=0.1,
                        )
                    except SessionRejectedError as exc:
                        return exc.code
                    assert result.success and result.recovered == server_set
                    return "served"

                outcomes = await asyncio.gather(*(one(i) for i in range(8)))
                shed = fleet.metrics.snapshot()
                await fleet.adrain()
                return outcomes, shed

        outcomes, shed = asyncio.run(scenario())
        # With 2 one-session workers and 8 simultaneous clients, some must
        # be served and the excess refused with the at-capacity code.
        assert outcomes.count("served") >= 2
        assert "at-capacity" in outcomes
        assert shed["sessions_shed_capacity"] == outcomes.count("at-capacity")

    def test_fleet_stats_aggregate_across_workers(self):
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 200))

        async def scenario():
            async with SyncFleet({"ibf": server_set}, workers=2, seed=SEED) as fleet:
                for client_id in range(6):
                    mine = perturb(server_set, random.Random(SEED + client_id))
                    result = await areconcile(
                        "127.0.0.1", fleet.port, "ibf", mine,
                        options=options(client_id),
                    )
                    assert result.success
                report = await afetch_stats("127.0.0.1", fleet.port)
                await fleet.adrain()
            return report

        report = asyncio.run(scenario())
        assert report["sessions_served"] == 6
        workers = report["workers"]
        assert sorted(workers) == ["0", "1"]
        # The fleet-wide totals are exactly the sum of the per-worker
        # reports: aggregation adds, it does not double-count.
        assert sum(w["sessions_served"] for w in workers.values()) == 6
        assert sum(
            w["wire_bytes_sent"] for w in workers.values()
        ) == report["wire_bytes_sent"]


@needs_fleet
@pytest.mark.timeout(180)
class TestPartitionedFleet:
    def test_mutate_routes_to_owner_and_survives_owner_crash(self, tmp_path):
        """The crash-recovery acceptance pin: mutate the owner's dataset,
        SIGKILL the owner, and the respawned worker answers syncs with the
        mutated set after replaying its journal."""
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 200))
        fresh = max(server_set) + 1
        mutated_set = (server_set | {fresh}) - {min(server_set)}

        async def scenario():
            async with SyncFleet(
                {"ibf": set(server_set)},
                workers=2,
                seed=SEED,
                store_root=str(tmp_path),
            ) as fleet:
                owner = fleet.owner_for("ibf")
                ack = await amutate(
                    "127.0.0.1", fleet.port, "ibf",
                    insert=[fresh], delete=[min(server_set)],
                )
                assert ack["inserted"] == 1 and ack["deleted"] == 1

                victim = fleet._handles[owner].process
                os.kill(victim.pid, signal.SIGKILL)
                for _ in range(200):
                    await asyncio.sleep(0.05)
                    handle = fleet._handles.get(owner)
                    if (
                        handle is not None
                        and handle.alive
                        and handle.process.pid != victim.pid
                        and handle.ready.is_set()
                    ):
                        break
                else:
                    raise AssertionError("owner worker was not respawned")

                result = await areconcile(
                    "127.0.0.1", fleet.port, "ibf", set(server_set),
                    options=options(7),
                )
                report = await fleet.fleet_report()
                await fleet.adrain()
            return result, report

        result, report = asyncio.run(scenario())
        assert result.success
        assert result.recovered == mutated_set  # the delta survived the crash
        assert report["fleet"]["worker_restarts"] == 1
        # The respawned owner rebuilt its sketches by replaying the journal
        # over its snapshot -- the recovery path, not a cold rebuild.
        assert report["store"]["journal_replays"] >= 1

    def test_storeless_fleet_refuses_mutate(self):
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 100))

        async def scenario():
            async with SyncFleet({"ibf": server_set}, workers=2, seed=SEED) as fleet:
                with pytest.raises(ServiceError, match="no sketch store"):
                    await amutate("127.0.0.1", fleet.port, "ibf", insert=[1])
                # The refusal did not wedge the fleet.
                result = await areconcile(
                    "127.0.0.1", fleet.port, "ibf", set(server_set),
                    options=options(0),
                )
                await fleet.adrain()
                return result

        result = asyncio.run(scenario())
        assert result.success and result.recovered == server_set


@needs_fleet
@pytest.mark.timeout(120)
class TestFleetRobustness:
    def test_garbage_and_partial_hellos_do_not_wedge_the_supervisor(self):
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 100))

        async def scenario():
            async with SyncFleet({"ibf": server_set}, workers=2, seed=SEED) as fleet:
                port = fleet.port

                def garbage():
                    with socket.create_connection(("127.0.0.1", port)) as sock:
                        sock.sendall(b"\xff" * 7)  # not even a full header

                def partial_hello():
                    hello = Hello("ibf", "bob", options_to_wire(options()),
                                  PeerStats().to_wire())
                    frame = pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0,
                                       hello.to_json())
                    with socket.create_connection(("127.0.0.1", port)) as sock:
                        sock.sendall(frame[: len(frame) // 2])

                await asyncio.to_thread(garbage)
                await asyncio.to_thread(partial_hello)
                result = await areconcile(
                    "127.0.0.1", port, "ibf", set(server_set), options=options(0)
                )
                await fleet.adrain()
                return result

        result = asyncio.run(scenario())
        assert result.success and result.recovered == server_set

    def test_drain_reports_totals_and_refuses_new_connections(self):
        rng = random.Random(SEED)
        server_set = set(rng.sample(range(UNIVERSE), 100))

        async def scenario():
            fleet = SyncFleet({"ibf": server_set}, workers=2, seed=SEED)
            await fleet.start()
            port = fleet.port
            result = await areconcile(
                "127.0.0.1", port, "ibf", set(server_set), options=options(0)
            )
            assert result.success
            summary = await fleet.adrain()
            with pytest.raises((ConnectionError, OSError)):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.close()
            return summary

        summary = asyncio.run(scenario())
        assert set(summary) == {"drained", "aborted"}
        assert summary["aborted"] == 0  # nothing was in flight


class TestMetricsMerge:
    def test_merged_worker_snapshots_equal_single_server_totals(self):
        """The satellite pin: splitting one workload across N metrics
        instances and merging the snapshots gives exactly the totals a
        single instance would have recorded."""
        single = ServiceMetrics()
        parts = [ServiceMetrics() for _ in range(3)]

        # Spread 30 varied records across the three "workers" while
        # recording the same stream into the single instance.
        rng = random.Random(SEED)
        for index in range(30):
            worker = parts[rng.randrange(3)]
            record = SessionRecord(
                protocol=("ibf", "cpi")[index % 2],
                role="alice",
                success=index % 5 != 0,
                rounds=1 + index % 3,
                messages=2 + index % 3,
                bits_charged=100 + index,
                wire_bytes_sent=200 + index,
                wire_bytes_received=150 + index,
                attempts=1 + index % 2,
            )
            for metrics in (single, worker):
                metrics.record_session(record)
            if index % 4 == 0:
                for metrics in (single, worker):
                    metrics.record_shed("rate-limited" if index % 8 else "at-capacity")
                    metrics.record_dispatch()

        merged = ServiceMetrics()
        for part in parts:
            merged.merge(part.snapshot())

        assert merged.snapshot() == single.snapshot()
        assert merged.report()["by_protocol"] == single.report()["by_protocol"]

    def test_snapshot_covers_every_counter_field(self):
        """Adding a counter to ServiceMetrics without making it mergeable
        would silently under-report fleet totals -- pin the derivation."""
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot()
        assert set(MERGEABLE_COUNTERS) <= set(snapshot)
        assert "by_protocol" in snapshot
        assert "sessions_served" in MERGEABLE_COUNTERS
        assert "sessions_shed_rate" in MERGEABLE_COUNTERS
        assert "worker_restarts" in MERGEABLE_COUNTERS
