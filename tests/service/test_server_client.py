"""The asyncio sync server and aclient API, including the acceptance pin:
one server, >= 64 concurrent client sessions across >= 3 registered
protocols, every recovery byte-identical to an in-memory session."""

import asyncio
import json
import random
import socket
import threading

import pytest

import repro
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ReconciliationError, ServiceError
from repro.estimator import StrataEstimator
from repro.protocols import SocketTransport, pack_frame, read_frame, run_party
from repro.protocols.options import ReconcileOptions
from repro.protocols.registry import get
from repro.protocols.transports import FRAME_CONTROL
from repro.service import (
    SyncServer,
    afetch_stats,
    areconcile,
    reconcile_with_server,
)
from repro.service.hello import ACK_LABEL, HELLO_LABEL, Hello, PeerStats, parse_ack
from repro.service.hello import placeholder_input

UNIVERSE = 1 << 20
SEED = 2018


def make_server_data(rng):
    server_set = set(rng.sample(range(UNIVERSE), 400))
    children = [frozenset(rng.sample(range(UNIVERSE), 6)) for _ in range(50)]
    return server_set, SetOfSets(children)


def perturb_set(base, rng, deletions=3, insertions=3):
    mutated = set(base)
    for element in rng.sample(sorted(base), deletions):
        mutated.discard(element)
    while insertions:
        element = rng.randrange(UNIVERSE)
        if element not in base:
            mutated.add(element)
            insertions -= 1
    return mutated


def perturb_sos(base, rng, touched=2):
    children = [set(child) for child in sorted(base.children, key=sorted)]
    for index in rng.sample(range(len(children)), touched):
        children[index].add(rng.randrange(UNIVERSE))
    return SetOfSets(children)


def run_async(coroutine):
    return asyncio.run(coroutine)


@pytest.mark.timeout(180)
def test_64_concurrent_sessions_across_three_protocols_match_in_memory():
    """The tentpole acceptance pin."""
    rng = random.Random(SEED)
    server_set, server_sos = make_server_data(rng)
    datasets = {"ibf": server_set, "cpi": server_set, "multiround": server_sos}
    protocols = ["ibf", "cpi", "multiround"]

    async def scenario():
        async with SyncServer(datasets) as server:
            port = server.port

            async def one_client(client_id):
                protocol = protocols[client_id % len(protocols)]
                crng = random.Random(SEED + client_id)
                if protocol == "multiround":
                    mine = perturb_sos(server_sos, crng)
                else:
                    mine = perturb_set(server_set, crng)
                options = ReconcileOptions(
                    seed=SEED + client_id,
                    universe_size=UNIVERSE,
                    difference_bound=12,
                )
                result = await areconcile(
                    "127.0.0.1", port, protocol, mine, options=options
                )
                reference = repro.reconcile(
                    datasets[protocol], mine, protocol=protocol, options=options
                )
                assert result.success, (client_id, protocol)
                assert result.recovered == datasets[protocol]
                assert result.recovered == reference.recovered
                assert result.total_bits == reference.total_bits
                assert result.num_rounds == reference.num_rounds
                return protocol

            served = await asyncio.gather(*(one_client(i) for i in range(64)))
            stats = await afetch_stats("127.0.0.1", port)
            return served, stats

    served, stats = run_async(scenario())
    assert len(served) == 64
    assert len(set(served)) == 3
    assert stats["sessions_served"] == 64
    assert stats["sessions_failed"] == 0
    assert set(stats["by_protocol"]) == {"ibf", "cpi", "multiround"}
    # Raw wire bytes include uncharged frame headers, so they exceed the
    # charged payload bytes -- and the report quantifies the overhead.
    assert stats["wire_overhead_bytes"] > 0


@pytest.mark.timeout(60)
def test_client_pushing_as_alice_succeeds():
    rng = random.Random(SEED + 1)
    server_set, _ = make_server_data(rng)
    mine = perturb_set(server_set, rng)

    async def scenario():
        async with SyncServer({"ibf": server_set}) as server:
            result = await areconcile(
                "127.0.0.1", server.port, "ibf", mine,
                role="alice", seed=3, universe_size=UNIVERSE, difference_bound=12,
            )
            return result, await afetch_stats("127.0.0.1", server.port)

    result, stats = run_async(scenario())
    # Alice's side has nothing to recover; the server (bob) did the work.
    assert result.success and result.recovered is None
    assert stats["sessions_served"] == 1


@pytest.mark.timeout(60)
def test_set_of_sets_stats_are_negotiated_not_guessed():
    """Client and server child-size maxima differ; the handshake exchanges
    the public statistics so both build the same shared context."""
    rng = random.Random(SEED + 2)
    server_sos = SetOfSets(
        [frozenset(rng.sample(range(UNIVERSE), 4)) for _ in range(30)]
    )
    client_children = [set(child) for child in sorted(server_sos.children, key=sorted)]
    client_children[0] |= set(rng.sample(range(UNIVERSE), 7))  # much bigger child
    client_sos = SetOfSets(client_children)
    options = ReconcileOptions(
        seed=SEED, universe_size=UNIVERSE, difference_bound=8
    )

    async def scenario():
        async with SyncServer({"multiround": server_sos}) as server:
            return await areconcile(
                "127.0.0.1", server.port, "multiround", client_sos, options=options
            )

    result = run_async(scenario())
    reference = repro.reconcile(
        server_sos, client_sos, protocol="multiround", options=options
    )
    assert result.success
    assert result.recovered == server_sos == reference.recovered
    assert result.total_bits == reference.total_bits


@pytest.mark.timeout(60)
def test_negotiation_failures_raise_service_error():
    from repro.errors import ParameterError

    async def raw_hello(port, payload):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0, payload))
            await writer.drain()
            from repro.service.transport import AsyncSocketTransport

            return await AsyncSocketTransport(reader, writer, "bob").receive_frame()
        finally:
            writer.close()
            await writer.wait_closed()

    async def scenario():
        async with SyncServer({"ibf": {1, 2, 3}}) as server:
            port = server.port
            # Unknown protocol: caught client-side by the registry lookup ...
            with pytest.raises(ParameterError, match="unknown protocol"):
                await areconcile("127.0.0.1", port, "nonsense", {1},
                                 universe_size=UNIVERSE)
            # ... and refused server-side for a hand-rolled hello.
            ack = await raw_hello(
                port,
                Hello("nonsense", "bob", {}, None).to_json(),
            )
            with pytest.raises(ServiceError, match="unknown protocol"):
                parse_ack(ack.payload)
            with pytest.raises(ServiceError, match="no dataset"):
                await areconcile("127.0.0.1", port, "cpi", {1},
                                 universe_size=UNIVERSE, difference_bound=2)
            with pytest.raises(ServiceError, match="not wire-serializable"):
                await areconcile(
                    "127.0.0.1", port, "ibf", {1},
                    universe_size=UNIVERSE,
                    estimator_factory=StrataEstimator,
                )
            # Garbage hello payloads are refused, not crashed on.
            ack = await raw_hello(port, b"\xff not json")
            with pytest.raises(ServiceError, match="refused"):
                parse_ack(ack.payload)
            return await afetch_stats("127.0.0.1", port)

    stats = run_async(scenario())
    assert stats["rejected_hellos"] >= 2
    assert stats["sessions_served"] == 0


@pytest.mark.timeout(60)
def test_misconfigured_dataset_is_refused_at_hello():
    """A dataset of the wrong type refuses cleanly instead of escaping as an
    AttributeError after a successful ack."""

    async def scenario():
        async with SyncServer(
            {"multiround": {1, 2, 3}, "ibf": SetOfSets([[1]])}
        ) as server:
            with pytest.raises(ServiceError, match="cannot feed"):
                await areconcile(
                    "127.0.0.1", server.port, "multiround", SetOfSets([[1]]),
                    universe_size=UNIVERSE, difference_bound=2,
                )
            with pytest.raises(ServiceError, match="cannot feed"):
                await areconcile(
                    "127.0.0.1", server.port, "ibf", {1},
                    universe_size=UNIVERSE, difference_bound=2,
                )
            return await afetch_stats("127.0.0.1", server.port)

    stats = run_async(scenario())
    assert stats["rejected_hellos"] == 2


@pytest.mark.timeout(60)
def test_graph_protocols_are_refused():
    async def scenario():
        async with SyncServer({"exhaustive": object()}) as server:
            with pytest.raises(ServiceError, match="input kind"):
                await areconcile(
                    "127.0.0.1", server.port, "exhaustive", {1},
                    difference_bound=1,
                )

    run_async(scenario())


def test_placeholder_rejects_unserved_kinds():
    with pytest.raises(ServiceError, match="not served"):
        placeholder_input("graph", PeerStats())


@pytest.mark.timeout(60)
def test_server_survives_a_mid_session_client_crash():
    """A client vanishing mid-session is a recorded failure, not a dead server."""
    rng = random.Random(SEED + 3)
    server_set, _ = make_server_data(rng)

    async def scenario():
        async with SyncServer({"ibf": server_set}) as server:
            port = server.port
            # Handshake, then sever the connection before any session frame.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            hello = Hello(
                "ibf", "bob",
                {"universe_size": UNIVERSE, "difference_bound": None, "seed": 1},
                PeerStats().to_wire(),
            )
            writer.write(pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0,
                                    hello.to_json()))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.2)  # let the handler finish recording

            # The server still serves a well-behaved client afterwards.
            mine = perturb_set(server_set, rng)
            result = await areconcile(
                "127.0.0.1", port, "ibf", mine,
                seed=5, universe_size=UNIVERSE, difference_bound=12,
            )
            stats = await afetch_stats("127.0.0.1", port)
            return result, stats

    result, stats = run_async(scenario())
    assert result.success and result.recovered == server_set
    assert stats["sessions_failed"] == 1
    assert stats["sessions_served"] == 1


@pytest.mark.timeout(60)
def test_blocking_socket_client_interoperates_with_async_server():
    """The frame format really is shared: a blocking SocketTransport client
    (hello sent by hand) completes a session against the asyncio server."""
    rng = random.Random(SEED + 4)
    server_set, _ = make_server_data(rng)
    mine = perturb_set(server_set, rng)
    options = ReconcileOptions(seed=7, universe_size=UNIVERSE, difference_bound=12)
    started = threading.Event()
    box = {}

    def serve():
        async def body():
            async with SyncServer({"ibf": server_set}) as server:
                box["port"] = server.port
                started.set()
                await asyncio.sleep(5)  # long enough for the one client

        asyncio.run(body())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10)

    sock = socket.create_connection(("127.0.0.1", box["port"]), timeout=10)
    hello = Hello("ibf", "bob", {"seed": 7, "universe_size": UNIVERSE,
                                 "difference_bound": 12},
                  PeerStats().to_wire())
    sock.sendall(pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0, hello.to_json()))
    ack = read_frame(sock)
    assert ack.kind == FRAME_CONTROL and ack.label == ACK_LABEL
    acked_options, server_stats = parse_ack(ack.payload)

    spec = get("ibf")
    placeholder = placeholder_input(spec.input_kind, server_stats)
    _, bob_party = spec.build(placeholder, mine, acked_options)
    outcome, transcript = run_party(bob_party, SocketTransport(sock, "bob"))
    sock.close()
    assert outcome.success and outcome.recovered == server_set
    reference = repro.reconcile(server_set, mine, protocol="ibf", options=options)
    assert transcript.total_bits == reference.total_bits


@pytest.mark.timeout(60)
def test_blocking_wrapper_and_stats_json_shape():
    rng = random.Random(SEED + 5)
    server_set, _ = make_server_data(rng)
    mine = perturb_set(server_set, rng)
    started = threading.Event()
    box = {}

    def serve():
        async def body():
            async with SyncServer({"ibf": server_set}) as server:
                box["port"] = server.port
                started.set()
                await asyncio.sleep(5)

        asyncio.run(body())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10)

    result = reconcile_with_server(
        "127.0.0.1", box["port"], "ibf", mine,
        seed=9, universe_size=UNIVERSE, difference_bound=12,
    )
    assert result.success and result.recovered == server_set
    assert result.details["wire_bytes_sent"] > 0
    assert result.details["wire_bytes_received"] > 0

    from repro.service import fetch_stats_blocking

    stats = fetch_stats_blocking("127.0.0.1", box["port"])
    json.dumps(stats)  # the whole report must stay JSON-safe
    assert stats["sessions_served"] == 1
