"""The sharded reconciliation engine.

Pins the acceptance contract: sharded reconciliation of an ``n = 10^5`` set
with ``d = 512`` succeeds, and the merged transcript's bit accounting equals
the sum of the per-shard session transcripts *exactly* (property-tested over
random shard counts as well).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import Transcript
from repro.core.setsofsets.types import SetOfSets
from repro.db.table import BinaryTable
from repro.errors import ParameterError
from repro.hashing.mix import HAS_NUMPY
from repro.service import reconcile_sharded, shard_input, shard_of, split_shard
from repro.service.metrics import ServiceMetrics
from repro.service.sharding import (
    ShardPlan,
    ShardSession,
    merge_sessions,
    partition_set,
)
from repro.protocols.options import ReconcileOptions

UNIVERSE = 1 << 20
SEED = 2018


def planted_instance(rng, size, differences):
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), differences // 2):
        bob.discard(element)
    added = 0
    while added < differences - differences // 2:
        element = rng.randrange(UNIVERSE)
        if element not in alice:
            bob.add(element)
            added += 1
    return alice, bob


# ---------------------------------------------------------------------------
# Shard assignment
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0), st.integers(0, 10), st.integers(0, 2**64 - 1))
def test_shard_assignment_is_prefix_consistent(key, bits, seed):
    """Depth b+1 refines depth b: child index // 2 == parent index."""
    parent = shard_of(key, bits, seed)
    child = shard_of(key, bits + 1, seed)
    assert child // 2 == parent


def test_partition_set_covers_and_respects_shard_of():
    rng = random.Random(SEED)
    items = set(rng.sample(range(UNIVERSE), 3000))
    shards = partition_set(items, 4, SEED)
    assert len(shards) == 16
    assert set().union(*shards) == items
    assert sum(len(shard) for shard in shards) == len(items)
    for index, shard in enumerate(shards):
        for key in shard:
            assert shard_of(key, 4, SEED) == index


@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
def test_vectorized_partition_matches_scalar_for_wide_keys():
    """Keys over 64 bits force the scalar path; both paths must agree."""
    rng = random.Random(SEED + 1)
    narrow = [rng.randrange(1 << 60) for _ in range(500)]
    wide = [rng.randrange(1 << 90) for _ in range(10)]
    mixed = set(narrow) | set(wide)
    by_partition = partition_set(mixed, 3, SEED)
    for index, shard in enumerate(by_partition):
        for key in shard:
            assert shard_of(key, 3, SEED) == index


def test_split_shard_matches_full_repartition():
    rng = random.Random(SEED + 2)
    items = set(rng.sample(range(UNIVERSE), 2000))
    shards = partition_set(items, 2, SEED)
    deeper = partition_set(items, 3, SEED)
    for index, shard in enumerate(shards):
        left, right = split_shard(shard, 2, index, SEED)
        assert left == deeper[2 * index]
        assert right == deeper[2 * index + 1]


def test_split_shard_set_of_sets_and_table_round_trip():
    rng = random.Random(SEED + 3)
    children = [frozenset(rng.sample(range(UNIVERSE), 5)) for _ in range(100)]
    sos = SetOfSets(children)
    shards = shard_input(sos, 2, SEED)
    assert sum(shard.num_children for shard in shards) == sos.num_children
    merged = {child for shard in shards for child in shard.children}
    assert merged == sos.children

    columns = [f"c{i}" for i in range(20)]
    table = BinaryTable(
        columns, [frozenset(rng.sample(range(20), 3)) for _ in range(60)]
    )
    table_shards = shard_input(table, 1, SEED)
    assert {row for shard in table_shards for row in shard.rows()} == table.rows()
    for shard in table_shards:
        assert shard.columns == table.columns


def test_unshardable_input_raises():
    with pytest.raises(ParameterError, match="cannot shard"):
        shard_input([1, 2, 3], 1, SEED)


def test_shard_plan_validation():
    with pytest.raises(ParameterError):
        ShardPlan("ibf", 5, ReconcileOptions(), max_shard_bits=4)
    with pytest.raises(ParameterError):
        ShardPlan("ibf", 1, ReconcileOptions(), shard_safety=0.5)
    plan = ShardPlan("ibf", 3, ReconcileOptions(difference_bound=64))
    assert plan.shard_bound(3) == 16  # ceil(2.0 * 64 / 8)
    # Resplit children keep the parent depth's bound (capacity ratio doubles).
    assert plan.shard_bound(5) == plan.shard_bound(3)
    assert ShardPlan("ibf", 2, ReconcileOptions()).shard_bound(2) is None
    # Per-shard seeds differ by shard and depth.
    seeds = {plan.options_for(b, i).seed for b in (3, 4) for i in (0, 1)}
    assert len(seeds) == 4


# ---------------------------------------------------------------------------
# Merged accounting
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    shard_bits=st.integers(0, 4),
    size=st.integers(50, 250),
    differences=st.integers(2, 24),
    seed=st.integers(0, 2**20),
)
def test_merged_bits_equal_sum_of_shard_bits(shard_bits, size, differences, seed):
    """The acceptance property, over random shard counts and instances."""
    rng = random.Random(seed)
    alice, bob = planted_instance(rng, size, differences)
    result = reconcile_sharded(
        alice, bob,
        protocol="ibf",
        shard_bits=shard_bits,
        universe_size=UNIVERSE,
        difference_bound=differences,
        seed=seed,
    )
    assert result.success and result.recovered == alice
    per_shard = result.details["per_shard"]
    assert len(per_shard) >= (1 << shard_bits)
    assert result.total_bits == sum(entry["bits"] for entry in per_shard)
    assert result.transcript.num_rounds >= 1


def test_merge_sessions_transcript_is_exact_concatenation():
    transcripts = []
    sessions = []
    for index in range(4):
        transcript = Transcript()
        transcript.send("alice", "payload", 100 + index)
        transcript.send("bob", "reply", 10 * index)
        transcripts.append(transcript)
        sessions.append(
            ShardSession(2, index, True, {index}, transcript, attempts=1)
        )
    merged = merge_sessions(sessions, set())
    assert merged.success and merged.recovered == {0, 1, 2, 3}
    assert merged.total_bits == sum(t.total_bits for t in transcripts)
    assert len(merged.transcript) == sum(len(t) for t in transcripts)
    assert merged.attempts == 4


@pytest.mark.timeout(300)
def test_acceptance_n_1e5_d_512_exact_aggregate_accounting():
    """The headline acceptance pin: n = 10^5, d = 512, sharded."""
    rng = random.Random(SEED)
    alice, bob = planted_instance(rng, 100_000, 512)
    result = reconcile_sharded(
        alice, bob,
        protocol="ibf",
        shard_bits=4,
        universe_size=UNIVERSE,
        difference_bound=512,
        seed=SEED,
    )
    assert result.success
    assert result.recovered == alice
    per_shard = result.details["per_shard"]
    assert len(per_shard) >= 16
    assert result.total_bits == sum(entry["bits"] for entry in per_shard)


# ---------------------------------------------------------------------------
# Failure recovery and execution modes
# ---------------------------------------------------------------------------


@pytest.mark.timeout(120)
def test_decode_failure_resplits_instead_of_failing():
    rng = random.Random(SEED + 4)
    alice, bob = planted_instance(rng, 5000, 160)
    metrics = ServiceMetrics()
    # Bound 20 at one-bit sharding is far below the ~80 per-shard truth:
    # the initial shards must fail and recovery must come from resplits.
    result = reconcile_sharded(
        alice, bob,
        protocol="ibf",
        shard_bits=1,
        universe_size=UNIVERSE,
        difference_bound=20,
        shard_safety=1.0,
        seed=SEED,
        metrics=metrics,
    )
    assert result.success and result.recovered == alice
    assert result.details["resplits"] >= 1
    assert metrics.shard_resplits == result.details["resplits"]
    assert metrics.shard_sessions == result.details["sessions"]
    assert result.total_bits == sum(
        entry["bits"] for entry in result.details["per_shard"]
    )


@pytest.mark.timeout(120)
def test_terminal_failure_at_max_shard_bits_is_reported():
    rng = random.Random(SEED + 5)
    alice, bob = planted_instance(rng, 2000, 64)
    result = reconcile_sharded(
        alice, bob,
        protocol="cpi",  # CPI cannot succeed above its bound; no peel luck
        shard_bits=1,
        max_shard_bits=2,
        universe_size=UNIVERSE,
        difference_bound=4,
        shard_safety=1.0,
        seed=SEED,
    )
    assert not result.success
    assert result.recovered is None
    assert result.details["failed_shards"]
    assert all(
        entry["shard_bits"] == 2 for entry in result.details["failed_shards"]
    )
    # Accounting still holds for the failed run: every session's bits count.
    assert result.total_bits == sum(
        entry["bits"] for entry in result.details["per_shard"]
    )


@pytest.mark.timeout(300)
def test_process_pool_matches_serial_execution():
    rng = random.Random(SEED + 6)
    alice, bob = planted_instance(rng, 3000, 96)
    kwargs = dict(
        protocol="cpi",
        shard_bits=3,
        universe_size=UNIVERSE,
        difference_bound=96,
        seed=SEED,
    )
    serial = reconcile_sharded(alice, bob, **kwargs)
    pooled = reconcile_sharded(alice, bob, processes=2, **kwargs)
    assert serial.success and pooled.success
    assert serial.recovered == pooled.recovered == alice
    assert serial.total_bits == pooled.total_bits
    assert serial.details["per_shard"] == pooled.details["per_shard"]


@pytest.mark.timeout(120)
def test_sharded_set_of_sets_and_table():
    # Content sharding sends the two versions of a modified child to
    # *different* shards, so each shard sees an unpartnered child; multiround
    # (like naive) pays per-child for exactly that case and stays robust.
    rng = random.Random(SEED + 7)
    children = [frozenset(rng.sample(range(UNIVERSE), 6)) for _ in range(200)]
    alice_sos = SetOfSets(children)
    bob_children = [set(child) for child in children]
    for index in rng.sample(range(len(children)), 3):
        bob_children[index].add(rng.randrange(UNIVERSE))
    result = reconcile_sharded(
        alice_sos, SetOfSets(bob_children),
        protocol="multiround",
        shard_bits=2,
        universe_size=UNIVERSE,
        difference_bound=6,
        seed=SEED,
    )
    assert result.success and result.recovered == alice_sos

    columns = [f"c{i}" for i in range(24)]
    rows = [frozenset(rng.sample(range(24), 4)) for _ in range(150)]
    alice_table = BinaryTable(columns, rows)
    bob_table = BinaryTable(columns, rows)
    flipped = next(iter(alice_table.rows()))
    bob_table.remove_row(flipped)
    bob_table.add_row((set(flipped) | {23}) - {min(flipped)})
    table_result = reconcile_sharded(
        alice_table, bob_table,
        protocol="db",
        shard_bits=1,
        difference_bound=4,
        seed=SEED,
    )
    assert table_result.success
    assert table_result.recovered.rows() == alice_table.rows()


@pytest.mark.timeout(180)
def test_network_sharded_sync_matches_local_engine():
    """areconcile_sharded over a real server == reconcile_sharded in memory."""
    import asyncio

    from repro.service import SyncServer, areconcile_sharded

    rng = random.Random(SEED + 8)
    alice, bob = planted_instance(rng, 4000, 64)
    options = ReconcileOptions(
        seed=SEED, universe_size=UNIVERSE, difference_bound=64
    )
    local = reconcile_sharded(alice, bob, protocol="ibf", shard_bits=3,
                              options=options)

    async def scenario():
        async with SyncServer({"ibf": alice}) as server:
            return await areconcile_sharded(
                "127.0.0.1", server.port, "ibf", bob,
                shard_bits=3, options=options,
            )

    networked = asyncio.run(scenario())
    assert networked.success and local.success
    assert networked.recovered == local.recovered == alice
    assert networked.total_bits == local.total_bits
    assert networked.details["per_shard"] == local.details["per_shard"]
