"""The asyncio transport: shared frame format, clean failures, byte counters."""

import asyncio
import random

import pytest

import repro
from repro.errors import ReconciliationError, ReproError
from repro.protocols import PartyOutcome, Receive, Send
from repro.protocols.options import ReconcileOptions
from repro.protocols.parties.setrecon import SetReconContext, ibf_parties
from repro.protocols.transports import FRAME_CONTROL, FRAME_HEADER, FRAME_MESSAGE
from repro.protocols.wire import PayloadCodec
from repro.service.transport import AsyncSocketTransport, run_party_async

UNIVERSE = 1 << 20
SEED = 2018


class WordCodec(PayloadCodec):
    def write(self, writer, payload):
        writer.write(payload, 64)

    def read(self, reader):
        return reader.read(64)


async def paired_transports():
    """Two AsyncSocketTransports joined by a real localhost TCP connection."""
    accepted = asyncio.get_running_loop().create_future()

    async def on_connect(reader, writer):
        accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    client_reader, client_writer = await asyncio.open_connection("127.0.0.1", port)
    server_reader, server_writer = await accepted
    alice = AsyncSocketTransport(client_reader, client_writer, "alice")
    bob = AsyncSocketTransport(server_reader, server_writer, "bob")
    return alice, bob, server


@pytest.mark.timeout(60)
def test_async_session_matches_in_memory_session():
    rng = random.Random(SEED)
    alice_set = set(rng.sample(range(UNIVERSE), 300))
    bob_set = (alice_set - set(list(alice_set)[:4])) | {UNIVERSE - 1}
    options = ReconcileOptions(seed=SEED, universe_size=UNIVERSE)
    reference = repro.reconcile(
        alice_set, bob_set, protocol="ibf", options=options
    )

    async def scenario():
        alice_t, bob_t, server = await paired_transports()
        ctx = SetReconContext(UNIVERSE, SEED)
        alice_party, _ = ibf_parties(alice_set, set(), None, ctx)
        _, bob_party = ibf_parties(set(), bob_set, None, ctx)
        (alice_done, bob_done) = await asyncio.gather(
            run_party_async(alice_party, alice_t),
            run_party_async(bob_party, bob_t),
        )
        counters = (
            alice_t.bytes_sent, alice_t.bytes_received,
            bob_t.bytes_sent, bob_t.bytes_received,
        )
        await alice_t.aclose()
        await bob_t.aclose()
        server.close()
        await server.wait_closed()
        return alice_done, bob_done, counters

    (alice_outcome, alice_transcript), (bob_outcome, bob_transcript), counters = (
        asyncio.run(scenario())
    )
    assert bob_outcome.success and bob_outcome.recovered == alice_set
    assert bob_outcome.recovered == reference.recovered
    # Both endpoints rebuild the same transcript, matching the in-memory run.
    meta = lambda t: [(m.sender, m.label, m.size_bits) for m in t.messages]
    assert meta(alice_transcript) == meta(bob_transcript)
    assert meta(bob_transcript) == meta(reference.transcript)
    # Nothing is received that was not sent (a trailing FIN may go unread by
    # a peer whose party already finished).
    assert 0 < counters[3] <= counters[0]
    assert 0 < counters[1] <= counters[2]


@pytest.mark.timeout(60)
def test_peer_vanishing_mid_frame_raises_cleanly():
    async def scenario():
        alice_t, bob_t, server = await paired_transports()
        # Alice writes half a header and disappears.
        alice_t.writer.write(FRAME_HEADER.pack(FRAME_MESSAGE, 0, 0, 0, 8)[:6])
        await alice_t.writer.drain()
        await alice_t.aclose()
        try:
            with pytest.raises(ReconciliationError, match="mid-frame"):
                await bob_t.receive_frame()
        finally:
            await bob_t.aclose()
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


@pytest.mark.timeout(60)
def test_crashing_party_sends_fin_and_peer_aborts():
    async def scenario():
        alice_t, bob_t, server = await paired_transports()

        def crashing():
            yield Send("word", 64, payload=3, codec=WordCodec())
            raise ReproError("async crash")

        def patient():
            first = yield Receive(WordCodec())
            second = yield Receive(WordCodec())
            from repro.protocols import END_OF_SESSION

            return PartyOutcome(second is not END_OF_SESSION)

        async def run_alice():
            with pytest.raises(ReproError, match="async crash"):
                await run_party_async(crashing(), alice_t)

        alice_result, (bob_outcome, bob_transcript) = await asyncio.gather(
            run_alice(), run_party_async(patient(), bob_t)
        )
        await alice_t.aclose()
        await bob_t.aclose()
        server.close()
        await server.wait_closed()
        return bob_outcome, bob_transcript

    bob_outcome, bob_transcript = asyncio.run(scenario())
    assert not bob_outcome.success  # aborted on END_OF_SESSION, no hang
    assert bob_transcript.total_bits == 64


@pytest.mark.timeout(60)
def test_unexpected_control_frame_mid_session_is_an_error():
    async def scenario():
        alice_t, bob_t, server = await paired_transports()
        await alice_t.send_frame(FRAME_CONTROL, "bogus", payload=b"{}")
        try:
            with pytest.raises(ReconciliationError, match="unexpected frame kind"):
                await bob_t.receive_message()
        finally:
            await alice_t.aclose()
            await bob_t.aclose()
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())
