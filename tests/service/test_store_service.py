"""The store-backed server: syncs answered from live sketches, mutate
control frames, anti-entropy snapshots, and identical results vs a
storeless server."""

import asyncio
import random

import pytest

from repro.errors import ServiceError
from repro.protocols.options import ReconcileOptions
from repro.service import SyncServer, afetch_stats, amutate, areconcile
from repro.store import SketchStore

UNIVERSE = 1 << 20
SEED = 2018


def make_sets(differences=8):
    rng = random.Random(SEED)
    server_set = set(rng.sample(range(UNIVERSE), 400))
    client_set = set(server_set)
    for element in rng.sample(sorted(server_set), differences // 2):
        client_set.discard(element)
    added = 0
    while added < differences - differences // 2:
        element = rng.randrange(UNIVERSE)
        if element not in server_set and element not in client_set:
            client_set.add(element)
            added += 1
    return server_set, client_set


def options(difference_bound=16):
    return ReconcileOptions(
        seed=SEED, universe_size=UNIVERSE, difference_bound=difference_bound
    )


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.mark.timeout(120)
def test_store_backed_sync_matches_storeless_server():
    server_set, client_set = make_sets()

    async def scenario():
        async with SyncServer({"ibf": set(server_set)}) as plain:
            reference = await areconcile(
                "127.0.0.1", plain.port, "ibf", client_set, options=options()
            )
        store = SketchStore()
        async with SyncServer({"ibf": set(server_set)}, store=store) as served:
            first = await areconcile(
                "127.0.0.1", served.port, "ibf", client_set, options=options()
            )
            second = await areconcile(
                "127.0.0.1", served.port, "ibf", client_set, options=options()
            )
            report = await afetch_stats("127.0.0.1", served.port)
        for result in (first, second):
            assert result.success
            assert result.recovered == reference.recovered == server_set
            assert result.total_bits == reference.total_bits
            assert result.num_rounds == reference.num_rounds
        # First session encodes (miss), the second serves the live table.
        assert report["store"]["misses"] >= 1
        assert report["store"]["hits"] >= 1

    run(scenario())


@pytest.mark.timeout(120)
def test_unknown_d_sync_through_the_store():
    server_set, client_set = make_sets()

    async def scenario():
        store = SketchStore()
        async with SyncServer({"ibf": set(server_set)}, store=store) as server:
            result = await areconcile(
                "127.0.0.1", server.port, "ibf", client_set,
                options=options(difference_bound=None),
            )
            assert result.success
            assert result.recovered == server_set

    run(scenario())


@pytest.mark.timeout(120)
def test_mutate_updates_dataset_and_sketches_end_to_end():
    server_set, client_set = make_sets()

    async def scenario():
        dataset = set(server_set)
        store = SketchStore()
        async with SyncServer({"ibf": dataset}, store=store) as server:
            port = server.port
            first = await areconcile(
                "127.0.0.1", port, "ibf", client_set, options=options()
            )
            assert first.recovered == server_set

            fresh = [k for k in range(UNIVERSE - 10, UNIVERSE) if k not in dataset][:4]
            victims = sorted(dataset)[:2]
            ack = await amutate(
                "127.0.0.1", port, "ibf", insert=fresh, delete=victims
            )
            assert ack["inserted"] == 4 and ack["deleted"] == 2
            assert ack["size"] == len(server_set) + 2

            # Re-inserting present keys / deleting absent keys is a no-op.
            again = await amutate(
                "127.0.0.1", port, "ibf", insert=fresh, delete=victims
            )
            assert again == {"inserted": 0, "deleted": 0, "size": ack["size"]}

            second = await areconcile(
                "127.0.0.1", port, "ibf", client_set, options=options()
            )
            expected = (set(server_set) - set(victims)) | set(fresh)
            assert second.success
            assert second.recovered == expected == dataset

            report = await afetch_stats("127.0.0.1", port)
            assert report["mutations"]["applied"] == 2
            assert report["mutations"]["keys_inserted"] == 4
            assert report["mutations"]["keys_deleted"] == 2

    run(scenario())


@pytest.mark.timeout(120)
def test_mutate_refusals():
    server_set, _ = make_sets()

    async def scenario():
        store = SketchStore()
        datasets = {"ibf": set(server_set), "cpi": frozenset(server_set)}
        async with SyncServer(datasets, store=store) as server:
            port = server.port
            with pytest.raises(ServiceError, match="no dataset"):
                await amutate("127.0.0.1", port, "nope", insert=[1])
            with pytest.raises(ServiceError, match="frozenset"):
                await amutate("127.0.0.1", port, "cpi", insert=[1])
            with pytest.raises(ServiceError, match="overlap"):
                await amutate("127.0.0.1", port, "ibf", insert=[1], delete=[1])
            report = await afetch_stats("127.0.0.1", port)
            assert report["mutations"]["rejected"] == 3

        async with SyncServer({"ibf": set(server_set)}) as storeless:
            with pytest.raises(ServiceError, match="no sketch store"):
                await amutate("127.0.0.1", storeless.port, "ibf", insert=[1])

    run(scenario())


@pytest.mark.timeout(120)
def test_anti_entropy_snapshots_mutated_datasets(tmp_path):
    server_set, _ = make_sets()

    async def scenario():
        store = SketchStore(tmp_path)
        async with SyncServer(
            {"ibf": set(server_set)}, store=store, anti_entropy_interval=0.05
        ) as server:
            await amutate(
                "127.0.0.1", server.port, "ibf", insert=[UNIVERSE - 1]
            )
            for _ in range(100):
                await asyncio.sleep(0.05)
                if not store.is_dirty("ibf"):
                    break
            report = await afetch_stats("127.0.0.1", server.port)
            assert report["store"]["snapshots_written"] >= 1
            assert report["store"]["anti_entropy_cycles"] >= 1
        assert not store.is_dirty("ibf")
        assert (tmp_path / "ibf.snapshot.json").exists()

    run(scenario())


def test_anti_entropy_requires_a_durable_store():
    with pytest.raises(ServiceError, match="durable"):
        SyncServer({"ibf": set()}, anti_entropy_interval=1.0)
    with pytest.raises(ServiceError, match="durable"):
        SyncServer({"ibf": set()}, store=SketchStore(), anti_entropy_interval=1.0)


@pytest.mark.timeout(120)
def test_sharded_sessions_bypass_the_store():
    """Shards are ephemeral subsets: they must not poison the live sketches."""
    from repro.service import areconcile_sharded

    server_set, client_set = make_sets()

    async def scenario():
        store = SketchStore()
        async with SyncServer({"ibf": set(server_set)}, store=store) as server:
            result = await areconcile_sharded(
                "127.0.0.1", server.port, "ibf", client_set,
                shard_bits=2, options=options(difference_bound=None),
            )
            assert result.success
            assert result.recovered == server_set
            # A later unsharded sync still serves correct bytes.
            follow_up = await areconcile(
                "127.0.0.1", server.port, "ibf", client_set, options=options()
            )
            assert follow_up.success and follow_up.recovered == server_set

    run(scenario())
