"""Graceful drain: a shutting-down server stops accepting, finishes
in-flight sessions within a deadline, and counts the drained/aborted split."""

import asyncio
import random

import pytest

from repro.errors import ReconciliationError, ServiceError
from repro.protocols.options import ReconcileOptions
from repro.service import SyncServer, areconcile

UNIVERSE = 1 << 20
SEED = 2018
LATENCY = 0.05  # per-frame delay keeps sessions in flight while we drain


def make_sets(num_clients=8):
    rng = random.Random(SEED)
    server_set = set(rng.sample(range(UNIVERSE), 300))
    clients = []
    for _ in range(num_clients):
        mine = set(server_set)
        mine.add(rng.randrange(UNIVERSE))
        clients.append(mine)
    return server_set, clients


def options(client_id):
    return ReconcileOptions(
        seed=SEED + client_id, universe_size=UNIVERSE, difference_bound=8
    )


@pytest.mark.timeout(120)
def test_drain_finishes_in_flight_sessions():
    server_set, clients = make_sets()

    async def scenario():
        server = SyncServer({"ibf": server_set}, latency=LATENCY)
        await server.start()
        port = server.port

        async def one(client_id, mine):
            result = await areconcile(
                "127.0.0.1", port, "ibf", mine,
                options=options(client_id), latency=LATENCY,
            )
            assert result.success and result.recovered == server_set

        burst = [asyncio.create_task(one(i, c)) for i, c in enumerate(clients)]
        await asyncio.sleep(LATENCY)  # let every session get in flight
        summary = await server.adrain(deadline=30.0)
        assert summary == {"drained": len(clients), "aborted": 0}
        assert server.metrics.sessions_drained == len(clients)
        assert server.metrics.sessions_aborted == 0
        await asyncio.gather(*burst)  # every client completed successfully

        # The listener is closed: new connections are refused.
        with pytest.raises(ServiceError):
            await areconcile(
                "127.0.0.1", port, "ibf", clients[0], options=options(0)
            )

    asyncio.run(scenario())


@pytest.mark.timeout(120)
def test_zero_deadline_aborts_in_flight_sessions():
    server_set, clients = make_sets(4)

    async def scenario():
        server = SyncServer({"ibf": server_set}, latency=LATENCY)
        await server.start()
        port = server.port

        async def one(client_id, mine):
            return await areconcile(
                "127.0.0.1", port, "ibf", mine,
                options=options(client_id), latency=LATENCY,
            )

        burst = [asyncio.create_task(one(i, c)) for i, c in enumerate(clients)]
        await asyncio.sleep(LATENCY)
        summary = await server.adrain(deadline=0)
        assert summary["aborted"] >= 1
        assert server.metrics.sessions_aborted == summary["aborted"]
        outcomes = await asyncio.gather(*burst, return_exceptions=True)
        failures = [
            outcome
            for outcome in outcomes
            if isinstance(outcome, (ReconciliationError, ServiceError))
        ]
        assert len(failures) >= summary["aborted"]

    asyncio.run(scenario())


@pytest.mark.timeout(120)
def test_aclose_drains_by_default():
    server_set, clients = make_sets(2)

    async def scenario():
        async with SyncServer(
            {"ibf": server_set}, latency=LATENCY, drain_deadline=30.0
        ) as server:
            port = server.port
            burst = [
                asyncio.create_task(
                    areconcile(
                        "127.0.0.1", port, "ibf", mine,
                        options=options(i), latency=LATENCY,
                    )
                )
                for i, mine in enumerate(clients)
            ]
            await asyncio.sleep(LATENCY)
        # __aexit__ ran aclose -> adrain: the burst finished cleanly.
        results = await asyncio.gather(*burst)
        assert all(result.success for result in results)
        assert server.metrics.sessions_drained == len(clients)

    asyncio.run(scenario())
