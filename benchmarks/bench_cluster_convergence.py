"""Cluster convergence: anti-entropy gossip vs full-state exchange.

For N in {4, 8, 16}, every node of a fresh cluster starts from a large
shared keyspace plus a planted per-node delta (its own unsynced local
writes).  Two identically scheduled runs then gossip to byte-identical
convergence:

* **gossip** -- each pairwise round is one ``kv`` session: stored-sketch
  IBLT reconciliation over the record fingerprints, then a value fetch of
  only the differing records, so a round costs O(d) bits;
* **full** -- the classic baseline: both sides ship their entire record
  list every round, O(n) bits per round.

Both modes run under the same deterministic scheduler, merge, and
convergence detection, and both totals are exact sums of per-session
charged bits (the gossip side's from real session transcripts), so the
``speedup`` column is a pure wire-cost ratio at equal convergence.

Run under pytest (the ``--smoke`` shape is the CI check), or standalone::

    PYTHONPATH=src python benchmarks/bench_cluster_convergence.py

which also rewrites ``BENCH_cluster.json`` at the repository root.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.cluster import Cluster
from repro.workloads.cluster import planted_cluster_writes

NODE_COUNTS = (4, 8, 16)
SHARED_KEYS = 400  # converged keyspace every node starts from
DELTA_WRITES = 6  # planted per-node unsynced writes
DIFFERENCE_BOUND = 64
SPEEDUP_FLOOR = 3.0  # recorded regression threshold; target is >= 10x at N=16
TARGET = 10.0


def build_cluster(num_nodes: int, seed: int, exchange: str) -> Cluster:
    cluster = Cluster(
        num_nodes,
        seed=seed,
        difference_bound=DIFFERENCE_BOUND,
        exchange=exchange,
    )
    shared, per_node = planted_cluster_writes(
        num_nodes, SHARED_KEYS, DELTA_WRITES, seed=seed
    )
    for name in cluster.node_names:
        cluster[name].merge_records(shared)
    for name, writes in zip(cluster.node_names, per_node):
        for key, value in writes:
            cluster.put(name, key, value)
    return cluster


def measure_row(num_nodes: int, seed: int) -> dict:
    gossip = build_cluster(num_nodes, seed, "gossip")
    gossip_report = gossip.run_until_converged()
    full = build_cluster(num_nodes, seed, "full")
    full_report = full.run_until_converged()
    assert gossip_report.converged and full_report.converged
    assert gossip_report.digest == full_report.digest, (
        "gossip and baseline converged to different states"
    )
    assert gossip_report.total_bits == sum(
        session.bits for session in gossip.metrics.sessions
    )
    return {
        "num_nodes": num_nodes,
        "shared_keys": SHARED_KEYS,
        "delta_writes_per_node": DELTA_WRITES,
        "gossip_rounds": gossip_report.rounds,
        "gossip_sessions": gossip_report.sessions,
        "gossip_bits": gossip_report.total_bits,
        "baseline_rounds": full_report.rounds,
        "baseline_bits": full_report.total_bits,
        "speedup": round(full_report.total_bits / gossip_report.total_bits, 2),
    }


def compare(seed: int = DEFAULT_SEED, node_counts=NODE_COUNTS) -> list[dict]:
    return [measure_row(num_nodes, seed) for num_nodes in node_counts]


# ---------------------------------------------------------------------------

import pytest


@pytest.mark.timeout(300)
def test_smoke_gossip_converges_and_beats_full_state():
    row = measure_row(4, DEFAULT_SEED)
    assert row["gossip_rounds"] >= 1
    assert row["speedup"] > 1.0, row


@pytest.mark.timeout(300)
def test_smoke_gossip_and_baseline_reach_the_same_state():
    # measure_row asserts digest equality internally; a clean return is the
    # check, this pin just keeps that assertion exercised in CI.
    row = measure_row(4, DEFAULT_SEED + 1)
    assert row["gossip_bits"] > 0 and row["baseline_bits"] > 0


def main() -> None:
    parser = benchmark_parser(
        "Anti-entropy gossip convergence vs full-state exchange",
        Path(__file__).resolve().parent.parent / "BENCH_cluster.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small shape for CI: N=4 only, no record written",
    )
    args = parser.parse_args()
    if args.smoke:
        rows = compare(seed=args.seed, node_counts=(4,))
        print(format_table(rows, title="cluster convergence (smoke)"))
        assert rows[0]["speedup"] > 1.0, rows[0]
        print("smoke ok")
        return
    rows = compare(seed=args.seed)
    print(format_table(rows, title="cluster convergence"))
    headline = rows[-1]
    if headline["speedup"] < TARGET:
        sys.exit(
            f"gossip speedup {headline['speedup']}x at N={headline['num_nodes']} "
            f"is below the {TARGET}x target"
        )
    write_benchmark_record(
        args.output,
        benchmark="bench_cluster_convergence",
        description=(
            "Bits to byte-identical convergence for an N-node replicated "
            "LWW KV store with a shared 400-key keyspace and 6 planted "
            "unsynced writes per node: anti-entropy gossip (kv sessions: "
            "stored-sketch IBLT reconciliation + value fetch, O(d) bits "
            "per round) vs the full-state-exchange baseline (both sides "
            "ship every record, O(n) bits per round), identical schedules"
        ),
        config=benchmark_config(
            args.seed,
            node_counts=list(NODE_COUNTS),
            shared_keys=SHARED_KEYS,
            delta_writes_per_node=DELTA_WRITES,
            difference_bound=DIFFERENCE_BOUND,
        ),
        speedup_floor=SPEEDUP_FLOOR,
        results=rows,
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
