"""E5 -- Theorem 3.1 / Appendix A: set-difference estimator ablation.

Paper claim: the L0-sketch estimator reports the difference within a constant
factor while being an O(log u) factor *smaller* than the strata estimator of
[14] and faster to merge/query.  The benchmark measures accuracy (ratio of
estimate to true difference) and sketch size for both estimators.
"""

import random
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.estimator import L0Estimator, StrataEstimator

TRUE_DIFFERENCES = (16, 128, 1024)
TITLE = "E5: set-difference estimators (accuracy and size)"


def _merged(factory, true_difference, seed):
    rng = random.Random(seed)
    shared = rng.sample(range(1 << 40), 4000)
    alice_only = rng.sample(range(1 << 40, 2 << 40), true_difference // 2)
    bob_only = rng.sample(range(2 << 40, 3 << 40), true_difference - true_difference // 2)
    alice = factory(31337)
    bob = factory(31337)
    alice.update_all(shared + alice_only, 1)
    bob.update_all(shared + bob_only, 2)
    return alice.merge(bob)


@pytest.mark.parametrize("factory", [L0Estimator, StrataEstimator], ids=["l0", "strata"])
def test_estimator_build_and_query(benchmark, factory):
    merged = _merged(factory, 256, seed=1)
    estimate = run_once(benchmark, merged.query)
    assert 256 / 8 <= estimate <= 256 * 8


def sweep(seed=0):
    rows = []
    for true_d in TRUE_DIFFERENCES:
        l0 = _merged(L0Estimator, true_d, seed=seed + true_d)
        strata = _merged(StrataEstimator, true_d, seed=seed + true_d)
        rows.append(
            {
                "true d": true_d,
                "l0 estimate": l0.query(),
                "strata estimate": strata.query(),
                "l0 bits": l0.size_bits,
                "strata bits": strata.size_bits,
            }
        )
    return rows


def test_estimator_accuracy_and_size_report(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    for row in rows:
        assert row["true d"] / 8 <= row["l0 estimate"] <= row["true d"] * 8
        assert row["true d"] / 8 <= row["strata estimate"] <= row["true d"] * 8
        # The headline claim: the paper's estimator is much smaller.
        assert row["l0 bits"] * 10 < row["strata bits"]


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_estimators",
            description="L0-sketch vs strata set-difference estimators: "
            "estimate accuracy and sketch size across true differences",
            config=benchmark_config(args.seed, true_differences=list(TRUE_DIFFERENCES)),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
