"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper artifacts listed in DESIGN.md's
experiment index (E1-E14).  Protocol-level benchmarks run each configuration
once per session (``benchmark.pedantic`` with a single round) because a
single protocol execution is already an aggregate measurement; micro
benchmarks (IBLT operations, estimators) use normal calibration.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
printed paper-style tables.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
