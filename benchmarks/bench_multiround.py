"""E7 -- Theorems 3.9 / 3.10: the multi-round protocol.

Paper claim: spending 3 rounds (4 when d is unknown) buys communication of
roughly O(d log u + d_hat log s + d_hat log h) -- the lowest of all the SSRK
protocols -- because payloads are sized per child from the estimated
per-child differences, with the characteristic-polynomial path handling the
very small ones.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.core.setsofsets import (
    reconcile_iblt_of_iblts,
    reconcile_multiround,
    reconcile_multiround_unknown,
)
from repro.workloads import table1_instance

UNIVERSE = 2048
NUM_CHILDREN = 64
DIFFERENCES = (4, 8, 16)
TITLE = "E7: multi-round protocol vs one-round flat protocol"


def test_multiround_known_d(benchmark):
    instance = table1_instance(UNIVERSE, NUM_CHILDREN, 8, seed=1, max_children_touched=4)
    result = run_once(
        benchmark,
        reconcile_multiround,
        instance.alice,
        instance.bob,
        instance.planted_difference,
        UNIVERSE,
        instance.max_child_size,
        7,
    )
    assert result.success and result.num_rounds == 3


def test_multiround_unknown_d(benchmark):
    instance = table1_instance(UNIVERSE, NUM_CHILDREN, 8, seed=2, max_children_touched=4)
    result = run_once(
        benchmark,
        reconcile_multiround_unknown,
        instance.alice,
        instance.bob,
        UNIVERSE,
        instance.max_child_size,
        9,
    )
    assert result.success and result.num_rounds == 4


def sweep(seed=0):
    rows = []
    for difference in DIFFERENCES:
        instance = table1_instance(
            UNIVERSE, NUM_CHILDREN, difference, seed=seed + difference,
            max_children_touched=max(1, difference // 2),
        )
        known = reconcile_multiround(
            instance.alice, instance.bob, instance.planted_difference,
            UNIVERSE, instance.max_child_size, seed=seed + 3,
        )
        unknown = reconcile_multiround_unknown(
            instance.alice, instance.bob, UNIVERSE, instance.max_child_size, seed=seed + 3
        )
        flat = reconcile_iblt_of_iblts(
            instance.alice, instance.bob, instance.planted_difference, UNIVERSE, seed=seed + 3
        )
        rows.append(
            {
                "d": difference,
                "known bits (3 rounds)": known.total_bits,
                "unknown bits (4 rounds)": unknown.total_bits,
                "one-round flat bits": flat.total_bits,
                "all ok": known.success and unknown.success and flat.success,
            }
        )
    return rows


def test_multiround_report(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["all ok"] for row in rows)
    # The extra rounds buy strictly less communication than the flat protocol.
    assert all(row["known bits (3 rounds)"] < row["one-round flat bits"] for row in rows)


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_multiround",
            description="Multi-round protocol (known and unknown d) vs the "
            "one-round flat IBLT-of-IBLTs protocol across differences",
            config=benchmark_config(
                args.seed,
                universe=UNIVERSE,
                num_children=NUM_CHILDREN,
                differences=list(DIFFERENCES),
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
