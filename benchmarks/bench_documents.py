"""E13 -- Section 1 application: document collection reconciliation.

The paper's shingling scenario: two collections sharing most documents
verbatim, a few near-duplicates and a few fresh documents.  The benchmark
measures the cost of reconciling the signature sets against shipping every
signature, and checks the near/fresh classification.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.core.setsofsets import reconcile_multiround
from repro.documents import DocumentCollection, classify_documents, reconcile_collections
from repro.workloads import edited_corpus_pair

NUM_DOCS = 120
SIGNATURE_SIZE = 32
TITLE = "E13: document collection reconciliation"


def _collections(seed=1):
    alice_texts, bob_texts = edited_corpus_pair(NUM_DOCS, 60, 3, 2, 2, seed)
    alice = DocumentCollection(alice_texts, 3, seed=seed, signature_size=SIGNATURE_SIZE)
    bob = DocumentCollection(bob_texts, 3, seed=seed, signature_size=SIGNATURE_SIZE)
    return alice, bob


def test_collection_reconciliation(benchmark):
    alice, bob = _collections()
    result = run_once(
        benchmark,
        reconcile_collections,
        alice,
        bob,
        2 * SIGNATURE_SIZE,
        9,
        differing_children_bound=12,
    )
    assert result.success and result.recovered == alice.to_sets_of_sets()


def report_rows(seed=2):
    alice, bob = _collections(seed=seed)
    classification = classify_documents(alice, bob)

    def multiround_adapter(alice_sets, bob_sets, bound, universe, seed, **kwargs):
        # The multi-round protocol sizes each per-document payload from an
        # estimated difference, which is what makes reconciliation cheaper
        # than shipping every signature in this mostly-identical corpus.
        return reconcile_multiround(
            alice_sets, bob_sets, bound, universe, SIGNATURE_SIZE, seed, **kwargs
        )

    result = reconcile_collections(
        alice, bob, 2 * SIGNATURE_SIZE, seed + 7,
        protocol=multiround_adapter, differing_children_bound=12,
    )
    explicit = sum(len(sig) for sig in alice.signatures) * alice.hash_bits
    return [
        {
            "documents": NUM_DOCS,
            "exact dup": len(classification.exact_duplicates),
            "near dup": len(classification.near_duplicates),
            "fresh": len(classification.fresh),
            "reconciliation bits": result.total_bits,
            "explicit signature bits": explicit,
            "ok": result.success,
        }
    ]


def test_document_report(benchmark):
    rows = run_once(benchmark, report_rows)
    print()
    print(format_table(rows, TITLE))
    assert rows[0]["ok"]
    assert rows[0]["near dup"] == 3 and rows[0]["fresh"] == 2
    assert rows[0]["reconciliation bits"] < rows[0]["explicit signature bits"]


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = report_rows(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_documents",
            description="Shingled document collections: reconciling the "
            "signature sets vs shipping every signature, plus the "
            "near-duplicate / fresh classification",
            config=benchmark_config(
                args.seed, num_docs=NUM_DOCS, signature_size=SIGNATURE_SIZE
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
