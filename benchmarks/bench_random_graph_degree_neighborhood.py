"""E9 -- Theorems 5.5 / 5.6: degree-neighborhood random graph reconciliation.

Paper claims: (a) the minimum pairwise disjointness of the degree
neighborhoods of G(n, p) grows with pn (Theorem 5.5 -- asymptotically it
exceeds 4d+1 whp); (b) when it does, one round and roughly O(d pn log n)
bits reconcile the graphs (Theorem 5.6) -- about a pn factor more than the
degree-ordering scheme, in exchange for tolerating much sparser graphs.
"""

from conftest import run_once
from repro.bench.reporting import format_table
from repro.graphs import neighborhood_disjointness, reconcile_degree_neighborhood
from repro.graphs.random_graphs import gnp_random_graph, reconciliation_pair


def test_disjointness_trend(benchmark):
    """Theorem 5.5 shape: disjointness grows with the expected degree pn."""

    def sweep():
        rows = []
        for n, p in ((120, 0.1), (120, 0.3), (240, 0.3)):
            disjointness = min(
                neighborhood_disjointness(gnp_random_graph(n, p, seed), int(p * n))
                for seed in range(3)
            )
            rows.append(
                {
                    "n": n,
                    "p": p,
                    "pn": int(p * n),
                    "min pairwise disjointness": disjointness,
                    "supports d": max(0, (disjointness - 1) // 4),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, "E9a: degree-neighborhood disjointness of G(n,p)"))
    assert rows[-1]["min pairwise disjointness"] >= rows[0]["min pairwise disjointness"]


def test_degree_neighborhood_reconciliation(benchmark):
    """Theorem 5.6 end to end on an instance whose disjointness supports d=1."""
    n, p, d = 150, 0.35, 1
    max_degree = int(p * n)

    def run():
        for seed in range(20):
            base = gnp_random_graph(n, p, seed)
            if neighborhood_disjointness(base, max_degree) < 4 * d + 1:
                continue
            pair = reconciliation_pair(n, p, d, seed=seed + 500, base=base)
            result = reconcile_degree_neighborhood(
                pair.alice, pair.bob, d, max_degree, seed=seed
            )
            return seed, result
        return None, None

    seed, result = run_once(benchmark, run)
    if result is None:
        print("\nE9b: no sufficiently disjoint instance found at this scale (see EXPERIMENTS.md)")
        return
    print(
        f"\nE9b: degree-neighborhood reconciliation at n={n}, p={p}, d={d} (seed {seed}): "
        f"success={result.success}, bits={result.total_bits}, rounds={result.num_rounds}"
    )
    if result.success:
        assert result.num_rounds == 1
