"""E9 -- Theorems 5.5 / 5.6: degree-neighborhood random graph reconciliation.

Paper claims: (a) the minimum pairwise disjointness of the degree
neighborhoods of G(n, p) grows with pn (Theorem 5.5 -- asymptotically it
exceeds 4d+1 whp); (b) when it does, one round and roughly O(d pn log n)
bits reconcile the graphs (Theorem 5.6) -- about a pn factor more than the
degree-ordering scheme, in exchange for tolerating much sparser graphs.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.graphs import neighborhood_disjointness, reconcile_degree_neighborhood
from repro.graphs.random_graphs import gnp_random_graph, reconciliation_pair

CONFIGS = ((120, 0.1), (120, 0.3), (240, 0.3))
RECON_N, RECON_P, RECON_D = 150, 0.35, 1
TITLE = "E9a: degree-neighborhood disjointness of G(n,p)"


def disjointness_sweep(seed=0):
    rows = []
    for n, p in CONFIGS:
        disjointness = min(
            neighborhood_disjointness(gnp_random_graph(n, p, seed + offset), int(p * n))
            for offset in range(3)
        )
        rows.append(
            {
                "n": n,
                "p": p,
                "pn": int(p * n),
                "min pairwise disjointness": disjointness,
                "supports d": max(0, (disjointness - 1) // 4),
            }
        )
    return rows


def reconciliation_search(seed=0):
    """The first of 20 seeds whose disjointness supports d, reconciled."""
    n, p, d = RECON_N, RECON_P, RECON_D
    max_degree = int(p * n)
    for offset in range(20):
        base = gnp_random_graph(n, p, seed + offset)
        if neighborhood_disjointness(base, max_degree) < 4 * d + 1:
            continue
        pair = reconciliation_pair(n, p, d, seed=seed + offset + 500, base=base)
        result = reconcile_degree_neighborhood(
            pair.alice, pair.bob, d, max_degree, seed=seed + offset
        )
        return seed + offset, result
    return None, None


def test_disjointness_trend(benchmark):
    """Theorem 5.5 shape: disjointness grows with the expected degree pn."""
    rows = run_once(benchmark, disjointness_sweep)
    print()
    print(format_table(rows, TITLE))
    assert rows[-1]["min pairwise disjointness"] >= rows[0]["min pairwise disjointness"]


def test_degree_neighborhood_reconciliation(benchmark):
    """Theorem 5.6 end to end on an instance whose disjointness supports d=1."""
    seed, result = run_once(benchmark, reconciliation_search)
    if result is None:
        print("\nE9b: no sufficiently disjoint instance found at this scale (see EXPERIMENTS.md)")
        return
    print(
        f"\nE9b: degree-neighborhood reconciliation at n={RECON_N}, p={RECON_P}, "
        f"d={RECON_D} (seed {seed}): "
        f"success={result.success}, bits={result.total_bits}, rounds={result.num_rounds}"
    )
    if result.success:
        assert result.num_rounds == 1


def main() -> None:
    args = benchmark_parser(
        "E9: degree-neighborhood disjointness and reconciliation of G(n,p)"
    ).parse_args()
    rows = disjointness_sweep(args.seed)
    print(format_table(rows, TITLE))
    seed, result = reconciliation_search(args.seed)
    if result is None:
        print("E9b: no sufficiently disjoint instance found at this scale")
    else:
        print(
            f"E9b: reconciliation at n={RECON_N}, p={RECON_P}, d={RECON_D} "
            f"(seed {seed}): success={result.success}, bits={result.total_bits}, "
            f"rounds={result.num_rounds}"
        )
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_random_graph_degree_neighborhood",
            description="Degree-neighborhood disjointness of G(n,p) and one "
            "end-to-end reconciliation on a sufficiently disjoint instance",
            config=benchmark_config(
                args.seed,
                configs=[list(config) for config in CONFIGS],
                reconciliation=[RECON_N, RECON_P, RECON_D],
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
