"""E4 -- Theorem 2.3: characteristic-polynomial set reconciliation.

Paper claims: probability-1 success with O(d log u) bits, at the price of
interpolation time that grows polynomially (cubically) in d.  The benchmark
confirms the always-succeeds behaviour, the near-information-theoretic
communication (smaller than the IBLT protocol's), and the super-linear time
growth in d.
"""

import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.core.setrecon import reconcile_cpi, reconcile_known_d

UNIVERSE = 1 << 20
# The last d is large enough that the cubic interpolation time dominates the
# IBLT's linear pass by a wide margin, keeping the timing crossover assertion
# robust to scheduler noise.
DIFFERENCES = (4, 16, 48, 96)
SET_SIZE = 600
TITLE = "E4: CPI vs IBLT set reconciliation"


def _instance(size, difference, seed):
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


@pytest.mark.parametrize("difference", [4, 16, 48])
def test_cpi_reconciliation(benchmark, difference):
    alice, bob = _instance(600, difference, seed=difference)
    result = run_once(benchmark, reconcile_cpi, alice, bob, difference, UNIVERSE, 1)
    assert result.success and result.recovered == alice


def sweep(seed=0):
    """One row per d: bits and wall-clock for both set-reconciliation paths."""
    rows = []
    for difference in DIFFERENCES:
        alice, bob = _instance(SET_SIZE, difference, seed=seed + difference)
        start = time.perf_counter()
        cpi = reconcile_cpi(alice, bob, difference, UNIVERSE, seed=seed + 1)
        cpi_time = time.perf_counter() - start
        start = time.perf_counter()
        iblt = reconcile_known_d(alice, bob, difference, UNIVERSE, seed=seed + 1)
        iblt_time = time.perf_counter() - start
        rows.append(
            {
                "d": difference,
                "cpi bits": cpi.total_bits,
                "iblt bits": iblt.total_bits,
                "cpi sec": round(cpi_time, 4),
                "iblt sec": round(iblt_time, 4),
                "both ok": cpi.success and iblt.success,
            }
        )
    return rows


def test_cpi_vs_iblt_tradeoff(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["both ok"] for row in rows)
    # Communication: CPI is close to d log u and beats the IBLT's constant.
    assert all(row["cpi bits"] < row["iblt bits"] for row in rows)
    # Computation: CPI grows super-linearly in d and loses at the largest d.
    assert rows[-1]["cpi sec"] > rows[-1]["iblt sec"]


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_cpi_setrecon",
            description="Characteristic-polynomial vs IBLT set reconciliation: "
            "bits and wall-clock as the difference d grows",
            config=benchmark_config(
                args.seed, universe=UNIVERSE, set_size=SET_SIZE, differences=list(DIFFERENCES)
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
