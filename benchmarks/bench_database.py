"""E12 -- Section 1 application: binary relational database reconciliation.

The paper's motivating database scenario: two replicas of a binary table with
labeled columns and unlabeled rows, differing by d flipped bits.  The
benchmark measures communication against shipping the whole table and
compares the naive and cascading protocols.
"""

import pytest

from conftest import run_once
from repro.bench.reporting import format_table
from repro.db import reconcile_tables
from repro.workloads import flipped_table_pair

NUM_ROWS = 96
NUM_COLUMNS = 128
DENSITY = 0.5
NUM_FLIPS = 8


@pytest.mark.parametrize("protocol", ["naive", "cascading"])
def test_database_reconciliation(benchmark, protocol):
    alice, bob, _ = flipped_table_pair(
        NUM_ROWS, NUM_COLUMNS, DENSITY, NUM_FLIPS, seed=3, max_rows_touched=4
    )
    result = run_once(
        benchmark, reconcile_tables, alice, bob, NUM_FLIPS + 2, 11, protocol=protocol
    )
    assert result.success and result.recovered == alice


def test_database_report(benchmark):
    def sweep():
        rows = []
        for flips in (4, 8, 16):
            alice, bob, _ = flipped_table_pair(
                NUM_ROWS, NUM_COLUMNS, DENSITY, flips, seed=flips, max_rows_touched=flips // 2
            )
            naive = reconcile_tables(alice, bob, flips + 2, 11, protocol="naive")
            cascading = reconcile_tables(alice, bob, flips + 2, 11, protocol="cascading")
            rows.append(
                {
                    "flipped bits": flips,
                    "naive bits": naive.total_bits,
                    "cascading bits": cascading.total_bits,
                    "full table bits": NUM_ROWS * NUM_COLUMNS,
                    "both ok": naive.success and cascading.success,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, "E12: binary database reconciliation"))
    assert all(row["both ok"] for row in rows)
    # Reconciling a handful of flipped bits must beat shipping the table.
    assert rows[0]["naive bits"] < rows[0]["full table bits"]
