"""E12 -- Section 1 application: binary relational database reconciliation.

The paper's motivating database scenario: two replicas of a binary table with
labeled columns and unlabeled rows, differing by d flipped bits.  The
benchmark measures communication against shipping the whole table and
compares the naive and cascading protocols.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.db import reconcile_tables
from repro.workloads import flipped_table_pair

NUM_ROWS = 96
NUM_COLUMNS = 128
DENSITY = 0.5
NUM_FLIPS = 8
FLIP_COUNTS = (4, 8, 16)
TITLE = "E12: binary database reconciliation"


def sweep(seed=0):
    rows = []
    for flips in FLIP_COUNTS:
        alice, bob, _ = flipped_table_pair(
            NUM_ROWS, NUM_COLUMNS, DENSITY, flips, seed=seed + flips, max_rows_touched=flips // 2
        )
        naive = reconcile_tables(alice, bob, flips + 2, 11, protocol="naive")
        cascading = reconcile_tables(alice, bob, flips + 2, 11, protocol="cascading")
        rows.append(
            {
                "flipped bits": flips,
                "naive bits": naive.total_bits,
                "cascading bits": cascading.total_bits,
                "full table bits": NUM_ROWS * NUM_COLUMNS,
                "both ok": naive.success and cascading.success,
            }
        )
    return rows


@pytest.mark.parametrize("protocol", ["naive", "cascading"])
def test_database_reconciliation(benchmark, protocol):
    alice, bob, _ = flipped_table_pair(
        NUM_ROWS, NUM_COLUMNS, DENSITY, NUM_FLIPS, seed=3, max_rows_touched=4
    )
    result = run_once(
        benchmark, reconcile_tables, alice, bob, NUM_FLIPS + 2, 11, protocol=protocol
    )
    assert result.success and result.recovered == alice


def test_database_report(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["both ok"] for row in rows)
    # Reconciling a handful of flipped bits must beat shipping the table.
    assert rows[0]["naive bits"] < rows[0]["full table bits"]


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_database",
            description="Binary relational table reconciliation (naive and "
            "cascading) vs shipping the whole table, as flipped bits grow",
            config=benchmark_config(
                args.seed,
                num_rows=NUM_ROWS,
                num_columns=NUM_COLUMNS,
                density=DENSITY,
                flip_counts=list(FLIP_COUNTS),
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
