"""E6 -- Theorem 3.5 vs Theorem 3.7: flat vs cascading IBLTs of IBLTs.

Paper claim: the flat protocol pays O(d_hat * d log u) bits (quadratic when
many children each change a little) while the cascading protocol pays only
O(d log(min(d,h)) log u); with the total change budget spread thinly over
many children the cascading protocol must eventually win as d grows.  The
benchmark sweeps d with ~2 changes per touched child and locates the
crossover.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.core.setsofsets import reconcile_cascading, reconcile_iblt_of_iblts
from repro.workloads import sets_of_sets_instance

UNIVERSE = 4096
NUM_CHILDREN = 128
CHILD_SIZE = 32
DIFFERENCES = (16, 48, 96)
TITLE = "E6: flat (Thm 3.5) vs cascading (Thm 3.7), bits vs d"


def sweep(seed=0):
    rows = []
    for difference in DIFFERENCES:
        instance = sets_of_sets_instance(
            NUM_CHILDREN,
            CHILD_SIZE,
            UNIVERSE,
            difference,
            seed=seed + difference,
            max_children_touched=max(1, difference // 2),
        )
        flat = reconcile_iblt_of_iblts(
            instance.alice,
            instance.bob,
            instance.planted_difference,
            UNIVERSE,
            seed=seed + 1,
            differing_children_bound=min(instance.planted_difference, NUM_CHILDREN),
        )
        cascading = reconcile_cascading(
            instance.alice,
            instance.bob,
            instance.planted_difference,
            UNIVERSE,
            instance.max_child_size,
            seed=seed + 1,
            differing_children_bound=min(instance.planted_difference, NUM_CHILDREN),
        )
        rows.append(
            {
                "d": difference,
                "flat bits": flat.total_bits,
                "cascading bits": cascading.total_bits,
                "flat ok": flat.success,
                "cascading ok": cascading.success,
            }
        )
    return rows


def test_cascading_vs_flat_crossover(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["flat ok"] and row["cascading ok"] for row in rows)
    # Shape check: the flat protocol's cost grows much faster (superlinearly)
    # than the cascading protocol's, and cascading wins at the largest d.
    flat_growth = rows[-1]["flat bits"] / rows[0]["flat bits"]
    cascading_growth = rows[-1]["cascading bits"] / rows[0]["cascading bits"]
    assert flat_growth > cascading_growth
    assert rows[-1]["cascading bits"] < rows[-1]["flat bits"]


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_cascading_ablation",
            description="Flat vs cascading IBLTs of IBLTs: total bits as the "
            "planted difference d grows with ~2 changes per touched child",
            config=benchmark_config(
                args.seed,
                universe=UNIVERSE,
                num_children=NUM_CHILDREN,
                child_size=CHILD_SIZE,
                differences=list(DIFFERENCES),
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
