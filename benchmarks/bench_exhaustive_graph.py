"""E11 -- Theorems 4.1, 4.3, 4.4: unbounded-computation graph reconciliation.

Paper claims: graph isomorphism needs only O(log n) bits (Thm 4.1); graph
reconciliation needs O(d log n) bits (Thm 4.3) and that is tight (Thm 4.4).
Communication is minuscule; computation explodes (Bob enumerates O(n^{2d})
graphs), which is exactly why Section 5 exists.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.graphs import (
    Graph,
    are_isomorphic_small,
    isomorphism_fingerprint_protocol,
    reconcile_exhaustive,
)

NUM_VERTICES = 6
DIFFERENCES = (0, 1, 2)
TITLE = "E11: exhaustive reconciliation, bits vs the d log n bound"


def _path(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def test_fingerprint_isomorphism(benchmark):
    graph = _path(7)
    result = run_once(
        benchmark, isomorphism_fingerprint_protocol, graph.relabel([6, 5, 4, 3, 2, 1, 0]), graph, 3
    )
    assert result.recovered is True
    assert result.total_bits < 200


@pytest.mark.parametrize("difference", [1, 2])
def test_exhaustive_reconciliation(benchmark, difference):
    alice = _path(6).relabel([3, 1, 5, 0, 2, 4])
    bob = _path(6)
    bob.toggle_edge(0, 3)
    if difference == 2:
        bob.toggle_edge(2, 5)
    result = run_once(benchmark, reconcile_exhaustive, alice, bob, difference, 9)
    assert result.success
    assert are_isomorphic_small(result.recovered, alice)


def sweep(seed=0):
    rows = []
    alice = _path(NUM_VERTICES)
    for difference in DIFFERENCES:
        bob = _path(NUM_VERTICES)
        result = reconcile_exhaustive(alice, bob, difference, seed=seed + difference)
        lower_bound = max(1, difference) * NUM_VERTICES.bit_length()
        rows.append(
            {
                "d": difference,
                "bits": result.total_bits,
                "~d log n lower bound": lower_bound,
                "success": result.success,
            }
        )
    return rows


def test_communication_vs_lower_bound(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["success"] for row in rows)
    # Communication grows with d (Theorem 4.3/4.4 shape) and stays tiny.
    assert rows[-1]["bits"] >= rows[0]["bits"]
    assert rows[-1]["bits"] < 200


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_exhaustive_graph",
            description="Unbounded-computation graph reconciliation on a "
            "6-vertex path: total bits against the d log n lower bound",
            config=benchmark_config(
                args.seed, num_vertices=NUM_VERTICES, differences=list(DIFFERENCES)
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
