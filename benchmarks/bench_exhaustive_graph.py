"""E11 -- Theorems 4.1, 4.3, 4.4: unbounded-computation graph reconciliation.

Paper claims: graph isomorphism needs only O(log n) bits (Thm 4.1); graph
reconciliation needs O(d log n) bits (Thm 4.3) and that is tight (Thm 4.4).
Communication is minuscule; computation explodes (Bob enumerates O(n^{2d})
graphs), which is exactly why Section 5 exists.
"""

import pytest

from conftest import run_once
from repro.bench.reporting import format_table
from repro.graphs import (
    Graph,
    are_isomorphic_small,
    isomorphism_fingerprint_protocol,
    reconcile_exhaustive,
)


def _path(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def test_fingerprint_isomorphism(benchmark):
    graph = _path(7)
    result = run_once(
        benchmark, isomorphism_fingerprint_protocol, graph.relabel([6, 5, 4, 3, 2, 1, 0]), graph, 3
    )
    assert result.recovered is True
    assert result.total_bits < 200


@pytest.mark.parametrize("difference", [1, 2])
def test_exhaustive_reconciliation(benchmark, difference):
    alice = _path(6).relabel([3, 1, 5, 0, 2, 4])
    bob = _path(6)
    bob.toggle_edge(0, 3)
    if difference == 2:
        bob.toggle_edge(2, 5)
    result = run_once(benchmark, reconcile_exhaustive, alice, bob, difference, 9)
    assert result.success
    assert are_isomorphic_small(result.recovered, alice)


def test_communication_vs_lower_bound(benchmark):
    def sweep():
        rows = []
        alice = _path(6)
        for difference in (0, 1, 2):
            bob = _path(6)
            result = reconcile_exhaustive(alice, bob, difference, seed=difference)
            lower_bound = max(1, difference) * 6 .bit_length()
            rows.append(
                {
                    "d": difference,
                    "bits": result.total_bits,
                    "~d log n lower bound": lower_bound,
                    "success": result.success,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, "E11: exhaustive reconciliation, bits vs the d log n bound"))
    assert all(row["success"] for row in rows)
    # Communication grows with d (Theorem 4.3/4.4 shape) and stays tiny.
    assert rows[-1]["bits"] >= rows[0]["bits"]
    assert rows[-1]["bits"] < 200
