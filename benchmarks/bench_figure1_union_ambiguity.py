"""E2 -- Figure 1: the "union" of two unlabeled graphs is not well defined.

Paper claim (Figure 1, Section 4): there exist graph pairs where no single
edge addition to one graph makes them isomorphic, yet adding one edge to
*each* graph yields isomorphic results in more than one mutually
non-isomorphic way.  The benchmark verifies both facts by exhaustive search
over the one-edge extensions and times the canonical-form machinery used.
"""

from conftest import run_once
from repro.graphs.isomorphism import (
    canonical_form_small,
    figure1_graphs,
    merge_ambiguity_classes,
    single_sided_merge_possible,
)


def test_figure1_merge_ambiguity(benchmark):
    first, second = figure1_graphs()
    classes = run_once(benchmark, merge_ambiguity_classes, first, second)
    assert len(classes) >= 2, "Figure 1 requires at least two distinct merge results"
    assert not single_sided_merge_possible(first, second)
    print(
        f"\nFigure 1: {len(classes)} mutually non-isomorphic one-edge-each merges, "
        "no single-sided merge exists."
    )


def test_canonical_form_small_graph(benchmark):
    first, _ = figure1_graphs()
    form = benchmark(canonical_form_small, first)
    assert len(form) == 5 * 4 // 2
