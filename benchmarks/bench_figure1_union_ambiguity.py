"""E2 -- Figure 1: the "union" of two unlabeled graphs is not well defined.

Paper claim (Figure 1, Section 4): there exist graph pairs where no single
edge addition to one graph makes them isomorphic, yet adding one edge to
*each* graph yields isomorphic results in more than one mutually
non-isomorphic way.  The benchmark verifies both facts by exhaustive search
over the one-edge extensions and times the canonical-form machinery used.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.graphs.isomorphism import (
    canonical_form_small,
    figure1_graphs,
    merge_ambiguity_classes,
    single_sided_merge_possible,
)

TITLE = "E2: Figure 1 merge ambiguity (exhaustive one-edge extensions)"


def report_rows():
    """The Figure 1 pair is a fixed construction, so this takes no seed."""
    first, second = figure1_graphs()
    classes = merge_ambiguity_classes(first, second)
    return [
        {
            "vertices": first.num_vertices,
            "merge classes": len(classes),
            "single-sided merge possible": single_sided_merge_possible(first, second),
        }
    ]


def test_figure1_merge_ambiguity(benchmark):
    first, second = figure1_graphs()
    classes = run_once(benchmark, merge_ambiguity_classes, first, second)
    assert len(classes) >= 2, "Figure 1 requires at least two distinct merge results"
    assert not single_sided_merge_possible(first, second)
    print(
        f"\nFigure 1: {len(classes)} mutually non-isomorphic one-edge-each merges, "
        "no single-sided merge exists."
    )


def test_canonical_form_small_graph(benchmark):
    first, _ = figure1_graphs()
    form = benchmark(canonical_form_small, first)
    assert len(form) == 5 * 4 // 2


def main() -> None:
    args = benchmark_parser(
        TITLE + " -- the construction is fixed, so --seed is accepted but unused"
    ).parse_args()
    rows = report_rows()
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_figure1_union_ambiguity",
            description="Figure 1: exhaustive search over one-edge extensions "
            "showing the unlabeled-graph union is not well defined",
            config=benchmark_config(args.seed),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
