"""Service throughput: 64 concurrent asyncio client sessions vs serial loops.

The asyncio sync server exists to multiplex many clients whose sessions are
dominated by wire latency, so the comparison emulates a WAN client
population: every frame pays a simulated one-way delay
(``AsyncSocketTransport(latency=...)`` / the same knob on the blocking
``SocketTransport`` path) on top of the real localhost stack.

* **Serial baseline** -- the pre-service way to drive real-socket sessions:
  one blocking :func:`repro.protocols.run_party` loop per client, sessions
  one after another, each paying its own round-trip delays.
* **Concurrent** -- the same 64 sessions as asyncio tasks against one
  :class:`repro.service.SyncServer` event loop, where the delays overlap.

Every client recovers the server's set and the recovered data is asserted
identical between both paths (and to the data itself).  The acceptance bar
is a >= 4x throughput gain at 64 concurrent clients under 10 ms one-way
latency; a zero-latency row is also recorded for transparency (pure
localhost CPU is serialized either way, so its gain is modest).

Run under pytest (the 8-client cases are the CI smoke), or standalone::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

which also rewrites ``BENCH_service.json`` at the repository root.
"""

from __future__ import annotations

import asyncio
import random
import socket
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import load_benchmark_record, write_benchmark_record
from repro.protocols import SocketTransport, pack_frame, read_frame, run_party
from repro.protocols.options import ReconcileOptions
from repro.protocols.registry import get
from repro.protocols.transports import FRAME_CONTROL
from repro.service import SyncServer, areconcile
from repro.service.hello import ACK_LABEL, HELLO_LABEL, Hello, PeerStats, parse_ack
from repro.service.hello import options_to_wire, placeholder_input

UNIVERSE = 1 << 20
SET_SIZE = 512
DIFFERENCES = 8
NUM_CLIENTS = 64
ONE_WAY_LATENCY_S = 0.010  # emulated WAN delay per frame, each direction
SPEEDUP_FLOOR = 4.0  # acceptance bar at NUM_CLIENTS under latency
PROTOCOL = "ibf"


def make_instances(seed: int) -> tuple[set[int], list[set[int]]]:
    """The server set and one perturbed copy per client."""
    rng = random.Random(seed)
    server_set = set(rng.sample(range(UNIVERSE), SET_SIZE))
    clients = []
    for _ in range(NUM_CLIENTS):
        mine = set(server_set)
        for element in rng.sample(sorted(server_set), DIFFERENCES // 2):
            mine.discard(element)
        for _ in range(DIFFERENCES - DIFFERENCES // 2):
            mine.add(rng.randrange(UNIVERSE))
        clients.append(mine)
    return server_set, clients


def client_options(seed: int, client_id: int) -> ReconcileOptions:
    return ReconcileOptions(
        seed=seed + client_id,
        universe_size=UNIVERSE,
        difference_bound=2 * DIFFERENCES,
    )


class ServerThread:
    """A SyncServer running on its own event-loop thread."""

    def __init__(self, server_set: set[int], latency: float) -> None:
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None

        def body() -> None:
            async def serve() -> None:
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                async with SyncServer({PROTOCOL: server_set}, latency=latency) as srv:
                    self.port = srv.port
                    self._ready.set()
                    await self._stop.wait()

            asyncio.run(serve())

        self._thread = threading.Thread(target=body, daemon=True)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("server did not start")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def run_serial_client(
    port: int, mine: set[int], options: ReconcileOptions, server_set: set[int],
    latency: float,
) -> None:
    """One blocking run_party session (hello by hand, like pre-service code)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    try:
        hello = Hello(PROTOCOL, "bob", options_to_wire(options),
                      PeerStats().to_wire())
        if latency:
            time.sleep(latency)
        sock.sendall(pack_frame(FRAME_CONTROL, "bob", HELLO_LABEL, 0,
                                hello.to_json()))
        ack = read_frame(sock)
        assert ack.label == ACK_LABEL
        acked_options, server_stats = parse_ack(ack.payload)
        spec = get(PROTOCOL)
        placeholder = placeholder_input(spec.input_kind, server_stats)
        _, bob_party = spec.build(placeholder, mine, acked_options)
        transport = SocketTransport(sock, "bob")
        if latency:
            original_send = transport.send_message

            def delayed_send(send):
                time.sleep(latency)
                original_send(send)

            transport.send_message = delayed_send
        outcome, _ = run_party(bob_party, transport)
        assert outcome.success and outcome.recovered == server_set
    finally:
        sock.close()


def measure_serial(port, clients, server_set, seed, latency) -> float:
    start = time.perf_counter()
    for client_id, mine in enumerate(clients):
        run_serial_client(
            port, mine, client_options(seed, client_id), server_set, latency
        )
    return time.perf_counter() - start


def measure_concurrent(port, clients, server_set, seed, latency) -> float:
    async def one(client_id: int, mine: set[int]) -> None:
        result = await areconcile(
            "127.0.0.1", port, PROTOCOL, mine,
            options=client_options(seed, client_id), latency=latency,
        )
        assert result.success and result.recovered == server_set

    async def body() -> None:
        await asyncio.gather(
            *(one(client_id, mine) for client_id, mine in enumerate(clients))
        )

    start = time.perf_counter()
    asyncio.run(body())
    return time.perf_counter() - start


def compare(seed: int = DEFAULT_SEED, num_clients: int = NUM_CLIENTS) -> list[dict]:
    """Serial vs concurrent wall-clock, with and without emulated latency."""
    server_set, clients = make_instances(seed)
    clients = clients[:num_clients]
    rows = []
    for latency in (ONE_WAY_LATENCY_S, 0.0):
        with ServerThread(server_set, latency) as server:
            serial_s = measure_serial(
                server.port, clients, server_set, seed, latency
            )
        with ServerThread(server_set, latency) as server:
            concurrent_s = measure_concurrent(
                server.port, clients, server_set, seed, latency
            )
        row = {
            "clients": len(clients),
            "one_way_latency_ms": latency * 1000,
            "serial_s": round(serial_s, 4),
            "concurrent_s": round(concurrent_s, 4),
            "serial_sessions_per_s": round(len(clients) / serial_s, 2),
            "concurrent_sessions_per_s": round(len(clients) / concurrent_s, 2),
            "identical_recovered_sets": True,
        }
        if latency:
            row["speedup"] = round(serial_s / concurrent_s, 2)
        else:
            row["zero_latency_gain"] = round(serial_s / concurrent_s, 2)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# pytest entry points (the 8-client cases are the CI smoke test)
# ---------------------------------------------------------------------------

import pytest


@pytest.mark.timeout(300)
def test_smoke_concurrent_sessions(benchmark):
    from conftest import run_once

    server_set, clients = make_instances(DEFAULT_SEED)
    with ServerThread(server_set, 0.0) as server:
        elapsed = run_once(
            benchmark, measure_concurrent,
            server.port, clients[:8], server_set, DEFAULT_SEED, 0.0,
        )
    assert elapsed > 0


@pytest.mark.timeout(300)
def test_smoke_serial_baseline_agrees(benchmark):
    from conftest import run_once

    server_set, clients = make_instances(DEFAULT_SEED)
    with ServerThread(server_set, 0.0) as server:
        elapsed = run_once(
            benchmark, measure_serial,
            server.port, clients[:8], server_set, DEFAULT_SEED, 0.0,
        )
    assert elapsed > 0


@pytest.mark.timeout(300)
def test_concurrency_speedup_floor_under_latency(benchmark):
    """The tentpole acceptance check: >= 4x at 64 clients, 10 ms one-way."""
    from conftest import run_once

    rows = run_once(benchmark, compare)
    latency_row = next(row for row in rows if row["one_way_latency_ms"])
    assert latency_row["speedup"] >= SPEEDUP_FLOOR, rows


def main() -> None:
    args = benchmark_parser(
        "Concurrent sync-service throughput",
        Path(__file__).resolve().parent.parent / "BENCH_service.json",
    ).parse_args()
    rows = compare(seed=args.seed)
    for row in rows:
        gain = row.get("speedup", row.get("zero_latency_gain"))
        print(
            f"clients={row['clients']}  latency={row['one_way_latency_ms']:4.0f} ms  "
            f"serial={row['serial_s']:7.2f}s  concurrent={row['concurrent_s']:6.2f}s  "
            f"gain={gain:.1f}x"
        )
    latency_row = next(row for row in rows if row["one_way_latency_ms"])
    if latency_row["speedup"] < SPEEDUP_FLOOR:
        sys.exit(
            f"throughput speedup {latency_row['speedup']}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    config = benchmark_config(
        args.seed,
        clients=NUM_CLIENTS,
        protocol=PROTOCOL,
        set_size=SET_SIZE,
        differences=DIFFERENCES,
        one_way_latency_s=ONE_WAY_LATENCY_S,
    )
    if args.profile:
        config["profile"] = {
            f"latency{row['one_way_latency_ms']:g}ms_{phase}_s": row[f"{phase}_s"]
            for row in rows
            for phase in ("serial", "concurrent")
        }
    # The record is shared with bench_fleet_saturation.py: keep its fleet
    # rows (the ones carrying a "workers" key) and its "fleet" block intact.
    try:
        existing = load_benchmark_record(args.output)
    except FileNotFoundError:
        existing = {}
    fleet_rows = [row for row in existing.get("results", []) if "workers" in row]
    extra = {"fleet": existing["fleet"]} if "fleet" in existing else {}
    write_benchmark_record(
        args.output,
        benchmark="bench_service_throughput",
        description=(
            "64 concurrent asyncio client sessions against one SyncServer vs "
            "serial blocking run_party loops, under emulated 10 ms one-way "
            "WAN latency (zero-latency row recorded for transparency); "
            "identical recovered sets asserted on every session"
        ),
        config=config,
        speedup_floor=SPEEDUP_FLOOR,
        **extra,
        results=rows + fleet_rows,
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
