"""E10 -- Theorem 6.1: forest reconciliation.

Paper claim: one round and O(d sigma log(d sigma) log n) bits reconcile two
rooted forests differing by d edge edits, with computation essentially linear
in n.  The key shape: communication depends on d and the depth sigma, *not*
on the forest size, so it stays flat as n grows while explicit transfer grows
linearly.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.graphs import forest_canonical_form, reconcile_forest
from repro.workloads import forest_instance

FOREST_SIZES = (100, 200, 400)
TITLE = "E10: forest reconciliation, bits vs n (d and depth fixed)"


@pytest.mark.parametrize("num_vertices", [100, 400])
def test_forest_reconciliation(benchmark, num_vertices):
    instance = forest_instance(num_vertices, 3, seed=num_vertices, max_depth=4)
    result = run_once(
        benchmark,
        reconcile_forest,
        instance.alice,
        instance.bob,
        max(1, instance.num_edits),
        instance.max_depth,
        7,
    )
    assert result.success
    assert forest_canonical_form(result.recovered) == forest_canonical_form(instance.alice)


def sweep(seed=0):
    rows = []
    for num_vertices in FOREST_SIZES:
        instance = forest_instance(num_vertices, 3, seed=seed + num_vertices + 1, max_depth=4)
        result = reconcile_forest(
            instance.alice, instance.bob, max(1, instance.num_edits),
            instance.max_depth, seed=seed + 8,
        )
        rows.append(
            {
                "n": num_vertices,
                "bits": result.total_bits,
                "explicit parent-array bits": num_vertices * num_vertices.bit_length(),
                "success": result.success,
            }
        )
    return rows


def test_forest_bits_independent_of_size(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["success"] for row in rows)
    # Communication is governed by d * sigma, not by the forest size: growing
    # n by 4x must grow the cost sublinearly (the residual growth comes from
    # wider child multisets in larger random forests, i.e. larger h, not n
    # itself -- see EXPERIMENTS.md).
    size_growth = rows[-1]["n"] / rows[0]["n"]
    bits_growth = rows[-1]["bits"] / rows[0]["bits"]
    assert bits_growth < size_growth


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_forest",
            description="Rooted-forest reconciliation: total bits vs forest "
            "size with the edit count and depth held fixed",
            config=benchmark_config(args.seed, forest_sizes=list(FOREST_SIZES)),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
