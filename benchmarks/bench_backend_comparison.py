"""Cell-store backend comparison: pure-Python vs NumPy vs the compiled tier.

Times the three IBLT primitives every protocol is built from --
encode (batch insert of n keys), subtract, and decode (batch peeling) --
at n in {10^3, 10^4, 10^5} per backend, asserting that both backends
recover identical sets.  The acceptance bar for the vectorized backend is
a >= 5x end-to-end (encode + subtract + decode) speedup over the reference
backend at n = 10^5.

The large-scale row (``compare_large``, n = 10^7) runs all three tiers --
python, numpy, and ``backend="numba"`` resolved down the fallback chain when
numba is not installed -- in one run, asserts byte-identical serializations
across them, and times the decode phase both through the legacy per-round
driver and through the in-store vectorized peel that replaced it.  The
acceptance bar is >= 2x on the peel/decode phase for the in-store peel of
the fastest tier over the reference tier's peel (the legacy-driver
comparison on the same store is reported alongside, unfloored: the generic
driver already runs batched store primitives, so its gap is small).

Run under pytest-benchmark like the other benchmarks, or standalone::

    PYTHONPATH=src python benchmarks/bench_backend_comparison.py

which also rewrites ``BENCH_backends.json`` at the repository root.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import write_benchmark_record
from repro.iblt import IBLT, IBLTParameters, NumpyCellStore
from repro.iblt.backends import CellStore
from repro.iblt.table import DecodeResult

SIZES = (1_000, 10_000, 100_000)
KEY_BITS = 48
SPEEDUP_FLOOR = 5.0  # acceptance bar at the largest size
LARGE_N = 10_000_000
PEEL_SPEEDUP_FLOOR = 2.0  # fastest tier's in-store peel vs the reference peel at 1e7
_UNIVERSE = 1 << (KEY_BITS - 1)


def _instance(n: int, seed: int) -> tuple[list[int], list[int]]:
    """Two key lists sharing all but ~n/100 keys (a realistic difference)."""
    rng = random.Random(seed)
    alice = rng.sample(range(_UNIVERSE), n)
    difference = max(2, n // 100)
    bob = alice[: n - difference // 2] + rng.sample(
        range(_UNIVERSE, 2 * _UNIVERSE), difference - difference // 2
    )
    return alice, bob


def _run_backend(backend: str, n: int, seed: int) -> dict:
    """Encode both sides, subtract, decode; return timings and recovered sets."""
    alice, bob = _instance(n, seed)
    params = IBLTParameters.for_difference(
        2 * max(2, n // 100), KEY_BITS, seed=seed
    )
    start = time.perf_counter()
    alice_table = IBLT.from_items(params, alice, backend=backend)
    bob_table = IBLT.from_items(params, bob, backend=backend)
    encoded = time.perf_counter()
    difference = alice_table.subtract(bob_table)
    subtracted = time.perf_counter()
    result = difference.try_decode()
    decoded = time.perf_counter()
    assert result.success, f"{backend} decode failed at n={n}"
    return {
        "backend": alice_table.backend,
        "n": n,
        "encode_s": encoded - start,
        "subtract_s": subtracted - encoded,
        "decode_s": decoded - subtracted,
        "total_s": decoded - start,
        "positive": result.positive,
        "negative": result.negative,
    }


def compare(sizes=SIZES, seed: int = 20180611) -> list[dict]:
    """Run both backends over every size; assert identical recovered sets."""
    rows = []
    for n in sizes:
        python_run = _run_backend("python", n, seed)
        numpy_run = _run_backend("numpy", n, seed)
        assert python_run["positive"] == numpy_run["positive"]
        assert python_run["negative"] == numpy_run["negative"]
        rows.append(
            {
                "n": n,
                "recovered": len(python_run["positive"]) + len(python_run["negative"]),
                "python": {
                    key: round(python_run[key], 6)
                    for key in ("encode_s", "subtract_s", "decode_s", "total_s")
                },
                "numpy": {
                    key: round(numpy_run[key], 6)
                    for key in ("encode_s", "subtract_s", "decode_s", "total_s")
                },
                "speedup": round(python_run["total_s"] / numpy_run["total_s"], 2),
                "numpy_resolved_backend": numpy_run["backend"],
            }
        )
    return rows


def _legacy_decode(table: IBLT) -> DecodeResult:
    """Decode through the pre-in-store driver.

    Runs the generic per-round peel over the store's primitive API
    (``pure_cells`` + per-round ``apply_batch``), the loop shape
    ``IBLT.try_decode`` used before whole-round peeling moved into the
    store -- the baseline the in-store peel is measured against.
    """
    work = table.copy()
    positive, negative = CellStore.peel_rounds(
        work._store, work._checksum, work._family
    )
    return DecodeResult(work._store.is_empty(), set(positive), set(negative))


def compare_large(n: int = LARGE_N, seed: int = DEFAULT_SEED) -> dict:
    """The n=1e7 row: all three tiers in one run, plus the peel phase.

    Encodes, subtracts, and decodes under the python, numpy, and numba
    tiers (a ``numba`` request resolves down the fallback chain when numba
    is not installed; the resolved store is recorded), asserts byte-identical
    serializations and identical recovered sets across all three, then times
    the decode phase of the fastest tier twice: through the legacy per-round
    driver and through the in-store vectorized peel that replaced it.

    ``peel_speedup`` (floored at :data:`PEEL_SPEEDUP_FLOOR`) is the
    reference tier's peel over the fastest tier's in-store peel -- the
    peel/decode-phase gain of the vectorized/compiled tier.
    ``legacy_driver_speedup`` isolates the in-store refactor on the fastest
    store itself and is reported unfloored.
    """
    alice, bob = _instance(n, seed)
    params = IBLTParameters.for_difference(
        2 * max(2, n // 100), KEY_BITS, seed=seed
    )
    tiers: dict[str, dict] = {}
    serialized: dict[str, list] = {}
    reference = None
    fastest_difference = None
    for backend in ("python", "numpy", "numba"):
        start = time.perf_counter()
        alice_table = IBLT.from_items(params, alice, backend=backend)
        bob_table = IBLT.from_items(params, bob, backend=backend)
        encoded = time.perf_counter()
        difference = alice_table.subtract(bob_table)
        subtracted = time.perf_counter()
        result = difference.try_decode()
        decoded = time.perf_counter()
        assert result.success, f"{backend} decode failed at n={n}"
        serialized[backend] = difference.serialize()
        tiers[backend] = {
            "resolved_backend": difference.backend,
            "encode_s": round(encoded - start, 6),
            "subtract_s": round(subtracted - encoded, 6),
            "decode_s": round(decoded - subtracted, 6),
            "total_s": round(decoded - start, 6),
        }
        if reference is None:
            reference = result
        else:
            assert result.positive == reference.positive
            assert result.negative == reference.negative
        if backend == "numba":
            fastest_difference = difference
    assert serialized["python"] == serialized["numpy"] == serialized["numba"]

    start = time.perf_counter()
    legacy = _legacy_decode(fastest_difference)
    legacy_s = time.perf_counter() - start
    start = time.perf_counter()
    instore = fastest_difference.try_decode()
    instore_s = time.perf_counter() - start
    assert legacy == instore  # identical round structure, identical sets

    return {
        "n": n,
        "recovered": len(reference.positive) + len(reference.negative),
        "python": {k: v for k, v in tiers["python"].items() if k != "resolved_backend"},
        "numpy": {k: v for k, v in tiers["numpy"].items() if k != "resolved_backend"},
        "numba": {k: v for k, v in tiers["numba"].items() if k != "resolved_backend"},
        "numba_resolved_backend": tiers["numba"]["resolved_backend"],
        "identical_serializations": True,
        "legacy_decode_s": round(legacy_s, 6),
        "instore_decode_s": round(instore_s, 6),
        "legacy_driver_speedup": round(legacy_s / instore_s, 2),
        "peel_speedup": round(tiers["python"]["decode_s"] / instore_s, 2),
        "peel_speedup_floor": PEEL_SPEEDUP_FLOOR,
        "speedup": round(
            tiers["python"]["total_s"] / tiers["numba"]["total_s"], 2
        ),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

import pytest

needs_numpy = pytest.mark.skipif(
    not NumpyCellStore.available(), reason="NumPy not installed"
)


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("n", SIZES)
def test_backend_encode_subtract_decode(benchmark, backend, n):
    from conftest import run_once

    if backend == "numpy" and not NumpyCellStore.available():
        pytest.skip("NumPy not installed")
    run = run_once(benchmark, _run_backend, backend, n, seed=n)
    assert run["positive"] and run["n"] == n


@needs_numpy
def test_numpy_backend_speedup_floor(benchmark):
    """The tentpole acceptance check: >= 5x end-to-end at the largest size."""
    from conftest import run_once

    rows = run_once(benchmark, compare, sizes=(SIZES[-1],))
    assert rows[0]["numpy_resolved_backend"] == "numpy"
    assert rows[0]["speedup"] >= SPEEDUP_FLOOR, rows


@needs_numpy
def test_all_tiers_identical_and_instore_peel_matches_legacy(benchmark):
    """CI smoke for the large-scale row at a small n: three tiers in one
    run, byte-identical serializations, legacy driver == in-store peel."""
    from conftest import run_once

    row = run_once(benchmark, compare_large, n=50_000)
    assert row["identical_serializations"]
    assert row["recovered"] == 500


def main() -> None:
    args = benchmark_parser(
        "IBLT cell-store backend comparison",
        Path(__file__).resolve().parent.parent / "BENCH_backends.json",
    ).parse_args()
    if not NumpyCellStore.available():
        sys.exit("NumPy is required for the backend comparison")
    rows = compare(seed=args.seed)
    for row in rows:
        print(
            f"n={row['n']:>7}  python={row['python']['total_s']:.3f}s  "
            f"numpy={row['numpy']['total_s']:.3f}s  speedup={row['speedup']:.1f}x  "
            f"recovered={row['recovered']}"
        )
    largest = rows[-1]
    if largest["speedup"] < SPEEDUP_FLOOR:
        sys.exit(
            f"speedup {largest['speedup']}x below the {SPEEDUP_FLOOR}x floor"
        )
    large = compare_large(seed=args.seed)
    print(
        f"n={large['n']:>8}  python={large['python']['total_s']:.1f}s  "
        f"numpy={large['numpy']['total_s']:.1f}s  "
        f"numba({large['numba_resolved_backend']})="
        f"{large['numba']['total_s']:.1f}s  "
        f"peel ref={large['python']['decode_s']:.3f}s "
        f"in-store={large['instore_decode_s']:.3f}s "
        f"({large['peel_speedup']:.1f}x; legacy driver "
        f"{large['legacy_driver_speedup']:.1f}x)"
    )
    if large["peel_speedup"] < PEEL_SPEEDUP_FLOOR:
        sys.exit(
            f"in-store peel speedup {large['peel_speedup']}x over the "
            f"reference peel is below the {PEEL_SPEEDUP_FLOOR}x floor "
            f"at n={large['n']}"
        )
    rows.append(large)
    config = benchmark_config(args.seed, sizes=list(SIZES), large_n=LARGE_N)
    if args.profile:
        config["profile"] = {
            f"{tier}_{phase}_s": large[tier][f"{phase}_s"]
            for tier in ("python", "numpy", "numba")
            for phase in ("encode", "subtract", "decode")
        } | {
            "peel_legacy_s": large["legacy_decode_s"],
            "peel_instore_s": large["instore_decode_s"],
        }
    output = args.output
    write_benchmark_record(
        output,
        benchmark="bench_backend_comparison",
        description=(
            "IBLT encode+subtract+decode wall-clock per cell-store "
            "backend; identical recovered sets asserted per size; the "
            "n=1e7 row runs all three tiers plus the legacy-vs-in-store "
            "peel comparison"
        ),
        config=config,
        key_bits=KEY_BITS,
        speedup_floor=SPEEDUP_FLOOR,
        peel_speedup_floor=PEEL_SPEEDUP_FLOOR,
        results=rows,
    )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
