"""Cell-store backend comparison: pure-Python vs vectorized NumPy.

Times the three IBLT primitives every protocol is built from --
encode (batch insert of n keys), subtract, and decode (batch peeling) --
at n in {10^3, 10^4, 10^5} per backend, asserting that both backends
recover identical sets.  The acceptance bar for the vectorized backend is
a >= 5x end-to-end (encode + subtract + decode) speedup over the reference
backend at n = 10^5.

Run under pytest-benchmark like the other benchmarks, or standalone::

    PYTHONPATH=src python benchmarks/bench_backend_comparison.py

which also rewrites ``BENCH_backends.json`` at the repository root.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import write_benchmark_record
from repro.iblt import IBLT, IBLTParameters, NumpyCellStore

SIZES = (1_000, 10_000, 100_000)
KEY_BITS = 48
SPEEDUP_FLOOR = 5.0  # acceptance bar at the largest size
_UNIVERSE = 1 << (KEY_BITS - 1)


def _instance(n: int, seed: int) -> tuple[list[int], list[int]]:
    """Two key lists sharing all but ~n/100 keys (a realistic difference)."""
    rng = random.Random(seed)
    alice = rng.sample(range(_UNIVERSE), n)
    difference = max(2, n // 100)
    bob = alice[: n - difference // 2] + rng.sample(
        range(_UNIVERSE, 2 * _UNIVERSE), difference - difference // 2
    )
    return alice, bob


def _run_backend(backend: str, n: int, seed: int) -> dict:
    """Encode both sides, subtract, decode; return timings and recovered sets."""
    alice, bob = _instance(n, seed)
    params = IBLTParameters.for_difference(
        2 * max(2, n // 100), KEY_BITS, seed=seed
    )
    start = time.perf_counter()
    alice_table = IBLT.from_items(params, alice, backend=backend)
    bob_table = IBLT.from_items(params, bob, backend=backend)
    encoded = time.perf_counter()
    difference = alice_table.subtract(bob_table)
    subtracted = time.perf_counter()
    result = difference.try_decode()
    decoded = time.perf_counter()
    assert result.success, f"{backend} decode failed at n={n}"
    return {
        "backend": alice_table.backend,
        "n": n,
        "encode_s": encoded - start,
        "subtract_s": subtracted - encoded,
        "decode_s": decoded - subtracted,
        "total_s": decoded - start,
        "positive": result.positive,
        "negative": result.negative,
    }


def compare(sizes=SIZES, seed: int = 20180611) -> list[dict]:
    """Run both backends over every size; assert identical recovered sets."""
    rows = []
    for n in sizes:
        python_run = _run_backend("python", n, seed)
        numpy_run = _run_backend("numpy", n, seed)
        assert python_run["positive"] == numpy_run["positive"]
        assert python_run["negative"] == numpy_run["negative"]
        rows.append(
            {
                "n": n,
                "recovered": len(python_run["positive"]) + len(python_run["negative"]),
                "python": {
                    key: round(python_run[key], 6)
                    for key in ("encode_s", "subtract_s", "decode_s", "total_s")
                },
                "numpy": {
                    key: round(numpy_run[key], 6)
                    for key in ("encode_s", "subtract_s", "decode_s", "total_s")
                },
                "speedup": round(python_run["total_s"] / numpy_run["total_s"], 2),
                "numpy_resolved_backend": numpy_run["backend"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

import pytest

needs_numpy = pytest.mark.skipif(
    not NumpyCellStore.available(), reason="NumPy not installed"
)


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("n", SIZES)
def test_backend_encode_subtract_decode(benchmark, backend, n):
    from conftest import run_once

    if backend == "numpy" and not NumpyCellStore.available():
        pytest.skip("NumPy not installed")
    run = run_once(benchmark, _run_backend, backend, n, seed=n)
    assert run["positive"] and run["n"] == n


@needs_numpy
def test_numpy_backend_speedup_floor(benchmark):
    """The tentpole acceptance check: >= 5x end-to-end at the largest size."""
    from conftest import run_once

    rows = run_once(benchmark, compare, sizes=(SIZES[-1],))
    assert rows[0]["numpy_resolved_backend"] == "numpy"
    assert rows[0]["speedup"] >= SPEEDUP_FLOOR, rows


def main() -> None:
    args = benchmark_parser(
        "IBLT cell-store backend comparison",
        Path(__file__).resolve().parent.parent / "BENCH_backends.json",
    ).parse_args()
    if not NumpyCellStore.available():
        sys.exit("NumPy is required for the backend comparison")
    rows = compare(seed=args.seed)
    for row in rows:
        print(
            f"n={row['n']:>7}  python={row['python']['total_s']:.3f}s  "
            f"numpy={row['numpy']['total_s']:.3f}s  speedup={row['speedup']:.1f}x  "
            f"recovered={row['recovered']}"
        )
    largest = rows[-1]
    if largest["speedup"] < SPEEDUP_FLOOR:
        sys.exit(
            f"speedup {largest['speedup']}x below the {SPEEDUP_FLOOR}x floor"
        )
    output = args.output
    write_benchmark_record(
        output,
        benchmark="bench_backend_comparison",
        description=(
            "IBLT encode+subtract+decode wall-clock per cell-store "
            "backend; identical recovered sets asserted per size"
        ),
        config=benchmark_config(args.seed, sizes=list(SIZES)),
        key_bits=KEY_BITS,
        speedup_floor=SPEEDUP_FLOOR,
        results=rows,
    )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
