"""E14 -- naive vs structured protocols: who wins where.

Paper claim (Theorem 3.3 vs Theorems 3.5/3.9): the naive protocol pays
``min(h log u, u)`` bits per differing child -- unbeatable when children are
tiny, hopeless when children are dense (h = Theta(u)).  The benchmark sweeps
the child size and shows the crossover.
"""

from conftest import run_once
from repro.bench.reporting import format_table
from repro.core.setsofsets import reconcile_multiround, reconcile_naive
from repro.workloads import sets_of_sets_instance

UNIVERSE = 1024
NUM_CHILDREN = 48
NUM_CHANGES = 6


def _sweep():
    rows = []
    for child_size in (4, 32, 256, 512):
        instance = sets_of_sets_instance(
            NUM_CHILDREN, child_size, UNIVERSE, NUM_CHANGES,
            seed=child_size, max_children_touched=3,
        )
        naive = reconcile_naive(
            instance.alice, instance.bob, 2 * instance.differing_children,
            UNIVERSE, instance.max_child_size, seed=5,
        )
        structured = reconcile_multiround(
            instance.alice, instance.bob, instance.planted_difference,
            UNIVERSE, instance.max_child_size, seed=5,
        )
        rows.append(
            {
                "h (child size)": child_size,
                "naive bits": naive.total_bits,
                "multi-round bits": structured.total_bits,
                "winner": "naive" if naive.total_bits < structured.total_bits else "structured",
                "both ok": naive.success and structured.success,
            }
        )
    return rows


def test_naive_vs_structured_crossover(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(format_table(rows, "E14: naive vs structured protocols across child sizes"))
    assert all(row["both ok"] for row in rows)
    # Small children: naive wins.  Dense children (h = Theta(u)): structured wins.
    assert rows[0]["winner"] == "naive"
    assert rows[-1]["winner"] == "structured"
