"""E14 -- naive vs structured protocols: who wins where.

Paper claim (Theorem 3.3 vs Theorems 3.5/3.9): the naive protocol pays
``min(h log u, u)`` bits per differing child -- unbeatable when children are
tiny, hopeless when children are dense (h = Theta(u)).  The benchmark sweeps
the child size and shows the crossover.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.core.setsofsets import reconcile_multiround, reconcile_naive
from repro.workloads import sets_of_sets_instance

UNIVERSE = 1024
NUM_CHILDREN = 48
NUM_CHANGES = 6
CHILD_SIZES = (4, 32, 256, 512)
TITLE = "E14: naive vs structured protocols across child sizes"


def sweep(seed=0):
    rows = []
    for child_size in CHILD_SIZES:
        instance = sets_of_sets_instance(
            NUM_CHILDREN, child_size, UNIVERSE, NUM_CHANGES,
            seed=seed + child_size, max_children_touched=3,
        )
        naive = reconcile_naive(
            instance.alice, instance.bob, 2 * instance.differing_children,
            UNIVERSE, instance.max_child_size, seed=seed + 5,
        )
        structured = reconcile_multiround(
            instance.alice, instance.bob, instance.planted_difference,
            UNIVERSE, instance.max_child_size, seed=seed + 5,
        )
        rows.append(
            {
                "h (child size)": child_size,
                "naive bits": naive.total_bits,
                "multi-round bits": structured.total_bits,
                "winner": "naive" if naive.total_bits < structured.total_bits else "structured",
                "both ok": naive.success and structured.success,
            }
        )
    return rows


def test_naive_vs_structured_crossover(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["both ok"] for row in rows)
    # Small children: naive wins.  Dense children (h = Theta(u)): structured wins.
    assert rows[0]["winner"] == "naive"
    assert rows[-1]["winner"] == "structured"


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_naive_crossover",
            description="Naive vs multi-round protocols as the child size "
            "grows: the crossover between tiny and dense children",
            config=benchmark_config(
                args.seed,
                universe=UNIVERSE,
                num_children=NUM_CHILDREN,
                num_changes=NUM_CHANGES,
                child_sizes=list(CHILD_SIZES),
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
