"""Fleet saturation: ramp concurrent clients against W-worker sync fleets.

For each fleet size ``W`` in {1, 2, 4} this benchmark starts a
:class:`repro.service.SyncFleet` whose workers each accept at most
``PER_WORKER_INFLIGHT`` concurrent sessions (the supervisor sheds the rest
with a coded ``at-capacity`` refusal -- never an unbounded queue), then
ramps closed-loop clients through under-, at-, and over-budget levels and
records the saturated sessions/s plus the rejection rate under overload.

**What the speedup measures.**  Sessions are *latency-dominated*: every
server-sent frame pays an emulated one-way WAN delay, so a session holds
its admission slot for ~wire time while costing little CPU.  Saturated
throughput is therefore the admitted-capacity ceiling ``W x
PER_WORKER_INFLIGHT / session_time``, which scales with W even on the
single-core CI runners this repository benchmarks on (the recorded run's
host has one core; aggregate CPU use stays well below it).  On a multi-core
host the same topology additionally scales the CPU ceiling, because each
worker is a separate process -- that is the fleet's reason to exist -- but
the number recorded here is deliberately the scheduling/admission scaling,
which is the part a one-core runner can regression-check honestly.

Every completed session's recovered set is verified against the server
dataset; a mismatch counts as a failure and fails the run.

Run under pytest (the 2-worker case is the CI smoke), standalone with
``--smoke`` for a quick correctness pass, or standalone in full::

    PYTHONPATH=src python benchmarks/bench_fleet_saturation.py

which merges fleet saturation rows into ``BENCH_service.json`` at the
repository root (preserving the single-server throughput rows).
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import load_benchmark_record, write_benchmark_record
from repro.errors import ReproError, SessionRejectedError
from repro.protocols.options import ReconcileOptions
from repro.service import SyncFleet, areconcile, fleet_supported
from repro.service.__main__ import demo_set, mutate_set

UNIVERSE = 1 << 20
SET_SIZE = 128
DIFFERENCES = 4
DIFFERENCE_BOUND = 8
PROTOCOL = "ibf"
#: Emulated one-way WAN delay per server-sent frame: sessions hold their
#: admission slot for wire time, not CPU time.
ONE_WAY_LATENCY_S = 0.030
PER_WORKER_INFLIGHT = 4
WORKER_COUNTS = (1, 2, 4)
MEASURE_WINDOW_S = 2.5
#: Regression floor on saturated sessions/s at W=4 relative to W=1
#: (the acceptance run recorded >= 2.5x; the floor leaves headroom for
#: noisy CI runners).
FLEET_SPEEDUP_FLOOR = 2.0


async def _run_level(
    port: int,
    clients: int,
    duration: float,
    *,
    base: set,
    mine: set,
    seed: int,
) -> dict:
    """Closed-loop load: ``clients`` tasks sync back-to-back for ``duration``."""
    options = ReconcileOptions(
        seed=seed, universe_size=UNIVERSE, difference_bound=DIFFERENCE_BOUND
    )
    counters = {"completed": 0, "rejected": 0, "failed": 0}
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration

    async def client_loop() -> None:
        while loop.time() < deadline:
            try:
                result = await areconcile(
                    "127.0.0.1", port, PROTOCOL, set(mine), options=options
                )
            except SessionRejectedError:
                counters["rejected"] += 1
                # The slot frees when some in-flight session's frames finish
                # crossing the emulated wire; back off roughly that long.
                await asyncio.sleep(ONE_WAY_LATENCY_S / 2)
            except (ReproError, OSError):
                counters["failed"] += 1
                await asyncio.sleep(ONE_WAY_LATENCY_S)
            else:
                if result.success and result.recovered == base:
                    counters["completed"] += 1
                else:
                    counters["failed"] += 1

    started = time.perf_counter()
    await asyncio.gather(*(client_loop() for _ in range(clients)))
    elapsed = time.perf_counter() - started
    total = counters["completed"] + counters["rejected"]
    return {
        "clients": clients,
        "sessions_per_s": round(counters["completed"] / elapsed, 2),
        "rejected_per_s": round(counters["rejected"] / elapsed, 2),
        "rejection_rate": round(counters["rejected"] / total, 4) if total else 0.0,
        "failed": counters["failed"],
    }


async def saturate(
    workers: int,
    *,
    seed: int,
    per_worker_inflight: int = PER_WORKER_INFLIGHT,
    window: float = MEASURE_WINDOW_S,
    levels: tuple[int, ...] | None = None,
) -> dict:
    """Ramp client levels against one fleet; return the saturation row."""
    base = demo_set(UNIVERSE, SET_SIZE, seed)
    mine = mutate_set(base, UNIVERSE, DIFFERENCES, seed)
    budget = workers * per_worker_inflight
    if levels is None:
        levels = tuple(sorted({max(1, budget // 2), budget, budget * 2}))
    ramp = []
    async with SyncFleet(
        {PROTOCOL: set(base)},
        workers=workers,
        seed=seed,
        latency=ONE_WAY_LATENCY_S,
        per_worker_inflight=per_worker_inflight,
    ) as fleet:
        for clients in levels:
            ramp.append(
                await _run_level(
                    fleet.port, clients, window, base=base, mine=mine, seed=seed
                )
            )
        shed = fleet.metrics.snapshot()
        await fleet.adrain()
    failures = sum(level["failed"] for level in ramp)
    if failures:
        raise SystemExit(f"{failures} session(s) failed or recovered wrong data")
    best = max(ramp, key=lambda level: level["sessions_per_s"])
    overloaded = ramp[-1]
    return {
        "workers": workers,
        "per_worker_inflight": per_worker_inflight,
        "one_way_latency_ms": ONE_WAY_LATENCY_S * 1e3,
        "saturated_clients": best["clients"],
        "sessions_per_s": best["sessions_per_s"],
        "sessions_per_s_per_worker": round(best["sessions_per_s"] / workers, 2),
        "rejection_rate_at_overload": overloaded["rejection_rate"],
        "sessions_shed_capacity": shed.get("sessions_shed_capacity", 0),
        "ramp": ramp,
    }


async def compare(seed: int, worker_counts: tuple[int, ...] = WORKER_COUNTS) -> list:
    rows = []
    for workers in worker_counts:
        rows.append(await saturate(workers, seed=seed))
    baseline = rows[0]["sessions_per_s"]
    for row in rows[1:]:
        row["fleet_speedup"] = round(row["sessions_per_s"] / baseline, 2)
    rows[-1]["fleet_speedup_floor"] = FLEET_SPEEDUP_FLOOR
    return rows


# ---------------------------------------------------------------------------
# CI smoke (pytest)
# ---------------------------------------------------------------------------

needs_fleet = pytest.mark.skipif(
    not fleet_supported(), reason="fleet needs POSIX descriptor passing"
)


@needs_fleet
@pytest.mark.timeout(120)
def test_smoke_fleet_serves_and_sheds():
    """2-worker fleet under an over-budget burst: sessions complete with the
    right recovered set and the excess is shed (counted, not queued)."""

    async def run() -> dict:
        return await saturate(
            2, seed=2018, per_worker_inflight=2, window=1.0, levels=(8,)
        )

    row = asyncio.run(run())
    assert row["sessions_per_s"] > 0
    assert row["sessions_shed_capacity"] > 0
    assert row["rejection_rate_at_overload"] > 0


def main() -> None:
    parser = benchmark_parser(
        "Fleet saturation: sessions/s and rejection rates at W workers",
        Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick 2-worker correctness pass; no record written",
    )
    args = parser.parse_args()
    if not fleet_supported():
        sys.exit("the sync fleet needs POSIX descriptor passing")
    if args.smoke:
        row = asyncio.run(
            saturate(2, seed=args.seed, per_worker_inflight=2, window=1.0, levels=(8,))
        )
        print(
            f"smoke: workers=2  sessions/s={row['sessions_per_s']}  "
            f"shed={row['sessions_shed_capacity']}"
        )
        if not (row["sessions_per_s"] > 0 and row["sessions_shed_capacity"] > 0):
            sys.exit("smoke expected served sessions and counted rejections")
        return
    rows = asyncio.run(compare(args.seed))
    for row in rows:
        speedup = row.get("fleet_speedup")
        print(
            f"workers={row['workers']}  saturated={row['sessions_per_s']:7.1f}/s  "
            f"per-worker={row['sessions_per_s_per_worker']:6.1f}/s  "
            f"reject@2x={row['rejection_rate_at_overload']:.0%}"
            + (f"  speedup={speedup:.2f}x" if speedup is not None else "")
        )
    final = rows[-1]
    if final["fleet_speedup"] < FLEET_SPEEDUP_FLOOR:
        sys.exit(
            f"fleet speedup {final['fleet_speedup']}x at {final['workers']} workers "
            f"is below the {FLEET_SPEEDUP_FLOOR}x floor"
        )

    # Merge into the shared service record: keep the single-server
    # throughput rows and top-level fields, replace only the fleet rows.
    try:
        existing = load_benchmark_record(args.output)
    except FileNotFoundError:
        existing = {}
    kept = [row for row in existing.get("results", []) if "workers" not in row]
    extra = {
        key: existing[key]
        for key in ("config", "speedup_floor")
        if key in existing
    }
    extra["fleet"] = {
        "benchmark": "bench_fleet_saturation",
        "description": (
            "closed-loop clients ramped against W-worker fleets with a "
            f"{PER_WORKER_INFLIGHT}-session per-worker admission budget under "
            f"emulated {ONE_WAY_LATENCY_S * 1e3:g} ms one-way latency; "
            "saturated sessions/s is the admitted-capacity ceiling (the "
            "recording host has one core), excess hellos are shed with coded "
            "refusals and counted, and every recovered set is verified"
        ),
        "config": benchmark_config(
            args.seed,
            protocol=PROTOCOL,
            set_size=SET_SIZE,
            differences=DIFFERENCES,
            per_worker_inflight=PER_WORKER_INFLIGHT,
            one_way_latency_s=ONE_WAY_LATENCY_S,
            measure_window_s=MEASURE_WINDOW_S,
        ),
        "fleet_speedup_floor": FLEET_SPEEDUP_FLOOR,
    }
    write_benchmark_record(
        args.output,
        benchmark=existing.get("benchmark", "bench_service_throughput"),
        description=existing.get(
            "description", "sync service throughput and fleet saturation"
        ),
        **extra,
        results=kept + rows,
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
