"""E8 -- Theorems 5.2 / 5.3: degree-ordering random graph reconciliation.

Paper claims: (a) G(n, p) is (h, d+1, 2d+1)-separated with probability
1 - delta for the (asymptotic) parameter range of Theorem 5.3 -- separation
improves with density and size and degrades with d; (b) when the graph is
separated, one round and O(d (log d log h + log n)) bits reconcile the
unlabeled graphs (Theorem 5.2, success probability >= 2/3).

At laptop scale vanilla G(n, p) is essentially never separated (the theorem
is asymptotic), so part (b) runs on the planted-separation generator
documented in DESIGN.md; part (a) reports the separation trend on vanilla
graphs.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.graphs import is_degree_separated, reconcile_degree_order
from repro.graphs.random_graphs import (
    gnp_random_graph,
    planted_separated_graph,
    reconciliation_pair,
)

SEPARATION_CONFIGS = ((100, 0.2), (100, 0.5), (300, 0.5))
RECON_N, RECON_P, RECON_D, RECON_H = 400, 0.5, 2, 40
TITLE_A = "E8a: (h=3, d+1, 2d+1)-separation of vanilla G(n,p)"
TITLE_B = "E8b: degree-ordering reconciliation (planted separation)"


def separation_sweep(seed=0):
    rows = []
    for n, p in SEPARATION_CONFIGS:
        for d in (1, 3):
            separated = sum(
                is_degree_separated(gnp_random_graph(n, p, seed + offset), 3, d + 1, 2 * d + 1)
                for offset in range(5)
            )
            rows.append({"n": n, "p": p, "d": d, "separated/5": separated})
    return rows


def reconciliation_rows(seed=0):
    n, p, d, h = RECON_N, RECON_P, RECON_D, RECON_H
    rows = []
    successes = 0
    for offset in range(3):
        base = planted_separated_graph(n, p, h, degree_gap=d + 1, seed=seed + offset + 40)
        pair = reconciliation_pair(n, p, d, seed=seed + offset + 140, base=base)
        result = reconcile_degree_order(pair.alice, pair.bob, d, h, seed=seed + offset)
        successes += bool(result.success)
        rows.append(
            {
                "seed": seed + offset,
                "success": result.success,
                "bits": result.total_bits,
                "rounds": result.num_rounds,
                "adjacency-matrix bits": n * (n - 1) // 2,
            }
        )
    return rows, successes


def test_separation_probability_trend(benchmark):
    """Theorem 5.3 shape: separation improves with p and n, degrades with d."""
    rows = run_once(benchmark, separation_sweep)
    print()
    print(format_table(rows, TITLE_A))
    # Denser/larger graphs are never less separated than sparse/small ones
    # for the same d (the asymptotic trend of Theorem 5.3).
    for d in (1, 3):
        by_config = {(row["n"], row["p"]): row["separated/5"] for row in rows if row["d"] == d}
        assert by_config[(300, 0.5)] >= by_config[(100, 0.2)]


def test_degree_order_reconciliation(benchmark):
    """Theorem 5.2 on planted-separation instances: success and communication."""
    rows, successes = run_once(benchmark, reconciliation_rows)
    print()
    print(format_table(rows, TITLE_B))
    # Theorem 5.2 promises success probability >= 2/3; require it empirically.
    assert successes >= 2
    for row in rows:
        if row["success"]:
            assert row["rounds"] == 1
            assert row["bits"] < row["adjacency-matrix bits"] / 4


def main() -> None:
    args = benchmark_parser(
        "E8: degree-ordering separation and reconciliation of G(n,p)"
    ).parse_args()
    separation = separation_sweep(args.seed)
    print(format_table(separation, TITLE_A))
    rows, successes = reconciliation_rows(args.seed)
    print(format_table(rows, TITLE_B))
    print(f"successes: {successes}/3")
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_random_graph_degree_order",
            description="Degree-ordering separation trend on vanilla G(n,p) "
            "and reconciliation on planted-separation instances",
            config=benchmark_config(
                args.seed,
                separation_configs=[list(config) for config in SEPARATION_CONFIGS],
                reconciliation=[RECON_N, RECON_P, RECON_D, RECON_H],
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
