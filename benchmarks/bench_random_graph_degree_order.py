"""E8 -- Theorems 5.2 / 5.3: degree-ordering random graph reconciliation.

Paper claims: (a) G(n, p) is (h, d+1, 2d+1)-separated with probability
1 - delta for the (asymptotic) parameter range of Theorem 5.3 -- separation
improves with density and size and degrades with d; (b) when the graph is
separated, one round and O(d (log d log h + log n)) bits reconcile the
unlabeled graphs (Theorem 5.2, success probability >= 2/3).

At laptop scale vanilla G(n, p) is essentially never separated (the theorem
is asymptotic), so part (b) runs on the planted-separation generator
documented in DESIGN.md; part (a) reports the separation trend on vanilla
graphs.
"""

from conftest import run_once
from repro.bench.reporting import format_table
from repro.graphs import is_degree_separated, reconcile_degree_order
from repro.graphs.random_graphs import (
    gnp_random_graph,
    planted_separated_graph,
    reconciliation_pair,
)


def test_separation_probability_trend(benchmark):
    """Theorem 5.3 shape: separation improves with p and n, degrades with d."""

    def sweep():
        rows = []
        for n, p in ((100, 0.2), (100, 0.5), (300, 0.5)):
            for d in (1, 3):
                separated = sum(
                    is_degree_separated(gnp_random_graph(n, p, seed), 3, d + 1, 2 * d + 1)
                    for seed in range(5)
                )
                rows.append({"n": n, "p": p, "d": d, "separated/5": separated})
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, "E8a: (h=3, d+1, 2d+1)-separation of vanilla G(n,p)"))
    # Denser/larger graphs are never less separated than sparse/small ones
    # for the same d (the asymptotic trend of Theorem 5.3).
    for d in (1, 3):
        by_config = {(row["n"], row["p"]): row["separated/5"] for row in rows if row["d"] == d}
        assert by_config[(300, 0.5)] >= by_config[(100, 0.2)]


def test_degree_order_reconciliation(benchmark):
    """Theorem 5.2 on planted-separation instances: success and communication."""
    n, p, d, h = 400, 0.5, 2, 40

    def run():
        rows = []
        successes = 0
        for seed in range(3):
            base = planted_separated_graph(n, p, h, degree_gap=d + 1, seed=seed + 40)
            pair = reconciliation_pair(n, p, d, seed=seed + 140, base=base)
            result = reconcile_degree_order(pair.alice, pair.bob, d, h, seed=seed)
            successes += bool(result.success)
            rows.append(
                {
                    "seed": seed,
                    "success": result.success,
                    "bits": result.total_bits,
                    "rounds": result.num_rounds,
                    "adjacency-matrix bits": n * (n - 1) // 2,
                }
            )
        return rows, successes

    rows, successes = run_once(benchmark, run)
    print()
    print(format_table(rows, "E8b: degree-ordering reconciliation (planted separation)"))
    # Theorem 5.2 promises success probability >= 2/3; require it empirically.
    assert successes >= 2
    for row in rows:
        if row["success"]:
            assert row["rounds"] == 1
            assert row["bits"] < row["adjacency-matrix bits"] / 4
