"""Sets-of-sets child-encoding comparison: per-child loop vs batch pipeline.

The structured set-of-sets protocols (Section 3) encode every child set of a
parent into a *(child IBLT, hash)* key.  Built one child at a time through
``ChildEncodingScheme.encode``, the ``O(n)`` encoding term dominates every
structured protocol; the batched pipeline
(:class:`repro.iblt.multi.IBLTArray` behind
``ChildEncodingScheme.encode_all``) flattens the parent to
``(child_index, element)`` pairs, hashes the whole flat array once and
scatters it into one ``(s, num_cells)`` cell tensor.

This benchmark times both paths per cell-store backend, asserting
bit-identical encodings throughout, and runs one full
``reconcile_iblt_of_iblts`` exchange per backend asserting identical
transcripts and recovered sets.  The acceptance bar is a >= 4x ``encode_all``
speedup over the per-child loop at ``s = 2000`` small children on the numpy
backend.

Run under pytest like the other benchmarks (the small-``s`` cases double as
the CI smoke test), or standalone::

    PYTHONPATH=src python benchmarks/bench_setsofsets_encoding.py

which also rewrites ``BENCH_setsofsets.json`` at the repository root.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import write_benchmark_record
from repro.core.setsofsets.encoding import ChildEncodingScheme
from repro.core.setsofsets.iblt_of_iblts import reconcile_iblt_of_iblts
from repro.core.setsofsets.types import SetOfSets
from repro.iblt import IBLTParameters, NumpyCellStore

UNIVERSE = 1 << 20
CHILD_SIZE = 8
CHILD_DIFFERENCE_BOUND = 4  # sizes the per-child sketches (small children)
CHILD_HASH_BITS = 48
S_VALUES = (500, 2000)
HEADLINE_S = 2000
SPEEDUP_FLOOR = 4.0  # acceptance bar for encode_all at s = HEADLINE_S, numpy
ROUNDS = 5  # interleaved measurement rounds per (backend, s)


def _scheme(seed: int = DEFAULT_SEED) -> ChildEncodingScheme:
    """The child encoding scheme the flat IBLT-of-IBLTs protocol uses."""
    params = IBLTParameters.for_difference(
        CHILD_DIFFERENCE_BOUND,
        UNIVERSE.bit_length(),
        seed,
        num_hashes=3,
        checksum_bits=24,
        count_bits=16,
    )
    return ChildEncodingScheme(params, CHILD_HASH_BITS, seed + 1)


def _children(num_children: int, seed: int = 7) -> list[frozenset[int]]:
    rng = random.Random(seed)
    return [
        frozenset(rng.sample(range(UNIVERSE), CHILD_SIZE))
        for _ in range(num_children)
    ]


def _time_paths(scheme, children, backend: str) -> tuple[float, float, list[int]]:
    """One timed run of (per-child loop, batch) on one backend."""
    start = time.perf_counter()
    loop_keys = [scheme.encode(child, backend=backend) for child in children]
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    batch_keys = scheme.encode_all(children, backend=backend)
    batch_s = time.perf_counter() - start
    assert batch_keys == loop_keys, f"{backend}: batch encodings differ from loop"
    return loop_s, batch_s, batch_keys


def compare(
    s_values=S_VALUES, rounds: int = ROUNDS, seed: int = DEFAULT_SEED
) -> list[dict]:
    """Time both paths per backend and s; assert bit-identical encodings.

    Measurement rounds for the two backends are interleaved so load spikes
    on shared machines hit both sides, and best-of-round times are compared
    (the standard microbenchmark guard against one-sided noise).
    """
    backends = ["python"] + (["numpy"] if NumpyCellStore.available() else [])
    scheme = _scheme(seed)
    rows = []
    for num_children in s_values:
        children = _children(num_children, seed=seed + 7)
        best = {backend: [float("inf"), float("inf")] for backend in backends}
        keys = {}
        for _ in range(rounds):
            for backend in backends:
                loop_s, batch_s, batch_keys = _time_paths(scheme, children, backend)
                best[backend][0] = min(best[backend][0], loop_s)
                best[backend][1] = min(best[backend][1], batch_s)
                keys[backend] = batch_keys
        assert len(set(map(tuple, keys.values()))) == 1, "encodings differ by backend"
        row: dict = {"s": num_children, "child_size": CHILD_SIZE}
        for backend in backends:
            loop_s, batch_s = best[backend]
            row[backend] = {
                "encode_loop_s": round(loop_s, 6),
                "encode_all_s": round(batch_s, 6),
            }
            if backend == "numpy":
                row["speedup"] = round(loop_s / batch_s, 2)
        row["identical_encodings"] = True
        rows.append(row)
    return rows


def protocol_cross_backend(num_children: int = 64, seed: int = 11) -> dict:
    """One flat IBLT-of-IBLTs exchange per backend: identical transcripts."""
    rng = random.Random(seed)
    children = _children(num_children, seed=seed)
    bob_children = [set(child) for child in children]
    for index in rng.sample(range(num_children), 3):
        bob_children[index].add(rng.randrange(UNIVERSE))
    alice = SetOfSets(children)
    bob = SetOfSets(bob_children)
    backends = ["python"] + (["numpy"] if NumpyCellStore.available() else [])
    results = {}
    for backend in backends:
        result = reconcile_iblt_of_iblts(
            alice, bob, 8, UNIVERSE, seed=seed, backend=backend
        )
        assert result.success, f"{backend}: protocol failed"
        assert result.recovered == alice, f"{backend}: wrong recovery"
        results[backend] = result
    fingerprints = {
        backend: [
            (m.sender, m.label, m.size_bits) for m in result.transcript.messages
        ]
        for backend, result in results.items()
    }
    assert len(set(map(tuple, fingerprints.values()))) == 1, "transcripts differ"
    return {
        "s": num_children,
        "backends": backends,
        "identical_transcripts": True,
        "identical_recovered_sets": True,
    }


# ---------------------------------------------------------------------------
# pytest entry points (the small-s cases are the CI smoke test)
# ---------------------------------------------------------------------------

import pytest


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_encode_smoke_small_s(benchmark, backend):
    """Loop-vs-batch encoding at small s under each backend (CI smoke)."""
    from conftest import run_once

    if backend == "numpy" and not NumpyCellStore.available():
        pytest.skip("NumPy not installed")
    scheme = _scheme()
    children = _children(200)
    loop_s, batch_s, batch_keys = run_once(
        benchmark, _time_paths, scheme, children, backend
    )
    assert len(batch_keys) == 200


def test_identical_encodings_across_backends(benchmark):
    from conftest import run_once

    rows = run_once(benchmark, compare, s_values=(200,), rounds=1)
    assert all(row["identical_encodings"] for row in rows)


def test_identical_protocol_transcripts(benchmark):
    from conftest import run_once

    row = run_once(benchmark, protocol_cross_backend)
    assert row["identical_transcripts"] and row["identical_recovered_sets"]


@pytest.mark.skipif(not NumpyCellStore.available(), reason="NumPy not installed")
def test_numpy_encode_all_speedup_floor(benchmark):
    """The tentpole acceptance check: >= 4x encode_all at s=2000, numpy."""
    from conftest import run_once

    rows = run_once(benchmark, compare, s_values=(HEADLINE_S,))
    assert rows[0]["speedup"] >= SPEEDUP_FLOOR, rows


def main() -> None:
    args = benchmark_parser(
        "Sets-of-sets child-encoding comparison",
        Path(__file__).resolve().parent.parent / "BENCH_setsofsets.json",
    ).parse_args()
    if not NumpyCellStore.available():
        sys.exit("NumPy is required for the sets-of-sets encoding comparison")
    rows = compare(seed=args.seed)
    for row in rows:
        numpy_times = row["numpy"]
        python_times = row["python"]
        print(
            f"s={row['s']:>5}  "
            f"loop={numpy_times['encode_loop_s']*1000:8.2f} ms  "
            f"batch={numpy_times['encode_all_s']*1000:7.2f} ms  "
            f"speedup={row['speedup']:.1f}x  "
            f"(python loop={python_times['encode_loop_s']*1000:.2f} ms)"
        )
    protocol_row = protocol_cross_backend(seed=args.seed)
    headline = next(row for row in rows if row["s"] == HEADLINE_S)
    if headline["speedup"] < SPEEDUP_FLOOR:
        sys.exit(
            f"encode_all speedup {headline['speedup']}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    output = args.output
    write_benchmark_record(
        output,
        benchmark="bench_setsofsets_encoding",
        description=(
            "Per-child loop vs batched IBLTArray child encoding per cell-store "
            "backend; bit-identical encodings, transcripts and recovered sets "
            "asserted across backends"
        ),
        config=benchmark_config(args.seed, s_values=list(S_VALUES)),
        universe=UNIVERSE,
        child_size=CHILD_SIZE,
        child_difference_bound=CHILD_DIFFERENCE_BOUND,
        speedup_floor=SPEEDUP_FLOOR,
        protocol_check=protocol_row,
        results=rows,
    )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
