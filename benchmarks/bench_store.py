"""Sketch-store serving: O(d) incremental syncs vs O(n) from-scratch encodes.

A storeless server re-encodes its whole dataset for every session: build the
IBLT over all n elements, fold the whole-set verification hash over all n
elements, serialize.  A :class:`repro.store.SketchStore` server pays O(d)
per mutation batch (in-place cell updates, hash toggles) and O(cells(d)) to
copy and serialize the live table -- independent of n.

The measured loop emulates steady-state serving: per repetition a seeded
``d``-element delta (half inserts, half deletes) lands on the dataset, and
each path then produces alice's known-``d`` ``"set IBLT"`` message bytes --
the store by ``apply`` + live-table copy, the baseline by a full re-encode
of the mutated set.  The two byte strings are asserted identical on every
repetition (linearity makes the store path exact, not approximate).

The acceptance bar is >= 20x at n = 1e6, d = 100 (recorded floor 5x, the
regression threshold in ``BENCH_store.json``).

Run under pytest (small-n cases are the CI smoke), or standalone::

    PYTHONPATH=src python benchmarks/bench_store.py

which also rewrites ``BENCH_store.json`` at the repository root.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import write_benchmark_record
from repro.protocols.parties.setrecon import ibf_alice_known
from repro.store import SketchConfig, SketchStore, StoreView
from repro.store.parties import stored_ibf_alice_known

UNIVERSE = 1 << 40
DIFFERENCE = 100  # delta size per repetition (half inserts, half deletes)
SET_SIZES = (10_000, 100_000, 1_000_000)
REPS = 3
SPEEDUP_FLOOR = 5.0  # recorded regression threshold; target is >= 20x at 1e6
TARGET = 20.0
KEY = "bench"


def make_dataset(seed: int, size: int) -> set[int]:
    return set(random.Random(seed).sample(range(UNIVERSE), size))


def make_delta(rng: random.Random, dataset: set[int]) -> tuple[list[int], list[int]]:
    """A seeded d-element delta disjoint from itself: d/2 fresh inserts,
    d/2 deletes of present keys."""
    deletes = rng.sample(sorted(dataset)[: 4 * DIFFERENCE], DIFFERENCE // 2)
    inserts: list[int] = []
    while len(inserts) < DIFFERENCE - DIFFERENCE // 2:
        key = rng.randrange(UNIVERSE)
        if key not in dataset:
            inserts.append(key)
    return sorted(inserts), sorted(deletes)


def first_message_bytes(party) -> bytes:
    """Alice's opening ``"set IBLT"`` message, serialized by its own codec."""
    send = next(party)
    return send.codec.encode(send.payload)


def measure_row(seed: int, size: int, reps: int = REPS) -> tuple[dict, dict]:
    """One (set size) row: per-rep delta, then serve both ways.

    Returns the result row plus the per-phase profile timings.
    """
    dataset = make_dataset(seed, size)
    rng = random.Random(seed + size)
    config = SketchConfig(UNIVERSE, seed=seed)
    ctx = config.context()
    store = SketchStore()
    view = StoreView(store, KEY, config, dataset)

    prime_start = time.perf_counter()
    first_message_bytes(stored_ibf_alice_known(view, DIFFERENCE, ctx))
    prime_s = time.perf_counter() - prime_start

    apply_s = serve_s = scratch_s = 0.0
    for _ in range(reps):
        inserts, deletes = make_delta(rng, dataset)

        start = time.perf_counter()
        store.apply(KEY, inserts, deletes)
        applied = time.perf_counter()
        cached_bytes = first_message_bytes(
            stored_ibf_alice_known(view, DIFFERENCE, ctx)
        )
        apply_s += applied - start
        serve_s += time.perf_counter() - applied

        dataset.difference_update(deletes)
        dataset.update(inserts)

        start = time.perf_counter()
        scratch_bytes = first_message_bytes(
            ibf_alice_known(dataset, DIFFERENCE, ctx)
        )
        scratch_s += time.perf_counter() - start

        assert cached_bytes == scratch_bytes, (
            f"store-served message diverged from the re-encode at n={size}"
        )

    cached_s = apply_s + serve_s
    row = {
        "set_size": size,
        "difference": DIFFERENCE,
        "reps": reps,
        "scratch_encode_s": round(scratch_s / reps, 6),
        "cached_serve_s": round(cached_s / reps, 6),
        "speedup": round(scratch_s / cached_s, 2),
        "identical_message_bytes": True,
    }
    profile = {
        f"n{size}_prime_encode_s": round(prime_s, 6),
        f"n{size}_apply_s": round(apply_s / reps, 6),
        f"n{size}_serve_s": round(serve_s / reps, 6),
    }
    return row, profile


def compare(seed: int = DEFAULT_SEED) -> tuple[list[dict], dict]:
    rows, profile = [], {}
    for size in SET_SIZES:
        row, phases = measure_row(seed, size)
        rows.append(row)
        profile.update(phases)
    return rows, profile


# ---------------------------------------------------------------------------
# pytest entry points (small-n cases are the CI smoke test)
# ---------------------------------------------------------------------------

import pytest


@pytest.mark.timeout(300)
def test_smoke_store_serves_identical_bytes(benchmark):
    from conftest import run_once

    row, _ = run_once(benchmark, measure_row, DEFAULT_SEED, 2_000, 2)
    assert row["identical_message_bytes"]
    assert row["cached_serve_s"] > 0 and row["scratch_encode_s"] > 0


@pytest.mark.timeout(300)
def test_smoke_store_beats_reencode_at_modest_size(benchmark):
    """Even at n = 50k (far below the recorded rows) the store path wins."""
    from conftest import run_once

    row, _ = run_once(benchmark, measure_row, DEFAULT_SEED, 50_000, 2)
    assert row["speedup"] > 1.0, row


def main() -> None:
    args = benchmark_parser(
        "Sketch-store incremental serving vs from-scratch encodes",
        Path(__file__).resolve().parent.parent / "BENCH_store.json",
    ).parse_args()
    rows, profile = compare(seed=args.seed)
    for row in rows:
        print(
            f"n={row['set_size']:>9,}  d={row['difference']}  "
            f"scratch={row['scratch_encode_s']:.4f}s  "
            f"cached={row['cached_serve_s']:.6f}s  "
            f"speedup={row['speedup']:.1f}x"
        )
    headline = rows[-1]
    if headline["speedup"] < TARGET:
        sys.exit(
            f"store speedup {headline['speedup']}x at n={headline['set_size']} "
            f"is below the {TARGET}x target"
        )
    config = benchmark_config(
        args.seed,
        universe=UNIVERSE,
        difference=DIFFERENCE,
        set_sizes=list(SET_SIZES),
        reps=REPS,
    )
    if args.profile:
        config["profile"] = profile
    write_benchmark_record(
        args.output,
        benchmark="bench_store",
        description=(
            "Serving the known-d 'set IBLT' message from a live SketchStore "
            "(O(d) apply + table copy) vs re-encoding the mutated dataset "
            "from scratch (O(n) IBLT build + whole-set hash) after each "
            "100-element delta; message bytes asserted identical on every "
            "repetition"
        ),
        config=config,
        speedup_floor=SPEEDUP_FLOOR,
        results=rows,
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
