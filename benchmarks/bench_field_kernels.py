"""Field-kernel comparison: pure-Python vs vectorized NumPy GF(p) kernels.

Times the characteristic-polynomial protocol's two sides (Theorem 2.3) --
``cpi_encode`` (batch evaluation of chi_A at d+1 points) and ``cpi_decode``
(batch evaluation, Vandermonde assembly, Gaussian elimination, root
finding) -- under each registered field kernel, asserting bit-identical
``CPIMessage.evaluations`` and recovered sets.  The acceptance bar for the
vectorized kernel is a >= 8x ``cpi_decode`` speedup over the reference
kernel at ``n = 600, d = 48``.

The large-scale row (``compare_gcd_phase``, d = 10^4) times the phase that
dominates CPI decoding at large difference bounds: the Cantor-Zassenhaus
root-finding gcd chain on degree-d polynomials.  It compares the scalar
reference chain against the vectorized Euclid chain (and the compiled
kernel, resolved down the fallback chain when numba is missing), asserting
exact coefficient identity; acceptance bar >= 2x on the gcd phase.

Run under pytest like the other benchmarks (the small-``d`` cases double as
the CI smoke test), or standalone::

    PYTHONPATH=src python benchmarks/bench_field_kernels.py

which also rewrites ``BENCH_field_kernels.json`` at the repository root.
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import write_benchmark_record
from repro.core.setrecon.cpi import cpi_decode, cpi_encode
from repro.field import NumpyFieldKernel

UNIVERSE = 1 << 20
SET_SIZE = 600
DIFFERENCES = (4, 16, 48)
SPEEDUP_FLOOR = 8.0  # acceptance bar for cpi_decode at the largest d
ROUNDS = 7  # interleaved measurement rounds per (kernel, d)
GCD_DEGREE = 10_000
GCD_SPEEDUP_FLOOR = 2.0  # vectorized gcd chain vs scalar reference at d=1e4
PRIME = 1048583  # the CPI prime just above UNIVERSE


def _instance(size: int, difference: int, seed: int) -> tuple[set[int], set[int]]:
    """Two sets differing in exactly ``difference`` elements."""
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


def _run_kernel(
    kernel: str, difference: int, seed: int = DEFAULT_SEED, rounds: int = ROUNDS
) -> dict:
    """Encode + decode under one kernel; timings are best-of-``rounds``."""
    alice, bob = _instance(SET_SIZE, difference, seed=difference * 1000 + seed)

    encode_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        message = cpi_encode(alice, difference, UNIVERSE, field_kernel=kernel)
        encode_times.append(time.perf_counter() - start)

    decode_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        success, recovered = cpi_decode(
            message, bob, UNIVERSE, seed, field_kernel=kernel
        )
        decode_times.append(time.perf_counter() - start)
    assert success, f"{kernel} decode failed at d={difference}"
    assert recovered == alice, f"{kernel} recovered the wrong set at d={difference}"
    return {
        "kernel": kernel,
        "d": difference,
        "message": message,
        "recovered": recovered,
        "encode_s": min(encode_times),
        "decode_s": min(decode_times),
    }


def compare(differences=DIFFERENCES, seed: int = DEFAULT_SEED) -> list[dict]:
    """Run both kernels per difference; assert bit-identical protocol data.

    Measurement rounds for the two kernels are interleaved so load spikes
    on shared machines hit both sides, and best-of-round times are compared
    (the standard microbenchmark guard against one-sided noise).
    """
    rows = []
    for difference in differences:
        python_run = _run_kernel("python", difference, seed=seed, rounds=2)  # warmup
        numpy_run = _run_kernel("numpy", difference, seed=seed, rounds=2)
        python_best: dict = python_run
        numpy_best: dict = numpy_run
        for _ in range(ROUNDS):
            python_run = _run_kernel("python", difference, seed=seed, rounds=1)
            numpy_run = _run_kernel("numpy", difference, seed=seed, rounds=3)
            for key in ("encode_s", "decode_s"):
                python_best[key] = min(python_best[key], python_run[key])
                numpy_best[key] = min(numpy_best[key], numpy_run[key])
        python_run, numpy_run = python_best, numpy_best
        assert python_run["message"] == numpy_run["message"], "evaluations differ"
        assert python_run["recovered"] == numpy_run["recovered"], "recovery differs"
        rows.append(
            {
                "n": SET_SIZE,
                "d": difference,
                "python": {
                    "encode_s": round(python_run["encode_s"], 6),
                    "decode_s": round(python_run["decode_s"], 6),
                },
                "numpy": {
                    "encode_s": round(numpy_run["encode_s"], 6),
                    "decode_s": round(numpy_run["decode_s"], 6),
                },
                "speedup": round(python_run["decode_s"] / numpy_run["decode_s"], 2),
                "encode_speedup": round(
                    python_run["encode_s"] / numpy_run["encode_s"], 2
                ),
                "identical_evaluations": True,
                "identical_recovered_sets": True,
            }
        )
    return rows


def compare_gcd_phase(degree: int = GCD_DEGREE, seed: int = DEFAULT_SEED) -> dict:
    """The d=1e4 row: the root-finding gcd chain at characteristic scale.

    Cantor-Zassenhaus splitting -- the phase that dominates ``cpi_decode``
    at large difference bounds -- is a chain of large-degree polynomial
    gcds.  This row builds two degree-``degree`` products of linears
    sharing ``degree // 2`` roots (the shape a split sees) and times one
    gcd under three tiers: the scalar reference chain, the vectorized
    NumPy Euclid chain, and the ``field_kernel="numba"`` request resolved
    down the fallback chain when numba is not installed.  All tiers must
    produce exactly the same coefficients.
    """
    from repro.config import resolve_field_kernel
    from repro.field import Polynomial, prime_field
    from repro.field.kernels import _poly_gcd_scalar

    rng = random.Random(seed)
    field = prime_field(PRIME)
    pool = rng.sample(range(1, PRIME), degree + degree // 2)
    a = Polynomial.from_roots(field, pool[:degree])
    b = Polynomial.from_roots(field, pool[degree // 2 :])
    a_coeffs, b_coeffs = list(a.coeffs), list(b.coeffs)

    start = time.perf_counter()
    scalar_gcd = _poly_gcd_scalar(PRIME, a_coeffs, b_coeffs)
    scalar_s = time.perf_counter() - start

    numpy_kernel = NumpyFieldKernel()
    numpy_times = []
    for _ in range(3):
        start = time.perf_counter()
        numpy_gcd = numpy_kernel.poly_gcd(PRIME, a_coeffs, b_coeffs)
        numpy_times.append(time.perf_counter() - start)

    numba_cls = resolve_field_kernel("numba", PRIME)
    numba_kernel = numba_cls()
    numba_times = []
    for _ in range(3):
        start = time.perf_counter()
        numba_gcd = numba_kernel.poly_gcd(PRIME, a_coeffs, b_coeffs)
        numba_times.append(time.perf_counter() - start)

    assert scalar_gcd == numpy_gcd == numba_gcd
    assert len(scalar_gcd) - 1 == degree // 2  # exactly the shared roots
    return {
        "n": SET_SIZE,
        "d": degree,
        "phase": "root-finding gcd chain",
        "shared_roots": degree // 2,
        "python": {"gcd_s": round(scalar_s, 6)},
        "numpy": {"gcd_s": round(min(numpy_times), 6)},
        "numba": {"gcd_s": round(min(numba_times), 6)},
        "numba_resolved_kernel": numba_cls.name,
        "identical_coefficients": True,
        "speedup": round(scalar_s / min(numpy_times), 2),
        "gcd_speedup": round(scalar_s / min(numpy_times), 2),
        "gcd_speedup_floor": GCD_SPEEDUP_FLOOR,
    }


# ---------------------------------------------------------------------------
# pytest entry points (the small-d cases are the CI smoke test)
# ---------------------------------------------------------------------------

import pytest

needs_numpy = pytest.mark.skipif(
    not NumpyFieldKernel.available(), reason="NumPy not installed"
)


@pytest.mark.parametrize("kernel", ["python", "numpy"])
@pytest.mark.parametrize("difference", [4, 16])
def test_cpi_smoke_small_d(benchmark, kernel, difference):
    """CPI round-trip at small d under each kernel (CI smoke)."""
    from conftest import run_once

    if kernel == "numpy" and not NumpyFieldKernel.available():
        pytest.skip("NumPy not installed")
    run = run_once(benchmark, _run_kernel, kernel, difference)
    assert run["recovered"] is not None


@needs_numpy
def test_kernels_bit_identical_across_d(benchmark):
    from conftest import run_once

    rows = run_once(benchmark, compare, differences=(4, 16))
    assert all(row["identical_evaluations"] for row in rows)
    assert all(row["identical_recovered_sets"] for row in rows)


@needs_numpy
def test_numpy_kernel_speedup_floor(benchmark):
    """The tentpole acceptance check: >= 8x cpi_decode at n=600, d=48."""
    from conftest import run_once

    rows = run_once(benchmark, compare, differences=(DIFFERENCES[-1],))
    assert rows[0]["speedup"] >= SPEEDUP_FLOOR, rows


@needs_numpy
def test_gcd_phase_tiers_identical(benchmark):
    """CI smoke for the large-degree gcd row at a small degree: every tier
    produces exactly the same coefficients."""
    from conftest import run_once

    row = run_once(benchmark, compare_gcd_phase, degree=600)
    assert row["identical_coefficients"]
    assert row["shared_roots"] == 300


def main() -> None:
    args = benchmark_parser(
        "CPI field-kernel comparison",
        Path(__file__).resolve().parent.parent / "BENCH_field_kernels.json",
    ).parse_args()
    if not NumpyFieldKernel.available():
        sys.exit("NumPy is required for the field-kernel comparison")
    rows = compare(seed=args.seed)
    for row in rows:
        print(
            f"n={row['n']}  d={row['d']:>3}  "
            f"python decode={row['python']['decode_s']*1000:8.2f} ms  "
            f"numpy decode={row['numpy']['decode_s']*1000:7.2f} ms  "
            f"speedup={row['speedup']:.1f}x  (encode {row['encode_speedup']:.1f}x)"
        )
    largest = rows[-1]
    if largest["speedup"] < SPEEDUP_FLOOR:
        sys.exit(
            f"decode speedup {largest['speedup']}x below the {SPEEDUP_FLOOR}x floor"
        )
    gcd_row = compare_gcd_phase(seed=args.seed)
    print(
        f"n={gcd_row['n']}  d={gcd_row['d']:>5}  gcd phase  "
        f"python={gcd_row['python']['gcd_s']:.2f}s  "
        f"numpy={gcd_row['numpy']['gcd_s']:.2f}s  "
        f"numba({gcd_row['numba_resolved_kernel']})="
        f"{gcd_row['numba']['gcd_s']:.2f}s  "
        f"speedup={gcd_row['speedup']:.1f}x"
    )
    if gcd_row["speedup"] < GCD_SPEEDUP_FLOOR:
        sys.exit(
            f"gcd-phase speedup {gcd_row['speedup']}x below the "
            f"{GCD_SPEEDUP_FLOOR}x floor at d={gcd_row['d']}"
        )
    rows.append(gcd_row)
    config = benchmark_config(
        args.seed, differences=list(DIFFERENCES), gcd_degree=GCD_DEGREE
    )
    if args.profile:
        config["profile"] = {
            "python_encode_s": rows[-2]["python"]["encode_s"],
            "python_field_s": rows[-2]["python"]["decode_s"],
            "numpy_encode_s": rows[-2]["numpy"]["encode_s"],
            "numpy_field_s": rows[-2]["numpy"]["decode_s"],
            "gcd_python_s": gcd_row["python"]["gcd_s"],
            "gcd_numpy_s": gcd_row["numpy"]["gcd_s"],
            "gcd_numba_s": gcd_row["numba"]["gcd_s"],
        }
    output = args.output
    write_benchmark_record(
        output,
        benchmark="bench_field_kernels",
        description=(
            "CPI encode/decode wall-clock per GF(p) field kernel; "
            "bit-identical evaluations and recovered sets asserted per d; "
            "the d=1e4 row times the root-finding gcd chain under all "
            "three tiers"
        ),
        config=config,
        universe=UNIVERSE,
        set_size=SET_SIZE,
        speedup_floor=SPEEDUP_FLOOR,
        gcd_speedup_floor=GCD_SPEEDUP_FLOOR,
        results=rows,
    )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
