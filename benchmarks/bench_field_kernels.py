"""Field-kernel comparison: pure-Python vs vectorized NumPy GF(p) kernels.

Times the characteristic-polynomial protocol's two sides (Theorem 2.3) --
``cpi_encode`` (batch evaluation of chi_A at d+1 points) and ``cpi_decode``
(batch evaluation, Vandermonde assembly, Gaussian elimination, root
finding) -- under each registered field kernel, asserting bit-identical
``CPIMessage.evaluations`` and recovered sets.  The acceptance bar for the
vectorized kernel is a >= 8x ``cpi_decode`` speedup over the reference
kernel at ``n = 600, d = 48``.

Run under pytest like the other benchmarks (the small-``d`` cases double as
the CI smoke test), or standalone::

    PYTHONPATH=src python benchmarks/bench_field_kernels.py

which also rewrites ``BENCH_field_kernels.json`` at the repository root.
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.reporting import write_benchmark_record
from repro.core.setrecon.cpi import cpi_decode, cpi_encode
from repro.field import NumpyFieldKernel

UNIVERSE = 1 << 20
SET_SIZE = 600
DIFFERENCES = (4, 16, 48)
SPEEDUP_FLOOR = 8.0  # acceptance bar for cpi_decode at the largest d
ROUNDS = 7  # interleaved measurement rounds per (kernel, d)


def _instance(size: int, difference: int, seed: int) -> tuple[set[int], set[int]]:
    """Two sets differing in exactly ``difference`` elements."""
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


def _run_kernel(
    kernel: str, difference: int, seed: int = DEFAULT_SEED, rounds: int = ROUNDS
) -> dict:
    """Encode + decode under one kernel; timings are best-of-``rounds``."""
    alice, bob = _instance(SET_SIZE, difference, seed=difference * 1000 + seed)

    encode_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        message = cpi_encode(alice, difference, UNIVERSE, field_kernel=kernel)
        encode_times.append(time.perf_counter() - start)

    decode_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        success, recovered = cpi_decode(
            message, bob, UNIVERSE, seed, field_kernel=kernel
        )
        decode_times.append(time.perf_counter() - start)
    assert success, f"{kernel} decode failed at d={difference}"
    assert recovered == alice, f"{kernel} recovered the wrong set at d={difference}"
    return {
        "kernel": kernel,
        "d": difference,
        "message": message,
        "recovered": recovered,
        "encode_s": min(encode_times),
        "decode_s": min(decode_times),
    }


def compare(differences=DIFFERENCES, seed: int = DEFAULT_SEED) -> list[dict]:
    """Run both kernels per difference; assert bit-identical protocol data.

    Measurement rounds for the two kernels are interleaved so load spikes
    on shared machines hit both sides, and best-of-round times are compared
    (the standard microbenchmark guard against one-sided noise).
    """
    rows = []
    for difference in differences:
        python_run = _run_kernel("python", difference, seed=seed, rounds=2)  # warmup
        numpy_run = _run_kernel("numpy", difference, seed=seed, rounds=2)
        python_best: dict = python_run
        numpy_best: dict = numpy_run
        for _ in range(ROUNDS):
            python_run = _run_kernel("python", difference, seed=seed, rounds=1)
            numpy_run = _run_kernel("numpy", difference, seed=seed, rounds=3)
            for key in ("encode_s", "decode_s"):
                python_best[key] = min(python_best[key], python_run[key])
                numpy_best[key] = min(numpy_best[key], numpy_run[key])
        python_run, numpy_run = python_best, numpy_best
        assert python_run["message"] == numpy_run["message"], "evaluations differ"
        assert python_run["recovered"] == numpy_run["recovered"], "recovery differs"
        rows.append(
            {
                "n": SET_SIZE,
                "d": difference,
                "python": {
                    "encode_s": round(python_run["encode_s"], 6),
                    "decode_s": round(python_run["decode_s"], 6),
                },
                "numpy": {
                    "encode_s": round(numpy_run["encode_s"], 6),
                    "decode_s": round(numpy_run["decode_s"], 6),
                },
                "speedup": round(python_run["decode_s"] / numpy_run["decode_s"], 2),
                "encode_speedup": round(
                    python_run["encode_s"] / numpy_run["encode_s"], 2
                ),
                "identical_evaluations": True,
                "identical_recovered_sets": True,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# pytest entry points (the small-d cases are the CI smoke test)
# ---------------------------------------------------------------------------

import pytest

needs_numpy = pytest.mark.skipif(
    not NumpyFieldKernel.available(), reason="NumPy not installed"
)


@pytest.mark.parametrize("kernel", ["python", "numpy"])
@pytest.mark.parametrize("difference", [4, 16])
def test_cpi_smoke_small_d(benchmark, kernel, difference):
    """CPI round-trip at small d under each kernel (CI smoke)."""
    from conftest import run_once

    if kernel == "numpy" and not NumpyFieldKernel.available():
        pytest.skip("NumPy not installed")
    run = run_once(benchmark, _run_kernel, kernel, difference)
    assert run["recovered"] is not None


@needs_numpy
def test_kernels_bit_identical_across_d(benchmark):
    from conftest import run_once

    rows = run_once(benchmark, compare, differences=(4, 16))
    assert all(row["identical_evaluations"] for row in rows)
    assert all(row["identical_recovered_sets"] for row in rows)


@needs_numpy
def test_numpy_kernel_speedup_floor(benchmark):
    """The tentpole acceptance check: >= 8x cpi_decode at n=600, d=48."""
    from conftest import run_once

    rows = run_once(benchmark, compare, differences=(DIFFERENCES[-1],))
    assert rows[0]["speedup"] >= SPEEDUP_FLOOR, rows


def main() -> None:
    args = benchmark_parser(
        "CPI field-kernel comparison",
        Path(__file__).resolve().parent.parent / "BENCH_field_kernels.json",
    ).parse_args()
    if not NumpyFieldKernel.available():
        sys.exit("NumPy is required for the field-kernel comparison")
    rows = compare(seed=args.seed)
    for row in rows:
        print(
            f"n={row['n']}  d={row['d']:>3}  "
            f"python decode={row['python']['decode_s']*1000:8.2f} ms  "
            f"numpy decode={row['numpy']['decode_s']*1000:7.2f} ms  "
            f"speedup={row['speedup']:.1f}x  (encode {row['encode_speedup']:.1f}x)"
        )
    largest = rows[-1]
    if largest["speedup"] < SPEEDUP_FLOOR:
        sys.exit(
            f"decode speedup {largest['speedup']}x below the {SPEEDUP_FLOOR}x floor"
        )
    output = args.output
    write_benchmark_record(
        output,
        benchmark="bench_field_kernels",
        description=(
            "CPI encode/decode wall-clock per GF(p) field kernel; "
            "bit-identical evaluations and recovered sets asserted per d"
        ),
        config=benchmark_config(args.seed, differences=list(DIFFERENCES)),
        universe=UNIVERSE,
        set_size=SET_SIZE,
        speedup_floor=SPEEDUP_FLOOR,
        results=rows,
    )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
