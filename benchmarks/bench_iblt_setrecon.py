"""E3 -- Theorem 2.1 / Corollary 2.2: IBLT set reconciliation.

Paper claims: an IBLT with O(d) cells decodes a difference of size d with
high probability (Thm 2.1); one-round set reconciliation therefore costs
O(d log u) bits and O(n) time (Cor 2.2).  The benchmark sweeps d, reports
bits and decode success, and checks communication grows linearly in d while
being independent of |S|.
"""

import random
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.core.setrecon import reconcile_known_d

UNIVERSE = 1 << 30
SET_SIZE = 4000
DIFFERENCES = (8, 32, 128, 512)
TITLE = "E3: IBLT set reconciliation, bits vs d (O(d log u))"


def _instance(size, difference, seed):
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


@pytest.mark.parametrize("difference", [8, 32, 128, 512])
def test_iblt_reconciliation_scaling(benchmark, difference):
    alice, bob = _instance(4000, difference, seed=difference)
    result = run_once(
        benchmark, reconcile_known_d, alice, bob, difference, UNIVERSE, difference + 1
    )
    assert result.success and result.recovered == alice


def sweep(seed=0):
    rows = []
    for difference in DIFFERENCES:
        alice, bob = _instance(SET_SIZE, difference, seed=seed + difference)
        result = reconcile_known_d(alice, bob, difference, UNIVERSE, seed=seed + 1)
        rows.append(
            {
                "d": difference,
                "bits": result.total_bits,
                "bits/d": round(result.total_bits / difference, 1),
                "success": result.success,
            }
        )
    return rows


def test_iblt_communication_linear_in_d(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, TITLE))
    assert all(row["success"] for row in rows)
    # Linear scaling: bits-per-difference stays within a 3x band across a 64x
    # range of d (small-table slack inflates the smallest configuration).
    ratios = [row["bits/d"] for row in rows]
    assert max(ratios) / min(ratios) < 3.0


def main() -> None:
    args = benchmark_parser(TITLE).parse_args()
    rows = sweep(args.seed)
    print(format_table(rows, TITLE))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_iblt_setrecon",
            description="One-round IBLT set reconciliation: total bits grow "
            "linearly in the difference d, independent of the set size",
            config=benchmark_config(
                args.seed, universe=UNIVERSE, set_size=SET_SIZE, differences=list(DIFFERENCES)
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
