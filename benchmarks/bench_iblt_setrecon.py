"""E3 -- Theorem 2.1 / Corollary 2.2: IBLT set reconciliation.

Paper claims: an IBLT with O(d) cells decodes a difference of size d with
high probability (Thm 2.1); one-round set reconciliation therefore costs
O(d log u) bits and O(n) time (Cor 2.2).  The benchmark sweeps d, reports
bits and decode success, and checks communication grows linearly in d while
being independent of |S|.
"""

import random

import pytest

from conftest import run_once
from repro.bench.reporting import format_table
from repro.core.setrecon import reconcile_known_d

UNIVERSE = 1 << 30


def _instance(size, difference, seed):
    rng = random.Random(seed)
    alice = set(rng.sample(range(UNIVERSE), size))
    bob = set(alice)
    for element in rng.sample(sorted(alice), difference // 2):
        bob.discard(element)
    while len(alice ^ bob) < difference:
        bob.add(rng.randrange(UNIVERSE))
    return alice, bob


@pytest.mark.parametrize("difference", [8, 32, 128, 512])
def test_iblt_reconciliation_scaling(benchmark, difference):
    alice, bob = _instance(4000, difference, seed=difference)
    result = run_once(
        benchmark, reconcile_known_d, alice, bob, difference, UNIVERSE, difference + 1
    )
    assert result.success and result.recovered == alice


def test_iblt_communication_linear_in_d(benchmark):
    def sweep():
        rows = []
        for difference in (8, 32, 128, 512):
            alice, bob = _instance(4000, difference, seed=difference)
            result = reconcile_known_d(alice, bob, difference, UNIVERSE, seed=1)
            rows.append(
                {
                    "d": difference,
                    "bits": result.total_bits,
                    "bits/d": round(result.total_bits / difference, 1),
                    "success": result.success,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, "E3: IBLT set reconciliation, bits vs d (O(d log u))"))
    assert all(row["success"] for row in rows)
    # Linear scaling: bits-per-difference stays within a 3x band across a 64x
    # range of d (small-table slack inflates the smallest configuration).
    ratios = [row["bits/d"] for row in rows]
    assert max(ratios) / min(ratios) < 3.0
