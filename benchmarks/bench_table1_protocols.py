"""E1 -- Table 1: the four SSRK protocols in the dense binary-database regime.

Paper claim (Table 1, Section 3.5): with ``h = Theta(u)``, ``n = Theta(s u)``
and small ``d``, the naive protocol pays ``~ d * u`` bits per differing child
while the structured protocols pay only poly(d, log u); the multi-round
protocol is the cheapest but needs 3 rounds, and the one-round protocols get
progressively cheaper as more structure is exploited.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import pytest

from conftest import run_once
from repro.bench.cli import benchmark_config, benchmark_parser
from repro.bench.reporting import format_table, write_benchmark_record
from repro.bench.runner import summarize
from repro.bench.table1 import Table1Config, run_table1
from repro.core.setsofsets import (
    reconcile_cascading,
    reconcile_iblt_of_iblts,
    reconcile_multiround,
    reconcile_naive,
)
from repro.workloads import table1_instance

CONFIG = Table1Config(
    universe_size=2048, num_children=64, num_changes=8, children_touched=4, repeats=1
)


def _instance(seed=CONFIG.seed):
    return table1_instance(
        CONFIG.universe_size,
        CONFIG.num_children,
        CONFIG.num_changes,
        seed,
        max_children_touched=CONFIG.children_touched,
    )


@pytest.fixture(scope="module")
def instance():
    return _instance()


def test_table1_report(benchmark):
    """Regenerate the whole Table 1 comparison and print it."""
    measurements = run_once(benchmark, run_table1, CONFIG)
    print()
    print(format_table(summarize(measurements), "Table 1 (empirical, dense regime)"))
    by_name = {m.name: m for m in measurements}
    naive = by_name["naive (Thm 3.3)"]
    multiround = by_name["multi-round (Thm 3.9)"]
    flat = by_name["IBLT of IBLTs (Thm 3.5)"]
    # Shape checks from the paper's table: naive is the most expensive in
    # communication when u is large; the multi-round protocol is the cheapest
    # but uses 3 rounds instead of 1.
    assert naive.median_bits > multiround.median_bits
    assert naive.median_bits > flat.median_bits
    assert multiround.median_rounds == 3
    assert flat.median_rounds == 1


def test_naive_protocol(benchmark, instance):
    result = run_once(
        benchmark,
        reconcile_naive,
        instance.alice,
        instance.bob,
        2 * instance.differing_children,
        instance.universe_size,
        instance.max_child_size,
        CONFIG.seed,
    )
    assert result.success


def test_iblt_of_iblts_protocol(benchmark, instance):
    result = run_once(
        benchmark,
        reconcile_iblt_of_iblts,
        instance.alice,
        instance.bob,
        instance.planted_difference,
        instance.universe_size,
        CONFIG.seed,
    )
    assert result.success


def test_cascading_protocol(benchmark, instance):
    result = run_once(
        benchmark,
        reconcile_cascading,
        instance.alice,
        instance.bob,
        instance.planted_difference,
        instance.universe_size,
        instance.max_child_size,
        CONFIG.seed,
    )
    assert result.success


def test_multiround_protocol(benchmark, instance):
    result = run_once(
        benchmark,
        reconcile_multiround,
        instance.alice,
        instance.bob,
        instance.planted_difference,
        instance.universe_size,
        instance.max_child_size,
        CONFIG.seed,
    )
    assert result.success


def main() -> None:
    args = benchmark_parser(
        "E1: the four SSRK protocols in the dense binary-database regime"
    ).parse_args()
    config = Table1Config(
        universe_size=CONFIG.universe_size,
        num_children=CONFIG.num_children,
        num_changes=CONFIG.num_changes,
        children_touched=CONFIG.children_touched,
        repeats=CONFIG.repeats,
        seed=args.seed,
    )
    rows = summarize(run_table1(config))
    print(format_table(rows, "Table 1 (empirical, dense regime)"))
    if args.output is not None:
        write_benchmark_record(
            args.output,
            benchmark="bench_table1_protocols",
            description="Table 1 empirically: naive, IBLT-of-IBLTs, cascading "
            "and multi-round protocols in the dense binary-database regime",
            config=benchmark_config(
                args.seed,
                universe_size=config.universe_size,
                num_children=config.num_children,
                num_changes=config.num_changes,
                children_touched=config.children_touched,
                repeats=config.repeats,
            ),
            results=rows,
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
