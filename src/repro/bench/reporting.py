"""Report tables and recorded-benchmark (trajectory) helpers.

Besides the plain-text tables the experiment harness prints, this module
owns the ``BENCH_*.json`` records checked in at the repository root: each
performance-focused change records its headline speedup so later changes
can regression-check against the recorded trajectory
(:func:`load_benchmark_record`, :func:`headline_speedups`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

#: Recorded benchmark files at the repository root and the path (in their
#: ``results`` rows) of the headline speedup each one tracks.
BENCHMARK_RECORDS = {
    "cell_backend": "BENCH_backends.json",
    "cluster_convergence": "BENCH_cluster.json",
    "field_kernel": "BENCH_field_kernels.json",
    "setsofsets_encoding": "BENCH_setsofsets.json",
    "service_throughput": "BENCH_service.json",
    "sketch_store": "BENCH_store.json",
}


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of row dictionaries as an aligned fixed-width table."""
    if not rows:
        return (title + "\n(no rows)\n") if title else "(no rows)\n"
    headers = list(rows[0].keys())
    widths = {
        header: max(len(str(header)), max(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[header]) for header in headers)
    lines.append(header_line)
    lines.append("  ".join("-" * widths[header] for header in headers))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines) + "\n"


def print_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title))


def format_transcript_breakdown(transcript, title: str | None = None) -> str:
    """Per-round bits table for one protocol transcript.

    Renders :meth:`repro.comm.transcript.Transcript.round_summary` -- the
    same breakdown the session layer exposes -- through
    :func:`format_table`, so benchmark reports can show where a protocol's
    communication goes round by round.
    """
    return format_table(transcript.round_summary(), title)


def write_benchmark_record(
    path: str | Path,
    *,
    benchmark: str,
    description: str,
    results: Sequence[Mapping[str, object]],
    **extra: object,
) -> None:
    """Write one ``BENCH_*.json`` record in the repository's standard shape."""
    payload: dict[str, object] = {"benchmark": benchmark, "description": description}
    payload.update(extra)
    payload["results"] = list(results)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_benchmark_record(path: str | Path) -> dict:
    """Load one ``BENCH_*.json`` record (raises ``FileNotFoundError`` if absent)."""
    return json.loads(Path(path).read_text())


def headline_speedups(root: str | Path) -> dict[str, float]:
    """The recorded headline speedups, one per benchmark trajectory.

    For every known record under ``root`` (see :data:`BENCHMARK_RECORDS`)
    this returns the largest per-row ``speedup`` -- the number a future PR
    should not regress.  Missing records are skipped, so the repository
    stays usable before a benchmark has ever been recorded.
    """
    root = Path(root)
    headline: dict[str, float] = {}
    for name, filename in BENCHMARK_RECORDS.items():
        path = root / filename
        if not path.exists():
            continue
        record = load_benchmark_record(path)
        speedups = [
            float(row["speedup"])
            for row in record.get("results", [])
            if "speedup" in row
        ]
        if speedups:
            headline[name] = max(speedups)
    return headline
