"""Plain-text report tables for the experiment harness."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of row dictionaries as an aligned fixed-width table."""
    if not rows:
        return (title + "\n(no rows)\n") if title else "(no rows)\n"
    headers = list(rows[0].keys())
    widths = {
        header: max(len(str(header)), max(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[header]) for header in headers)
    lines.append(header_line)
    lines.append("  ".join("-" * widths[header] for header in headers))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines) + "\n"


def print_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title))
