"""The shared CLI/seed convention for standalone benchmark scripts.

Every ``benchmarks/bench_*.py`` with a standalone ``main()`` used to
hard-code its seeds inline, so two runs of "the same" benchmark could
silently measure different instances and the ``BENCH_*.json`` records never
said which configuration produced them.  This module is the one convention
they all share now:

* :func:`benchmark_parser` -- an ``argparse`` parser with the common flags
  (``--seed`` defaulting to :data:`DEFAULT_SEED`, ``--output`` overriding
  the record path, ``--profile`` asking the benchmark to embed per-phase
  encode/subtract/peel/field timings into the record's ``config`` block);
* :func:`benchmark_config` -- the ``config`` dict embedded verbatim in the
  written ``BENCH_*.json`` record, so every record names the exact seed and
  knobs that produced it and a reader can rerun it bit-for-bit.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any

#: The default top-level seed every standalone benchmark runs with.
DEFAULT_SEED = 2018


def benchmark_parser(
    description: str, default_output: str | Path | None = None
) -> argparse.ArgumentParser:
    """The shared argument parser for standalone benchmark ``main()``-s."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"top-level benchmark seed (default: {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(default_output) if default_output is not None else None,
        help="where to write the BENCH_*.json record"
        + (" (default: %(default)s)" if default_output is not None else ""),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="embed per-phase (encode/subtract/peel/field) wall-clock "
        "timings into the record's config block",
    )
    return parser


def benchmark_config(seed: int, **knobs: Any) -> dict[str, Any]:
    """The ``config`` block a benchmark record embeds: seed plus named knobs."""
    return {"seed": seed, **knobs}
