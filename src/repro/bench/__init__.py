"""Experiment harness: measurement helpers and paper-style report tables.

The benchmark suite under ``benchmarks/`` uses this package to run each
experiment of DESIGN.md's index and print the rows/series the paper reports
(protocol comparisons, scaling curves, success probabilities).  Each
experiment can also be run standalone, e.g.::

    python -m repro.bench.table1
"""

from repro.bench.cli import DEFAULT_SEED, benchmark_config, benchmark_parser
from repro.bench.runner import ProtocolMeasurement, measure_protocol, summarize
from repro.bench.reporting import (
    BENCHMARK_RECORDS,
    format_table,
    format_transcript_breakdown,
    headline_speedups,
    load_benchmark_record,
    print_table,
    write_benchmark_record,
)

__all__ = [
    "DEFAULT_SEED",
    "benchmark_config",
    "benchmark_parser",
    "ProtocolMeasurement",
    "measure_protocol",
    "summarize",
    "format_table",
    "format_transcript_breakdown",
    "print_table",
    "BENCHMARK_RECORDS",
    "headline_speedups",
    "load_benchmark_record",
    "write_benchmark_record",
]
