"""Experiment E1: the empirical counterpart of the paper's Table 1.

Table 1 compares the four SSRK protocols in the dense binary-database regime
(``h = Theta(u)``, ``n = Theta(s u)``, ``d`` small relative to ``s`` and
``h``).  This module runs all four protocols on such instances and reports
measured communication (bits), rounds and wall-clock time, so the ordering
and round counts claimed by the table can be checked empirically.

Run standalone with ``python -m repro.bench.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import print_table
from repro.bench.runner import ProtocolMeasurement, measure_protocol, summarize
from repro.core.setsofsets import (
    reconcile_cascading,
    reconcile_iblt_of_iblts,
    reconcile_multiround,
    reconcile_naive,
)
from repro.workloads.sets_of_sets import SetsOfSetsInstance, table1_instance


@dataclass(frozen=True)
class Table1Config:
    """Workload parameters for the Table 1 regime.

    ``backend`` / ``field_kernel`` select the IBLT cell store and the GF(p)
    kernel for every protocol run (``None`` keeps the process defaults).
    """

    universe_size: int = 2048
    num_children: int = 64
    num_changes: int = 8
    children_touched: int = 4
    repeats: int = 3
    seed: int = 2018
    backend: str | None = None
    field_kernel: str | None = None


def run_table1(config: Table1Config | None = None) -> list[ProtocolMeasurement]:
    """Run the four SSRK protocols on the Table 1 workload."""
    config = config or Table1Config()

    def make_instance(seed: int) -> SetsOfSetsInstance:
        return table1_instance(
            config.universe_size,
            config.num_children,
            config.num_changes,
            seed,
            max_children_touched=config.children_touched,
        )

    def run_naive(seed: int):
        instance = make_instance(seed)
        return reconcile_naive(
            instance.alice,
            instance.bob,
            instance.differing_children,
            instance.universe_size,
            instance.max_child_size,
            seed,
        )

    def run_flat(seed: int):
        instance = make_instance(seed)
        return reconcile_iblt_of_iblts(
            instance.alice,
            instance.bob,
            instance.planted_difference,
            instance.universe_size,
            seed,
            differing_children_bound=instance.differing_children,
        )

    def run_cascading(seed: int):
        instance = make_instance(seed)
        return reconcile_cascading(
            instance.alice,
            instance.bob,
            instance.planted_difference,
            instance.universe_size,
            instance.max_child_size,
            seed,
            differing_children_bound=instance.differing_children,
            backend=config.backend,
            field_kernel=config.field_kernel,
        )

    def run_multiround(seed: int):
        instance = make_instance(seed)
        return reconcile_multiround(
            instance.alice,
            instance.bob,
            instance.planted_difference,
            instance.universe_size,
            instance.max_child_size,
            seed,
            differing_children_bound=instance.differing_children,
            backend=config.backend,
            field_kernel=config.field_kernel,
        )

    runners = [
        ("naive (Thm 3.3)", run_naive),
        ("IBLT of IBLTs (Thm 3.5)", run_flat),
        ("cascading (Thm 3.7)", run_cascading),
        ("multi-round (Thm 3.9)", run_multiround),
    ]
    return [
        measure_protocol(name, runner, repeats=config.repeats, base_seed=config.seed)
        for name, runner in runners
    ]


def main() -> None:
    """Print the Table 1 comparison for the default configuration."""
    config = Table1Config()
    measurements = run_table1(config)
    title = (
        "Table 1 (empirical): SSRK protocols, "
        f"u={config.universe_size}, s={config.num_children}, "
        f"d={config.num_changes} over {config.children_touched} children"
    )
    print_table(summarize(measurements), title)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
