"""Measurement helpers for protocol experiments."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.comm import ReconciliationResult


@dataclass
class ProtocolMeasurement:
    """Aggregated measurements of repeated protocol executions.

    Attributes
    ----------
    name:
        Label of the protocol / configuration.
    bits:
        Communication cost of each successful run.
    seconds:
        Wall-clock time of each run (successful or not).
    rounds:
        Rounds used by each successful run.
    successes, trials:
        Success count and total runs (the success *rate* is the quantity many
        of the paper's theorems bound, e.g. the 2/3 of Theorem 3.7).
    """

    name: str
    bits: list[int] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)
    rounds: list[int] = field(default_factory=list)
    successes: int = 0
    trials: int = 0

    def record(self, result: ReconciliationResult, elapsed: float) -> None:
        """Record one protocol execution."""
        self.trials += 1
        self.seconds.append(elapsed)
        if result.success:
            self.successes += 1
            self.bits.append(result.total_bits)
            self.rounds.append(result.num_rounds)

    @property
    def success_rate(self) -> float:
        """Fraction of runs that succeeded."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def median_bits(self) -> int:
        """Median communication of successful runs (0 if none succeeded)."""
        return int(statistics.median(self.bits)) if self.bits else 0

    @property
    def median_seconds(self) -> float:
        """Median wall-clock time per run."""
        return statistics.median(self.seconds) if self.seconds else 0.0

    @property
    def median_rounds(self) -> int:
        """Median number of rounds of successful runs."""
        return int(statistics.median(self.rounds)) if self.rounds else 0


def measure_protocol(
    name: str,
    run: Callable[[int], ReconciliationResult],
    *,
    repeats: int = 3,
    base_seed: int = 0,
) -> ProtocolMeasurement:
    """Run ``run(seed)`` ``repeats`` times and aggregate the results."""
    measurement = ProtocolMeasurement(name)
    for repeat in range(repeats):
        start = time.perf_counter()
        result = run(base_seed + 1000 * repeat)
        elapsed = time.perf_counter() - start
        measurement.record(result, elapsed)
    return measurement


def summarize(measurements: Sequence[ProtocolMeasurement]) -> list[dict[str, object]]:
    """Turn measurements into the row dictionaries the report tables print."""
    rows = []
    for measurement in measurements:
        rows.append(
            {
                "protocol": measurement.name,
                "success": f"{measurement.success_rate:.2f}",
                "bits": measurement.median_bits,
                "KiB": f"{measurement.median_bits / 8192:.2f}",
                "rounds": measurement.median_rounds,
                "seconds": f"{measurement.median_seconds:.3f}",
            }
        )
    return rows
