"""Root finding for polynomials over GF(p).

The characteristic-polynomial protocol recovers the set difference as the
roots of the numerator / denominator of the interpolated rational function.
We find roots with the standard Cantor-Zassenhaus strategy:

1. restrict to the product of distinct linear factors by taking
   ``gcd(f, x^p - x)``;
2. split that product recursively with random shifts
   ``gcd(g, (x + a)^((p-1)/2) - 1)``.

Degrees are small (at most the difference bound ``d``), so this is fast even
in pure Python.  When a vectorized field kernel is active (see
:mod:`repro.field.kernels`) the whole factorisation runs inside the kernel
-- level-batched modular exponentiation plus closed-form quadratics -- and
returns the identical root set, the roots of a polynomial being intrinsic.
"""

from __future__ import annotations

import random

from repro.errors import ParameterError
from repro.field.kernels import FieldKernel, kernel_for
from repro.field.poly import Polynomial


def _linear_factor_product(poly: Polynomial) -> Polynomial:
    """Return the product of the distinct linear factors of ``poly``.

    Computes ``gcd(poly, x^p - x)`` using modular exponentiation of ``x``.
    """
    field = poly.field
    x = Polynomial.x(field)
    x_to_p = x.pow_mod(field.modulus, poly)
    return poly.gcd(x_to_p - x)


def _split_roots(poly: Polynomial, rng: random.Random, roots: list[int]) -> None:
    """Split a product of distinct linear factors into roots.

    Runs the classic recursive Cantor-Zassenhaus split on an explicit
    work-stack: a split can be maximally unbalanced (one linear factor off a
    degree-d product per step), so the recursive formulation overflows
    Python's recursion limit for adversarial degrees near 1e4.  The stack is
    processed depth-first with the split-off factor handled before its
    complementary cofactor -- the exact order the recursion visited them, so
    the rng draw sequence (and therefore every downstream value) is
    unchanged.
    """
    field = poly.field
    exponent = (field.modulus - 1) // 2
    one = Polynomial.one(field)
    stack = [poly]
    while stack:
        current = stack.pop()
        degree = current.degree
        if degree <= 0:
            continue
        if degree == 1:
            # current = x + c (monic), root = -c.
            roots.append(field.neg(current.coeffs[0]))
            continue
        if field.modulus == 2:  # pragma: no cover - universes are always larger
            for candidate in (0, 1):
                if current.evaluate(candidate) == 0:
                    roots.append(candidate)
            continue
        while True:
            shift = field.uniform_element(rng)
            shifted = Polynomial.from_coefficients(field, [shift, 1])
            probe = shifted.pow_mod(exponent, current) - one
            factor = current.gcd(probe)
            if 0 < factor.degree < degree:
                break
        complementary = (current // factor).monic()
        # Pop order: factor first, then its cofactor (matches the recursion).
        stack.append(complementary)
        stack.append(factor.monic())


def _find_roots_reference(poly: Polynomial, rng: random.Random) -> list[int]:
    """The classic recursive Cantor-Zassenhaus path (reference semantics)."""
    monic = poly.monic()
    if monic.degree == 0:
        return []
    linear_part = _linear_factor_product(monic)
    roots: list[int] = []
    if linear_part.degree >= 1:
        _split_roots(linear_part.monic(), rng, roots)
    roots.sort()
    return roots


def find_roots(
    poly: Polynomial,
    rng: random.Random | None = None,
    kernel: FieldKernel | None = None,
) -> list[int]:
    """Return all roots in GF(p) of ``poly`` (each distinct root once).

    Parameters
    ----------
    poly:
        The polynomial to factor; must be nonzero.
    rng:
        Randomness source for the Cantor-Zassenhaus splits.  Passing a seeded
        ``random.Random`` keeps the whole protocol deterministic; the default
        uses a fixed seed so results are reproducible.
    kernel:
        Field kernel override; defaults to the active kernel for the
        polynomial's modulus.  The returned roots are identical for every
        kernel (only the factorisation strategy differs).
    """
    if poly.is_zero():
        raise ParameterError("cannot find roots of the zero polynomial")
    if rng is None:
        rng = random.Random(0x5EED)
    if kernel is None:
        kernel = kernel_for(poly.field.modulus)
    if kernel.vectorized:
        return kernel.find_distinct_roots(poly.field.modulus, poly.coeffs, rng)
    return _find_roots_reference(poly, rng)


def roots_with_multiplicity(poly: Polynomial, rng: random.Random | None = None) -> dict[int, int]:
    """Return a mapping from root to multiplicity.

    Used by multiset reconciliation (Section 3.4), where repeated elements of
    a multiset appear as repeated roots of the characteristic polynomial.
    """
    result: dict[int, int] = {}
    remaining = poly.monic()
    for root in find_roots(poly, rng):
        count = 0
        linear = Polynomial.from_coefficients(poly.field, [poly.field.neg(root), 1])
        while True:
            quotient, remainder = remaining.divmod(linear)
            if not remainder.is_zero():
                break
            remaining = quotient
            count += 1
        result[root] = count
    return result
