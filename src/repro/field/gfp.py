"""Arithmetic in the prime field GF(p).

A thin, explicit wrapper around Python's arbitrary-precision integers.  All
values are canonical residues in ``[0, p)``.  Keeping the field as an object
(rather than free functions taking a modulus) lets polynomials, matrices and
protocols share a single validated modulus.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.field.prime import is_probable_prime


@dataclass(frozen=True)
class PrimeField:
    """The finite field of integers modulo a prime ``p``.

    Parameters
    ----------
    modulus:
        A prime number.  Primality is checked at construction time because a
        composite modulus silently breaks inversion and root finding.
    """

    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 2 or not is_probable_prime(self.modulus):
            raise ParameterError(f"modulus {self.modulus} is not prime")

    # -- canonical representation -------------------------------------------------

    def element(self, value: int) -> int:
        """Reduce an integer to its canonical residue in ``[0, p)``."""
        return value % self.modulus

    def __contains__(self, value: int) -> bool:
        return 0 <= value < self.modulus

    # -- ring operations ----------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Return ``(a + b) mod p``."""
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        """Return ``(a - b) mod p``."""
        return (a - b) % self.modulus

    def neg(self, a: int) -> int:
        """Return ``-a mod p``."""
        return (-a) % self.modulus

    def mul(self, a: int, b: int) -> int:
        """Return ``(a * b) mod p``."""
        return (a * b) % self.modulus

    def pow(self, base: int, exponent: int) -> int:
        """Return ``base**exponent mod p`` (negative exponents invert)."""
        return pow(base, exponent, self.modulus)

    def inv(self, a: int) -> int:
        """Return the multiplicative inverse of ``a`` modulo ``p``.

        Raises
        ------
        ZeroDivisionError
            If ``a`` is congruent to zero.
        """
        if a % self.modulus == 0:
            raise ZeroDivisionError("cannot invert zero in a prime field")
        return pow(a, -1, self.modulus)

    def div(self, a: int, b: int) -> int:
        """Return ``a / b mod p``."""
        return self.mul(a, self.inv(b))

    # -- helpers ------------------------------------------------------------------

    def uniform_element(self, rng) -> int:
        """Draw a uniform field element using the supplied ``random.Random``."""
        return rng.randrange(self.modulus)

    def uniform_nonzero(self, rng) -> int:
        """Draw a uniform nonzero field element."""
        return rng.randrange(1, self.modulus)


@functools.lru_cache(maxsize=4096)
def prime_field(modulus: int) -> PrimeField:
    """A memoized :class:`PrimeField` for ``modulus``.

    Construction runs a Miller-Rabin primality check, which the multiround
    protocol's many small CPI decodes would otherwise repeat for the same
    modulus on every call.  :class:`PrimeField` is frozen, so sharing one
    instance per modulus is safe.
    """
    return PrimeField(modulus)
