"""Primality testing and prime generation.

The characteristic-polynomial protocol needs a prime ``q`` larger than the
element universe (Theorem 2.3) and the fingerprint protocols of Section 4
need a prime of size roughly ``n^{2d+3}`` (Theorem 4.3).  Miller-Rabin with a
fixed witness set is deterministic for 64-bit inputs and overwhelmingly
reliable beyond that, which is ample for a reproduction library.

:func:`prime_at_least` is memoized: the multiround protocol (Theorem 3.9)
runs one tiny CPI exchange per differing child, and every exchange used to
re-run the Miller-Rabin search for the same handful of universe-derived
moduli.
"""

from __future__ import annotations

import functools

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(candidate: int, rounds: int = 12) -> bool:
    """Return ``True`` if ``candidate`` is (very probably) prime.

    Uses Miller-Rabin with the first ``rounds`` small primes as witnesses,
    which is a deterministic test for all 64-bit integers.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _SMALL_PRIMES[:rounds]:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(value: int) -> int:
    """Return the smallest prime strictly greater than ``value``."""
    if value < 2:
        return 2
    candidate = value + 1
    if candidate % 2 == 0:
        candidate += 1
    if value == 2:
        return 3
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


@functools.lru_cache(maxsize=4096)
def prime_at_least(value: int) -> int:
    """Return the smallest prime greater than or equal to ``value``.

    Memoized: protocols derive their field modulus from the universe size
    and difference bound, so the same few arguments recur constantly in
    multiround / cascading inner loops.
    """
    if value <= 2:
        return 2
    if is_probable_prime(value):
        return value
    return next_prime(value)
