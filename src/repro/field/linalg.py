"""Linear algebra over GF(p): Gaussian elimination and nullspace vectors.

The rational-function interpolation step of the characteristic-polynomial
protocol (Theorem 2.3) reduces to finding a nonzero vector in the nullspace
of a small linear system over GF(p); the paper notes this costs ``O(d^3)``
via Gaussian elimination, which is exactly what we implement.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ParameterError
from repro.field.gfp import PrimeField


def gaussian_elimination(
    field: PrimeField, matrix: Sequence[Sequence[int]]
) -> tuple[list[list[int]], list[int]]:
    """Reduce ``matrix`` to reduced row echelon form over ``field``.

    Returns
    -------
    (rref, pivot_columns):
        The reduced matrix (as a new list of lists of canonical residues) and
        the list of pivot column indices, one per nonzero row.
    """
    rows = [[field.element(entry) for entry in row] for row in matrix]
    if not rows:
        return [], []
    num_cols = len(rows[0])
    if any(len(row) != num_cols for row in rows):
        raise ParameterError("matrix rows must all have the same length")

    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(num_cols):
        if pivot_row >= len(rows):
            break
        # Find a row with a nonzero entry in this column.
        chosen = None
        for candidate in range(pivot_row, len(rows)):
            if rows[candidate][col] != 0:
                chosen = candidate
                break
        if chosen is None:
            continue
        rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
        # Normalise the pivot row.
        inv = field.inv(rows[pivot_row][col])
        rows[pivot_row] = [field.mul(inv, entry) for entry in rows[pivot_row]]
        # Eliminate the column from every other row.
        for other in range(len(rows)):
            if other == pivot_row or rows[other][col] == 0:
                continue
            factor = rows[other][col]
            rows[other] = [
                field.sub(entry, field.mul(factor, pivot_entry))
                for entry, pivot_entry in zip(rows[other], rows[pivot_row])
            ]
        pivot_columns.append(col)
        pivot_row += 1
    return rows, pivot_columns


def solve_nullspace_vector(
    field: PrimeField, matrix: Sequence[Sequence[int]]
) -> list[int] | None:
    """Return a nonzero vector ``v`` with ``matrix @ v = 0`` over GF(p).

    Returns ``None`` when the nullspace is trivial (matrix has full column
    rank).  When several free variables exist the *last* free column is set
    to one and the rest to zero, which for the rational interpolation system
    corresponds to fixing the highest-degree denominator coefficient -- the
    conventional normalisation.
    """
    if not matrix:
        return None
    num_cols = len(matrix[0])
    rref, pivot_columns = gaussian_elimination(field, matrix)
    free_columns = [col for col in range(num_cols) if col not in pivot_columns]
    if not free_columns:
        return None
    chosen_free = free_columns[-1]
    solution = [0] * num_cols
    solution[chosen_free] = 1
    # Back-substitute: each pivot row reads  x_pivot + sum(coeff * x_free) = 0.
    for row, pivot_col in zip(rref, pivot_columns):
        value = 0
        for col in free_columns:
            if row[col]:
                value = field.add(value, field.mul(row[col], solution[col]))
        solution[pivot_col] = field.neg(value)
    return solution


def solve_linear_system(
    field: PrimeField,
    matrix: Sequence[Sequence[int]],
    rhs: Sequence[int],
) -> list[int] | None:
    """Solve ``matrix @ x = rhs`` over GF(p); return ``None`` if inconsistent.

    When the system is under-determined an arbitrary particular solution is
    returned (free variables set to zero).
    """
    if len(matrix) != len(rhs):
        raise ParameterError("matrix and right-hand side sizes disagree")
    if not matrix:
        return []
    num_cols = len(matrix[0])
    augmented = [list(row) + [value] for row, value in zip(matrix, rhs)]
    rref, pivot_columns = gaussian_elimination(field, augmented)
    for row in rref:
        if all(entry == 0 for entry in row[:num_cols]) and row[num_cols] != 0:
            return None
    solution = [0] * num_cols
    for row, pivot_col in zip(rref, pivot_columns):
        if pivot_col == num_cols:
            return None
        solution[pivot_col] = row[num_cols]
    return solution
