"""Linear algebra over GF(p): Gaussian elimination and nullspace vectors.

The rational-function interpolation step of the characteristic-polynomial
protocol (Theorem 2.3) reduces to finding a nonzero vector in the nullspace
of a small linear system over GF(p); the paper notes this costs ``O(d^3)``
via Gaussian elimination, which is exactly what we implement.

Every entry point takes an optional ``kernel`` (see
:mod:`repro.field.kernels`): the reference kernel reproduces the classic
row-by-row elimination, the NumPy kernel eliminates whole columns per pivot
with vectorized modular arithmetic.  Both return bit-identical reduced
matrices (same pivot choice, exact arithmetic).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ParameterError
from repro.field.gfp import PrimeField
from repro.field.kernels import FieldKernel, kernel_for


def gaussian_elimination(
    field: PrimeField,
    matrix: Sequence[Sequence[int]],
    kernel: FieldKernel | None = None,
) -> tuple[list[list[int]], list[int]]:
    """Reduce ``matrix`` to reduced row echelon form over ``field``.

    Returns
    -------
    (rref, pivot_columns):
        The reduced matrix (as a new list of lists of canonical residues) and
        the list of pivot column indices, one per nonzero row.
    """
    if kernel is None:
        kernel = kernel_for(field.modulus)
    return kernel.gaussian_elimination(field.modulus, matrix)


def solve_nullspace_vector(
    field: PrimeField,
    matrix: Sequence[Sequence[int]],
    kernel: FieldKernel | None = None,
) -> list[int] | None:
    """Return a nonzero vector ``v`` with ``matrix @ v = 0`` over GF(p).

    Returns ``None`` when the nullspace is trivial (matrix has full column
    rank).  When several free variables exist the *last* free column is set
    to one and the rest to zero, which for the rational interpolation system
    corresponds to fixing the highest-degree denominator coefficient -- the
    conventional normalisation.
    """
    if not matrix:
        return None
    num_cols = len(matrix[0])
    rref, pivot_columns = gaussian_elimination(field, matrix, kernel)
    free_columns = [col for col in range(num_cols) if col not in pivot_columns]
    if not free_columns:
        return None
    chosen_free = free_columns[-1]
    solution = [0] * num_cols
    solution[chosen_free] = 1
    # Back-substitute: each pivot row reads  x_pivot + sum(coeff * x_free) = 0.
    for row, pivot_col in zip(rref, pivot_columns):
        value = 0
        for col in free_columns:
            if row[col]:
                value = field.add(value, field.mul(row[col], solution[col]))
        solution[pivot_col] = field.neg(value)
    return solution


def solve_linear_system(
    field: PrimeField,
    matrix: Sequence[Sequence[int]],
    rhs: Sequence[int],
    kernel: FieldKernel | None = None,
) -> list[int] | None:
    """Solve ``matrix @ x = rhs`` over GF(p); return ``None`` if inconsistent.

    When the system is under-determined an arbitrary particular solution is
    returned (free variables set to zero).
    """
    if len(matrix) != len(rhs):
        raise ParameterError("matrix and right-hand side sizes disagree")
    if kernel is None:
        kernel = kernel_for(field.modulus)
    return kernel.solve_linear_system(field.modulus, matrix, rhs)


def rational_interpolation_system(
    field: PrimeField,
    points: Sequence[int],
    numer_evals: Sequence[int],
    denom_evals: Sequence[int],
    deg_num: int,
    deg_den: int,
    kernel: FieldKernel | None = None,
) -> tuple[list[list[int]], list[int]]:
    """Assemble the Vandermonde-style system of the CPI interpolation step.

    Row ``i`` encodes ``P(z_i) - f_i Q(z_i) = 0`` for the *monic* numerator
    ``P`` (degree ``deg_num``) and denominator ``Q`` (degree ``deg_den``),
    where ``f_i = numer_evals[i] / denom_evals[i]`` is the evaluation ratio
    ``chi_A(z_i) / chi_B(z_i)``; the right-hand side carries the two forced
    leading terms.  Ratios are produced with one batched inversion
    (Montgomery's trick) and the powers with a batched Vandermonde build on
    the vectorized kernel.
    """
    if kernel is None:
        kernel = kernel_for(field.modulus)
    return kernel.assemble_rational_system(
        field.modulus, points, numer_evals, denom_evals, deg_num, deg_den
    )
