"""Pluggable GF(p) field kernels: the batched arithmetic behind the CPI path.

The characteristic-polynomial protocol (Theorem 2.3) and the multiround
protocol that leans on it (Theorem 3.9) spend essentially all of their time
in four inner loops: evaluating characteristic polynomials ``prod (z - r)``
at the shared points, assembling and solving the rational-interpolation
linear system (Gaussian elimination, the paper's ``O(d^3)`` step),
polynomial products/remainders, and Cantor-Zassenhaus root finding.  This
module isolates those loops behind a backend seam, exactly mirroring the
IBLT cell-store registry (:mod:`repro.config`):

* :class:`FieldKernel` -- the abstract kernel interface.  Batch-first: every
  method takes whole vectors/matrices of field elements.
* :class:`PythonFieldKernel` -- the reference implementation over plain
  Python integers.  Handles any modulus; always available; defines the
  semantics the other kernels must match value for value.
* :class:`NumpyFieldKernel` -- vectorized implementation over NumPy
  ``int64`` arrays.  Safe only for ``p < 2**31`` (products of two canonical
  residues then fit in a signed 64-bit word); larger moduli transparently
  fall back to the reference kernel via the registry.
* :class:`~repro.field.kernels_numba.NumbaFieldKernel` (registered from its
  own module) -- the compiled tier: the modmul-heavy inner loops (schoolbook
  convolution, Horner evaluation, root-product evaluation, the Euclidean
  gcd chain) JIT-compiled by numba, falling back along
  ``numba -> numpy -> python`` when a dependency is missing.

Determinism: kernels are observationally identical.  All arithmetic is
exact (integer, never floating point), so batched evaluation, elimination
and system assembly return *bit-identical* values across kernels.  Root
finding is allowed to take a different (faster) path internally -- the set
of GF(p) roots of a polynomial is intrinsic, so
:meth:`FieldKernel.find_distinct_roots` returns the same sorted list no
matter which kernel computed it.  ``tests/field/test_kernels.py`` and
``tests/test_cross_kernel_determinism.py`` pin both guarantees.

Kernel selection follows the cell-store precedence: explicit
``field_kernel=`` keyword > :func:`use_kernel` context >
:func:`repro.config.set_default_field_kernel` > ``REPRO_FIELD_KERNEL``
environment variable > ``"auto"`` (highest priority usable kernel).
"""

from __future__ import annotations

import contextlib
from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Sequence

from repro.config import register_field_kernel, resolve_field_kernel
from repro.errors import ParameterError
from repro.hashing.mix import HAS_NUMPY

if HAS_NUMPY:
    import numpy as _np

_MASK16 = 0xFFFF


# ---------------------------------------------------------------------------
# Shared scalar helpers (exact semantics both kernels build on)
# ---------------------------------------------------------------------------


def _trim(coeffs: list[int]) -> list[int]:
    """Strip trailing zero coefficients in place; return the list."""
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return coeffs


def _poly_mul_scalar(p: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Schoolbook product of two canonical coefficient sequences mod ``p``."""
    if not a or not b:
        return []
    product = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj == 0:
                continue
            product[i + j] = (product[i + j] + ai * bj) % p
    return product


def _poly_divmod_scalar(
    p: int, a: Sequence[int], b: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Long division of ``a`` by nonzero ``b``; returns trimmed ``(q, r)``."""
    remainder = list(a)
    quotient = [0] * max(0, len(a) - len(b) + 1)
    inv_lead = 1 if b[-1] == 1 else pow(b[-1], -1, p)
    deg_b = len(b) - 1
    body = b[:deg_b]
    for shift in range(len(quotient) - 1, -1, -1):
        coeff_index = shift + deg_b
        if coeff_index >= len(remainder):
            continue
        factor = remainder[coeff_index] * inv_lead % p
        if factor == 0:
            continue
        quotient[shift] = factor
        remainder[shift:coeff_index] = [
            (rc - factor * bc) % p
            for rc, bc in zip(remainder[shift:coeff_index], body)
        ]
        remainder[coeff_index] = 0
    return _trim(quotient), _trim(remainder)


def _poly_mod_scalar(p: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Remainder only: skips the quotient bookkeeping of the full division."""
    deg_b = len(b) - 1
    if deg_b < 0:
        raise ZeroDivisionError("polynomial division by zero")
    remainder = list(a)
    if len(remainder) <= deg_b:
        return _trim(remainder)
    inv_lead = 1 if b[-1] == 1 else pow(b[-1], -1, p)
    body = b[: deg_b]
    for idx in range(len(remainder) - 1, deg_b - 1, -1):
        coeff = remainder[idx]
        if coeff == 0:
            continue
        factor = coeff * inv_lead % p
        shift = idx - deg_b
        remainder[shift:idx] = [
            (rc - factor * bc) % p for rc, bc in zip(remainder[shift:idx], body)
        ]
    del remainder[deg_b:]
    return _trim(remainder)


def _poly_monic_scalar(p: int, a: Sequence[int]) -> list[int]:
    if not a or a[-1] == 1:
        return list(a)
    inv_lead = pow(a[-1], -1, p)
    return [c * inv_lead % p for c in a]


def _poly_gcd_scalar(p: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Monic greatest common divisor via the Euclidean algorithm.

    Self-contained in-place remainder chain: the CPI root finder issues many
    small gcds per decode, so per-step helper calls and list churn matter.
    """
    x, y = _trim(list(a)), _trim(list(b))
    while y:
        deg_y = len(y) - 1
        if len(x) > deg_y:
            inv_lead = 1 if y[-1] == 1 else pow(y[-1], -1, p)
            if deg_y <= 6:
                # Index loop beats slice machinery on tiny divisors.
                for idx in range(len(x) - 1, deg_y - 1, -1):
                    coeff = x[idx]
                    if coeff:
                        factor = coeff * inv_lead % p
                        base = idx - deg_y
                        for j in range(deg_y):
                            x[base + j] = (x[base + j] - factor * y[j]) % p
            else:
                body = y[:deg_y]
                for idx in range(len(x) - 1, deg_y - 1, -1):
                    coeff = x[idx]
                    if coeff:
                        factor = coeff * inv_lead % p
                        base = idx - deg_y
                        x[base:idx] = [
                            (rc - factor * bc) % p
                            for rc, bc in zip(x[base:idx], body)
                        ]
            del x[deg_y:]
            _trim(x)
        x, y = y, x
    return _poly_monic_scalar(p, x)


def _minus_one(p: int, coeffs: list[int]) -> list[int]:
    """``poly - 1`` as a trimmed coefficient list (mod ``p``)."""
    coeffs = _trim(list(coeffs))
    if not coeffs:
        return [p - 1]
    coeffs[0] = (coeffs[0] - 1) % p
    return _trim(coeffs)


def _poly_eval_scalar(p: int, coeffs: Sequence[int], x: int) -> int:
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


def _sqrt_mod(p: int, a: int) -> int | None:
    """A square root of ``a`` modulo an odd prime ``p`` (``None`` if a non-residue).

    Deterministic Tonelli-Shanks: the non-residue witness is found by
    scanning 2, 3, 4, ... so repeated calls (and both kernels) agree on
    which of the two roots is returned.
    """
    a %= p
    if a == 0:
        return 0
    if pow(a, (p - 1) // 2, p) != 1:
        return None
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        i, probe = 0, t
        while probe != 1:
            probe = probe * probe % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        b2 = b * b % p
        m, c, t, r = i, b2, t * b2 % p, r * b % p
    return r


def _small_degree_roots(p: int, coeffs: Sequence[int]) -> list[int]:
    """All distinct GF(p) roots of a polynomial of degree <= 2 (monic or not)."""
    coeffs = _trim(list(coeffs))
    degree = len(coeffs) - 1
    if degree <= 0:
        return []
    if degree == 1:
        # c0 + c1 x = 0  =>  x = -c0 / c1.
        return [(-coeffs[0]) * pow(coeffs[1], -1, p) % p]
    if p == 2:  # pragma: no cover - universes are always larger
        return [x for x in (0, 1) if _poly_eval_scalar(p, coeffs, x) == 0]
    inv_lead = pow(coeffs[2], -1, p)
    b = coeffs[1] * inv_lead % p
    c = coeffs[0] * inv_lead % p
    disc = (b * b - 4 * c) % p
    inv2 = pow(2, -1, p)
    if disc == 0:
        return [(-b) * inv2 % p]
    root = _sqrt_mod(p, disc)
    if root is None:
        return []
    return sorted({(-b + root) * inv2 % p, (-b - root) * inv2 % p})


# ---------------------------------------------------------------------------
# The kernel interface
# ---------------------------------------------------------------------------


class FieldKernel(ABC):
    """Batched GF(p) arithmetic backend for the CPI reconciliation path."""

    #: Registry name (see :mod:`repro.config`).
    name: ClassVar[str]
    #: True when batch operations run over whole arrays rather than loops.
    vectorized: ClassVar[bool]
    #: Auto-selection preference; higher wins.
    priority: ClassVar[int]

    # -- capability probes ----------------------------------------------------------

    @classmethod
    def available(cls) -> bool:
        """True when the kernel's dependencies are importable."""
        return True

    @classmethod
    def supports(cls, modulus: int) -> bool:
        """True when the kernel's arithmetic is exact for this modulus."""
        return True

    # -- batched primitives ---------------------------------------------------------

    @abstractmethod
    def evaluate_from_roots_many(
        self, modulus: int, roots: Iterable[int], points: Sequence[int]
    ) -> list[int]:
        """Evaluate ``prod (z - r)`` at every ``z`` in ``points`` in one pass."""

    @abstractmethod
    def poly_eval_many(
        self, modulus: int, coeffs: Sequence[int], points: Sequence[int]
    ) -> list[int]:
        """Horner-evaluate one (low-first) coefficient vector at many points."""

    @abstractmethod
    def poly_mul(self, modulus: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Product of two trimmed canonical coefficient sequences."""

    @abstractmethod
    def poly_divmod(
        self, modulus: int, a: Sequence[int], b: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Long division ``a = q * b + r`` with trimmed canonical outputs."""

    def poly_gcd(self, modulus: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Monic greatest common divisor of two coefficient sequences.

        One kernel call instead of a per-Euclid-step dispatch.  The default
        is the shared scalar chain, which is optimal for the small degrees
        most protocols see; vectorized kernels override it for the large
        degrees of the d=1e4 CZ regime (bit-identical results either way).
        """
        return _poly_gcd_scalar(modulus, a, b)

    @abstractmethod
    def gaussian_elimination(
        self, modulus: int, matrix: Sequence[Sequence[int]]
    ) -> tuple[list[list[int]], list[int]]:
        """Reduced row echelon form and pivot columns over GF(p)."""

    @abstractmethod
    def find_distinct_roots(self, modulus: int, coeffs: Sequence[int], rng) -> list[int]:
        """All distinct GF(p) roots of a nonzero polynomial, sorted ascending."""

    def solve_linear_system(
        self, modulus: int, matrix: Sequence[Sequence[int]], rhs: Sequence[int]
    ) -> list[int] | None:
        """Solve ``matrix @ x = rhs``; ``None`` if inconsistent.

        Under-determined systems get the canonical particular solution with
        free variables set to zero (fixed by the uniqueness of the reduced
        echelon form, so every kernel returns identical vectors).
        """
        if not matrix:
            return []
        num_cols = len(matrix[0])
        augmented = [list(row) + [value] for row, value in zip(matrix, rhs)]
        rref, pivot_columns = self.gaussian_elimination(modulus, augmented)
        # Inconsistent iff the augmented column is a pivot.
        if pivot_columns and pivot_columns[-1] == num_cols:
            return None
        solution = [0] * num_cols
        for row, pivot_col in zip(rref, pivot_columns):
            solution[pivot_col] = row[num_cols]
        return solution

    def assemble_rational_system(
        self,
        modulus: int,
        points: Sequence[int],
        numer_evals: Sequence[int],
        denom_evals: Sequence[int],
        deg_num: int,
        deg_den: int,
    ) -> tuple[list[list[int]], list[int]]:
        """The Vandermonde-style system of the rational interpolation step.

        Row ``i`` encodes ``P(z_i) - f_i Q(z_i) = 0`` for monic ``P``
        (degree ``deg_num``) and ``Q`` (degree ``deg_den``) with
        ``f_i = numer_evals[i] / denom_evals[i]``; the right-hand side moves
        the two forced leading coefficients over.  The default implementation
        is scalar but already uses one batched inversion for the ratios.
        """
        p = modulus
        ratios = [
            n * inv_d % p
            for n, inv_d in zip(numer_evals, self.inv_many(p, denom_evals))
        ]
        matrix: list[list[int]] = []
        rhs: list[int] = []
        for z, f in zip(points, ratios):
            z %= p
            row = []
            power = 1
            for _ in range(deg_num):
                row.append(power)
                power = power * z % p
            power = 1
            for _ in range(deg_den):
                row.append((-(f * power)) % p)
                power = power * z % p
            matrix.append(row)
            rhs.append((f * pow(z, deg_den, p) - pow(z, deg_num, p)) % p)
        return matrix, rhs

    def inv_many(self, modulus: int, values: Sequence[int]) -> list[int]:
        """Batch modular inversion (Montgomery's trick: one ``pow``, 3n muls).

        Raises :class:`ZeroDivisionError` on any zero entry, matching
        :meth:`repro.field.gfp.PrimeField.inv`.
        """
        p = modulus
        values = [v % p for v in values]
        if not values:
            return []
        prefix = [0] * len(values)
        acc = 1
        for i, v in enumerate(values):
            if v == 0:
                raise ZeroDivisionError("cannot invert zero in a prime field")
            acc = acc * v % p
            prefix[i] = acc
        inv_acc = pow(acc, -1, p)
        out = [0] * len(values)
        for i in range(len(values) - 1, 0, -1):
            out[i] = inv_acc * prefix[i - 1] % p
            inv_acc = inv_acc * values[i] % p
        out[0] = inv_acc
        return out


# ---------------------------------------------------------------------------
# Reference kernel
# ---------------------------------------------------------------------------


@register_field_kernel
class PythonFieldKernel(FieldKernel):
    """Reference kernel over plain Python integers (any modulus)."""

    name = "python"
    vectorized = False
    priority = 0

    def evaluate_from_roots_many(self, modulus, roots, points):
        p = modulus
        root_list = [r % p for r in roots]
        out = []
        for point in points:
            z = point % p
            acc = 1
            for root in root_list:
                acc = acc * (z - root) % p
            out.append(acc)
        return out

    def poly_eval_many(self, modulus, coeffs, points):
        return [_poly_eval_scalar(modulus, coeffs, z % modulus) for z in points]

    def poly_mul(self, modulus, a, b):
        return _poly_mul_scalar(modulus, a, b)

    def poly_divmod(self, modulus, a, b):
        return _poly_divmod_scalar(modulus, a, b)

    def gaussian_elimination(self, modulus, matrix):
        p = modulus
        rows = [[entry % p for entry in row] for row in matrix]
        if not rows:
            return [], []
        num_cols = len(rows[0])
        if any(len(row) != num_cols for row in rows):
            raise ParameterError("matrix rows must all have the same length")
        pivot_columns: list[int] = []
        pivot_row = 0
        for col in range(num_cols):
            if pivot_row >= len(rows):
                break
            chosen = None
            for candidate in range(pivot_row, len(rows)):
                if rows[candidate][col] != 0:
                    chosen = candidate
                    break
            if chosen is None:
                continue
            rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
            inv = pow(rows[pivot_row][col], -1, p)
            rows[pivot_row] = [inv * entry % p for entry in rows[pivot_row]]
            for other in range(len(rows)):
                if other == pivot_row or rows[other][col] == 0:
                    continue
                factor = rows[other][col]
                pivot_entries = rows[pivot_row]
                rows[other] = [
                    (entry - factor * pivot_entry) % p
                    for entry, pivot_entry in zip(rows[other], pivot_entries)
                ]
            pivot_columns.append(col)
            pivot_row += 1
        return rows, pivot_columns

    def find_distinct_roots(self, modulus, coeffs, rng):
        # Delegate to the classic recursive Cantor-Zassenhaus implementation,
        # which is the reference semantics (imported lazily: roots.py imports
        # this module for kernel dispatch).
        from repro.field.gfp import prime_field
        from repro.field.poly import Polynomial
        from repro.field.roots import _find_roots_reference

        poly = Polynomial.from_coefficients(prime_field(modulus), list(coeffs))
        return _find_roots_reference(poly, rng)


# ---------------------------------------------------------------------------
# NumPy kernel
# ---------------------------------------------------------------------------

# Below these operand sizes the vector dispatch overhead exceeds the scalar
# loop cost, so the NumPy kernel drops to the (bit-identical) scalar helpers.
_MUL_SCALAR_CUTOFF = 96  # product work: a.degree * b.degree
_DIV_SCALAR_CUTOFF = 32  # divisor length (the vectorized inner-loop width)


# Largest intermediate we allow in int64 vector arithmetic (margin below 2**63).
_INT64_SAFE = 1 << 62

# Below this divisor length the Euclidean remainder chain stays on the scalar
# helpers; at or above it each reduction step runs whole-array (the d=1e4 CZ
# regime spends nearly all of its time in these chains).
_GCD_VECTOR_CUTOFF = 48


if HAS_NUMPY:

    def _trim_arr(arr):
        """Array counterpart of :func:`_trim` (returns a view)."""
        nonzero = _np.nonzero(arr)[0]
        return arr[: int(nonzero[-1]) + 1] if nonzero.size else arr[:0]

    def _pmod_vec(p, a, b):
        """Remainder of canonical int64 arrays ``a mod b`` (``len(b) >= 2``).

        Same long-division chain as :func:`_poly_mod_scalar`, with each
        reduction step a whole-array multiply-subtract; returns a trimmed
        array.  ``a`` is not modified.
        """
        width = len(b)
        if len(a) < width:
            return _trim_arr(a.copy())
        remainder = a.copy()
        inv_lead = pow(int(b[-1]), -1, p)
        body = b[:-1]
        for idx in range(len(remainder) - 1, width - 2, -1):
            coeff = int(remainder[idx])
            if coeff == 0:
                continue
            factor = coeff * inv_lead % p
            shift = idx - width + 1
            remainder[shift:idx] = (remainder[shift:idx] - factor * body) % p
        return _trim_arr(remainder[: width - 1])

    def _poly_gcd_vec(p, a, b):
        """Monic gcd with vectorized remainder steps for large operands.

        Bit-identical to :func:`_poly_gcd_scalar` (exact arithmetic over the
        same Euclidean chain); hands the tail of the chain to the scalar
        helper once both degrees drop below :data:`_GCD_VECTOR_CUTOFF`.
        """
        x = _trim_arr(_np.asarray(a, dtype=_np.int64) % p)
        y = _trim_arr(_np.asarray(b, dtype=_np.int64) % p)
        while len(y) >= _GCD_VECTOR_CUTOFF:
            if len(x) >= len(y):
                x = _pmod_vec(p, x, y)
            x, y = y, x
        return _poly_gcd_scalar(p, [int(v) for v in x], [int(v) for v in y])

    def _pmul_np(p, a, b):
        """Exact product of canonical int64 coefficient arrays mod ``p``.

        Fast path: when every convolution term sum provably fits a signed
        64-bit word (``n * p**2 < 2**62``), one direct convolution suffices
        -- this covers every realistic universe (p up to ~2**28 at CPI
        degrees).  Otherwise coefficients are split into 16-bit limbs and
        the three partial convolutions are recombined modulo ``p``.
        """
        n = len(a) + len(b) - 1
        if n * p * p < _INT64_SAFE:
            return _np.convolve(a, b) % p
        w16 = (1 << 16) % p
        w32 = w16 * w16 % p
        ah, al = a >> 16, a & _MASK16
        if b is a:
            hh = _np.convolve(ah, ah)
            cross = _np.convolve(ah, al)
            cross = cross + cross
            ll = _np.convolve(al, al)
        else:
            bh, bl = b >> 16, b & _MASK16
            hh = _np.convolve(ah, bh)
            cross = _np.convolve(ah, bl) + _np.convolve(al, bh)
            ll = _np.convolve(al, bl)
        r = ((hh % p) * w32 + (cross % p) * w16) % p
        return (r + ll % p) % p

    class _Modulus:
        """Precomputed reduction data for a fixed monic modulus polynomial.

        Reduction of a product (degree <= 2m-2) is one small integer
        matmul: the rows give ``x^(m+j) mod q``.  When the dot products
        could overflow int64 they are pre-split into 16-bit limbs.
        """

        __slots__ = ("p", "q", "m", "x_m", "rows", "rows_hi", "rows_lo", "w16", "fast")

        def __init__(self, p, q):
            self.p = p
            self.q = q
            self.m = len(q) - 1
            self.w16 = (1 << 16) % p
            # Strict int64 bound for every fused op: convolution term sums
            # (<= m terms of p^2), the reduction matmul plus carry-in, and
            # the linear multiply's three-way sum.
            self.fast = (self.m + 1) * p * p < _INT64_SAFE
            self.x_m = (p - q[: self.m] % p) % p  # x^m mod q
            rows = _np.zeros((max(0, self.m - 1), self.m), dtype=_np.int64)
            cur = self.x_m
            for j in range(self.m - 1):
                rows[j] = cur
                if j == self.m - 2:
                    break
                top = int(cur[self.m - 1])
                nxt = _np.empty(self.m, dtype=_np.int64)
                nxt[0] = 0
                nxt[1:] = cur[: self.m - 1]
                if top:
                    nxt = (nxt + top * self.x_m) % p
                cur = nxt
            self.rows = rows
            if not self.fast:
                self.rows_hi = rows >> 16
                self.rows_lo = rows & _MASK16

        def reduce(self, u):
            """``u mod q`` for ``len(u) <= 2m - 1`` (canonical residues)."""
            m = self.m
            if len(u) <= m:
                out = _np.zeros(m, dtype=_np.int64)
                out[: len(u)] = u
                return out
            lo, hi = u[:m], u[m:]
            k = len(hi)
            if self.fast:
                return (lo + hi @ self.rows[:k]) % self.p
            # Limb path: each dot product sums terms below p * 2**16, so cap
            # the summed length and fold chunk-wise to stay within int64.
            safe = max(1, int(_INT64_SAFE // (self.p << 16)))
            acc = lo % self.p
            for start in range(0, k, safe):
                stop = min(start + safe, k)
                part = hi[start:stop]
                acc = (
                    acc
                    + ((part @ self.rows_hi[start:stop]) % self.p) * self.w16
                    + (part @ self.rows_lo[start:stop]) % self.p
                ) % self.p
            return acc

        def mulmod(self, a, b):
            return self.reduce(_pmul_np(self.p, a, b))

        def mul_linear(self, cur, shift):
            """``(x + shift) * cur mod q`` without a full convolution."""
            p, m = self.p, self.m
            top = int(cur[m - 1])
            if self.fast:
                # shift*cur + top*x_m is at most 2p^2 + p, well within int64.
                res = shift * cur
                res[1:] += cur[: m - 1]
                if top:
                    res += top * self.x_m
                res %= p
                return res
            full = _np.empty(m + 1, dtype=_np.int64)
            full[0] = 0
            full[1:] = cur
            if shift:
                full[:m] = (full[:m] + shift * cur) % p
            res = full[:m]
            if top:
                res = (res + top * self.x_m) % p
            return res

        def pow_linear(self, shift, exponent):
            """``(x + shift) ** exponent mod q`` (exponent >= 1, m >= 2)."""
            p, m = self.p, self.m
            cur = _np.zeros(m, dtype=_np.int64)
            cur[0] = shift % p
            cur[1] = 1
            bits = bin(exponent)[3:]
            if self.fast:
                rows = self.rows
                for bit in bits:
                    u = _np.convolve(cur, cur) % p
                    cur = (u[:m] + u[m:] @ rows) % p
                    if bit == "1":
                        cur = self.mul_linear(cur, shift)
                return cur
            for bit in bits:
                cur = self.mulmod(cur, cur)
                if bit == "1":
                    cur = self.mul_linear(cur, shift)
            return cur


@register_field_kernel
class NumpyFieldKernel(FieldKernel):
    """Vectorized kernel over NumPy int64 arrays (odd moduli below 2**31)."""

    name = "numpy"
    vectorized = True
    priority = 10

    @classmethod
    def available(cls):
        return HAS_NUMPY

    @classmethod
    def supports(cls, modulus):
        # Products of two canonical residues must fit a signed 64-bit word,
        # and the root finder assumes an odd modulus.
        return HAS_NUMPY and 2 < modulus < 2**31

    # -- evaluation -----------------------------------------------------------------

    @staticmethod
    def _residues(p, values):
        """Canonical int64 residue array, with a big-int fallback path."""
        try:
            return _np.asarray(
                values if isinstance(values, (list, tuple)) else list(values),
                dtype=_np.int64,
            ) % p
        except (OverflowError, TypeError, ValueError):
            return _np.asarray([v % p for v in values], dtype=_np.int64)

    def evaluate_from_roots_many(self, modulus, roots, points):
        p = modulus
        root_array = self._residues(p, roots)
        point_array = self._residues(p, points)
        if root_array.size == 0:
            return [1] * len(points)
        if point_array.size == 0:
            return []
        # (num_points, num_roots) difference matrix, then a balanced product
        # tree along the root axis: log_r(n) vectorized multiply-mod passes.
        # Radix 3 when three canonical residues multiply without overflowing
        # int64 (p < ~2^20.6), radix 2 otherwise.
        diff = (point_array[:, None] - root_array[None, :]) % p
        radix = 3 if p * p * p < _INT64_SAFE else 2
        while diff.shape[1] > 1:
            width = diff.shape[1]
            rem = width % radix
            if rem:
                spill = diff[:, width - rem :]
                diff = diff[:, : width - rem]
                if diff.shape[1] == 0:
                    diff = spill[:, :1] if rem == 1 else spill[:, :1] * spill[:, 1:2] % p
                    continue
            if radix == 3 and diff.shape[1] >= 3:
                diff = diff[:, 0::3] * diff[:, 1::3] * diff[:, 2::3] % p
            else:
                diff = diff[:, 0::2] * diff[:, 1::2] % p
            if rem:
                diff[:, :1] = diff[:, :1] * spill[:, :1] % p
                if rem == 2:
                    diff[:, :1] = diff[:, :1] * spill[:, 1:2] % p
        return diff[:, 0].tolist()

    def poly_eval_many(self, modulus, coeffs, points):
        p = modulus
        if not len(points):
            return []
        if not coeffs:
            return [0] * len(points)
        z = self._residues(p, points)
        acc = _np.full(z.shape, coeffs[-1] % p, dtype=_np.int64)
        for c in reversed(coeffs[:-1]):
            acc *= z
            acc += c % p
            acc %= p
        return acc.tolist()

    # -- polynomial arithmetic ------------------------------------------------------

    def poly_mul(self, modulus, a, b):
        if not a or not b:
            return []
        if (len(a) - 1) * (len(b) - 1) < _MUL_SCALAR_CUTOFF:
            return _poly_mul_scalar(modulus, a, b)
        a_arr = _np.asarray(a, dtype=_np.int64)
        b_arr = a_arr if b is a else _np.asarray(b, dtype=_np.int64)
        return _trim([int(v) for v in _pmul_np(modulus, a_arr, b_arr)])

    def poly_gcd(self, modulus, a, b):
        if min(len(a), len(b)) < _GCD_VECTOR_CUTOFF:
            return _poly_gcd_scalar(modulus, a, b)
        return _poly_gcd_vec(modulus, a, b)

    @staticmethod
    def _poly_mod_auto(modulus, a, b):
        """Remainder with the gcd chain's scalar/vector dispatch (lists in/out)."""
        if min(len(a), len(b)) < _GCD_VECTOR_CUTOFF:
            return _poly_mod_scalar(modulus, a, b)
        remainder = _pmod_vec(
            modulus,
            _np.asarray(a, dtype=_np.int64) % modulus,
            _np.asarray(b, dtype=_np.int64) % modulus,
        )
        return [int(v) for v in remainder]

    def poly_divmod(self, modulus, a, b):
        quotient_len = max(0, len(a) - len(b) + 1)
        if len(b) < _DIV_SCALAR_CUTOFF or quotient_len == 0:
            return _poly_divmod_scalar(modulus, a, b)
        p = modulus
        remainder = _np.asarray(a, dtype=_np.int64) % p
        divisor = _np.asarray(b, dtype=_np.int64) % p
        width = len(b)
        inv_lead = pow(int(divisor[-1]), -1, p)
        quotient = [0] * quotient_len
        for shift in range(quotient_len - 1, -1, -1):
            factor = int(remainder[shift + width - 1]) * inv_lead % p
            if factor == 0:
                continue
            quotient[shift] = factor
            window = remainder[shift : shift + width]
            remainder[shift : shift + width] = (window - factor * divisor) % p
        return _trim(quotient), _trim([int(v) for v in remainder])

    # -- linear algebra -------------------------------------------------------------

    def gaussian_elimination(self, modulus, matrix):
        p = modulus
        rows = [list(row) for row in matrix]
        if not rows:
            return [], []
        num_cols = len(rows[0])
        if any(len(row) != num_cols for row in rows):
            raise ParameterError("matrix rows must all have the same length")
        arr = _np.asarray(rows, dtype=_np.int64) % p
        pivot_columns: list[int] = []
        pivot_row = 0
        num_rows = arr.shape[0]
        for col in range(num_cols):
            if pivot_row >= num_rows:
                break
            # Optimistic pivoting: the diagonal entry is almost always
            # usable for the dense Vandermonde-style CPI systems; fall back
            # to a column scan (same choice as the reference kernel: first
            # row with a nonzero entry) only when it is zero.
            if arr[pivot_row, col] == 0:
                nonzero = _np.nonzero(arr[pivot_row:, col])[0]
                if nonzero.size == 0:
                    continue
                chosen = pivot_row + int(nonzero[0])
                arr[[pivot_row, chosen]] = arr[[chosen, pivot_row]]
            inv = pow(int(arr[pivot_row, col]), -1, p)
            # Columns left of the pivot are already reduced and the pivot row
            # is zero there, so the update only needs the right-hand block,
            # in place (a residue minus a single product stays within int64).
            block = arr[:, col:]
            pivot_block = block[pivot_row] * inv % p
            block[pivot_row] = pivot_block
            factors = block[:, 0].copy()
            factors[pivot_row] = 0
            block -= factors[:, None] * pivot_block[None, :]
            block %= p
            pivot_columns.append(col)
            pivot_row += 1
        return arr.tolist(), pivot_columns

    def solve_linear_system(self, modulus, matrix, rhs):
        p = modulus
        if not matrix:
            return []
        num_cols = len(matrix[0])
        # The back-substitution dot products sum up to num_cols p^2 terms.
        if (num_cols + 2) * p * p >= _INT64_SAFE or any(
            len(row) != num_cols for row in matrix
        ):
            return super().solve_linear_system(modulus, matrix, rhs)
        arr = (
            _np.asarray(
                [list(row) + [value] for row, value in zip(matrix, rhs)],
                dtype=_np.int64,
            )
            % p
        )
        num_rows = arr.shape[0]
        # Forward elimination only (rows below the pivot); the reduced form
        # above the pivot is never needed for a single solve.  Pivots are
        # processed two at a time: a closed-form 2x2 inverse turns the
        # whole block step into two int64 matmuls (echelon solutions are
        # canonical, so any exact elimination order yields the same result).
        pivot_columns: list[int] = []
        pivot_row = 0
        col = 0
        block_width = 2 if (2 * p * p) < _INT64_SAFE else 1
        while col < num_cols and pivot_row < num_rows:
            width = min(block_width, num_cols - col, num_rows - pivot_row)
            if width > 1:
                a00 = int(arr[pivot_row, col])
                a01 = int(arr[pivot_row, col + 1])
                a10 = int(arr[pivot_row + 1, col])
                a11 = int(arr[pivot_row + 1, col + 1])
                det = (a00 * a11 - a01 * a10) % p
                if det != 0:
                    inv_det = pow(det, -1, p)
                    inv_arr = _np.asarray(
                        [
                            [a11 * inv_det % p, (-a01) * inv_det % p],
                            [(-a10) * inv_det % p, a00 * inv_det % p],
                        ],
                        dtype=_np.int64,
                    )
                    # Pivot rows become echelon (identity in block columns)...
                    reduced = inv_arr @ arr[pivot_row : pivot_row + width] % p
                    arr[pivot_row : pivot_row + width] = reduced
                    below = arr[pivot_row + width :]
                    if below.size:
                        # ...and one rank-`width` update clears every row below.
                        coeffs_below = below[:, col : col + width].copy()
                        below -= coeffs_below @ reduced
                        below %= p
                    pivot_columns.extend(range(col, col + width))
                    pivot_row += width
                    col += width
                    continue
            # Scalar fallback: one reference-style pivot step.
            if arr[pivot_row, col] == 0:
                nonzero = _np.nonzero(arr[pivot_row:, col])[0]
                if nonzero.size == 0:
                    col += 1
                    continue
                chosen = pivot_row + int(nonzero[0])
                arr[[pivot_row, chosen]] = arr[[chosen, pivot_row]]
            below = arr[pivot_row + 1 :]
            if below.size:
                inv = pow(int(arr[pivot_row, col]), -1, p)
                factors = below[:, col] * inv % p
                below -= factors[:, None] * arr[pivot_row][None, :]
                below %= p
            pivot_columns.append(col)
            pivot_row += 1
            col += 1
        # Rows below the rank have an all-zero left side by construction.
        if arr[pivot_row:, num_cols].any():
            return None
        solution = _np.zeros(num_cols, dtype=_np.int64)
        for k in range(pivot_row - 1, -1, -1):
            col = pivot_columns[k]
            row = arr[k]
            acc = int(row[col + 1 : num_cols] @ solution[col + 1 :]) if col + 1 < num_cols else 0
            inv = pow(int(row[col]), -1, p)
            solution[col] = (int(row[num_cols]) - acc) % p * inv % p
        return solution.tolist()

    def assemble_rational_system(
        self, modulus, points, numer_evals, denom_evals, deg_num, deg_den
    ):
        p = modulus
        if not len(points):
            return [], []
        z = _np.asarray([v % p for v in points], dtype=_np.int64)
        ratios = _np.asarray(
            [
                n * inv_d % p
                for n, inv_d in zip(numer_evals, self.inv_many(p, denom_evals))
            ],
            dtype=_np.int64,
        )
        max_power = max(deg_num, deg_den)
        powers = _np.empty((len(points), max_power + 1), dtype=_np.int64)
        powers[:, 0] = 1
        if max_power:
            powers[:, 1] = z
            # Column doubling: powers[k:2k] = powers[:k] * z^k, log passes.
            filled = 2
            while filled <= max_power:
                take = min(filled, max_power + 1 - filled)
                z_filled = powers[:, filled - 1] * z % p
                powers[:, filled : filled + take] = (
                    powers[:, :take] * z_filled[:, None]
                ) % p
                filled += take
        matrix = _np.empty((len(points), deg_num + deg_den), dtype=_np.int64)
        matrix[:, :deg_num] = powers[:, :deg_num]
        matrix[:, deg_num:] = (-(ratios[:, None] * powers[:, :deg_den])) % p
        rhs = (ratios * powers[:, deg_den] - powers[:, deg_num]) % p
        return matrix.tolist(), rhs.tolist()

    # -- root finding ---------------------------------------------------------------

    def find_distinct_roots(self, modulus, coeffs, rng):
        """Cantor-Zassenhaus with level-batched splitting.

        Differences from the reference implementation (results are identical,
        the set of roots being intrinsic to the polynomial):

        * ``x^((p-1)/2) mod f`` is computed once and reused both for the
          distinct-linear-part extraction (``x^p = (x^e)^2 x``) and as the
          free first split of the root product;
        * every subsequent level computes *one* vectorized modular
          exponentiation modulo the product of all still-unsplit factors and
          reduces it per factor, instead of one exponentiation per factor;
        * factors of degree <= 2 are finished with the closed quadratic
          formula (deterministic Tonelli-Shanks), truncating the recursion
          two levels early where most of the split attempts live.
        """
        p = modulus
        trimmed = _trim([c % p for c in coeffs])
        if not trimmed:
            raise ParameterError("cannot find roots of the zero polynomial")
        f = _poly_monic_scalar(p, trimmed)
        degree = len(f) - 1
        if degree <= 0:
            return []
        roots: list[int] = []
        if degree <= 2:
            return _small_degree_roots(p, f)

        exponent = (p - 1) // 2
        ctx = _Modulus(p, _np.asarray(f, dtype=_np.int64))
        # h = x^e mod f; then x^p mod f = (h^2 mod f) * x mod f.
        h = ctx.pow_linear(0, exponent)
        x_p = ctx.mul_linear(ctx.mulmod(h, h), 0)
        x_p_minus_x = [int(v) for v in x_p]
        x_p_minus_x[1] = (x_p_minus_x[1] - 1) % p
        linear_part = self.poly_gcd(p, f, _trim(x_p_minus_x))

        pending: list[list[int]] = []

        def resolve(factor: list[int], target: list[list[int]]) -> None:
            if len(factor) - 1 <= 0:
                return
            if len(factor) - 1 <= 2:
                roots.extend(_small_degree_roots(p, factor))
            else:
                target.append(factor)

        def split_with(
            factor: list[int], probe: list[int], target: list[list[int]]
        ) -> bool:
            """Try gcd-splitting ``factor``; resolve or re-queue onto ``target``."""
            part = self.poly_gcd(p, factor, probe)
            if not 0 < len(part) - 1 < len(factor) - 1:
                return False
            resolve(part, target)
            resolve(self.poly_divmod(p, factor, part)[0], target)
            return True

        g_degree = len(linear_part) - 1
        h_probe = _minus_one(p, self._poly_mod_auto(p, [int(v) for v in h], linear_part))
        if g_degree <= 2:
            roots.extend(_small_degree_roots(p, linear_part))
        elif not split_with(linear_part, h_probe, pending):
            # The free split (h separates quadratic residues) was trivial.
            pending.append(linear_part)

        while pending:
            # One exponentiation per level: every pending factor divides the
            # context modulus, so (x+a)^e mod it reduces mod each factor for
            # free and one vectorized pow (reusing the precomputed reduction
            # matrix) splits the whole level with cheap scalar gcds.  Once
            # most roots are resolved, rebuild the context over the product
            # of the survivors so the squarings and probes shrink with them.
            total_degree = sum(len(factor) - 1 for factor in pending)
            if total_degree >= 3 and 2 * total_degree <= ctx.m:
                product = _np.asarray(pending[0], dtype=_np.int64)
                for factor in pending[1:]:
                    product = _pmul_np(p, product, _np.asarray(factor, dtype=_np.int64))
                ctx = _Modulus(p, product)
            shift = rng.randrange(p)
            probe = _minus_one(p, [int(v) for v in ctx.pow_linear(shift, exponent)])
            if not probe:
                continue  # (x+a)^e = 1 mod the context: retry with a fresh shift
            next_pending: list[list[int]] = []
            for factor in pending:
                if not split_with(factor, probe, next_pending):
                    next_pending.append(factor)
            pending = next_pending
        roots.sort()
        return roots


# ---------------------------------------------------------------------------
# Kernel resolution (explicit > context > process default > env > auto)
# ---------------------------------------------------------------------------

_kernel_instances: dict[type[FieldKernel], FieldKernel] = {}
_override_stack: list[str] = []


def _instance(cls: type[FieldKernel]) -> FieldKernel:
    kernel = _kernel_instances.get(cls)
    if kernel is None:
        kernel = _kernel_instances[cls] = cls()
    return kernel


def kernel_for(modulus: int, name: str | None = None) -> FieldKernel:
    """The field kernel to use for ``modulus``.

    ``name=None`` consults, in order: the innermost :func:`use_kernel`
    context, the process-wide default, the ``REPRO_FIELD_KERNEL``
    environment variable, and finally ``"auto"`` selection.  Kernels are
    stateless singletons, so this is cheap enough for per-operation calls.
    """
    if name is None and _override_stack:
        name = _override_stack[-1]
    return _instance(resolve_field_kernel(name, modulus))


@contextlib.contextmanager
def use_kernel(name: str | None):
    """Scoped kernel override: every field operation inside prefers ``name``.

    ``use_kernel(None)`` is a no-op context (inherit the surrounding
    selection), which lets protocol entry points thread an optional
    ``field_kernel=`` argument without special-casing.
    """
    if name is None:
        yield
        return
    _override_stack.append(name)
    try:
        yield
    finally:
        _override_stack.pop()
