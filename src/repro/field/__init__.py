"""Finite-field and polynomial arithmetic substrate.

The characteristic-polynomial set reconciliation protocol of Minsky,
Trachtenberg and Zippel (Theorem 2.3 in the paper) requires exact arithmetic
over a prime field GF(p) with ``p`` larger than the element universe:

* :mod:`repro.field.prime` -- primality testing and prime generation.
* :mod:`repro.field.gfp` -- the :class:`~repro.field.gfp.PrimeField` helper
  wrapping modular arithmetic (add/sub/mul/inverse/power).
* :mod:`repro.field.poly` -- dense univariate polynomials over GF(p)
  (addition, multiplication, division, GCD, evaluation, interpolation).
* :mod:`repro.field.linalg` -- Gaussian elimination and nullspace computation
  over GF(p) (used for rational-function interpolation).
* :mod:`repro.field.roots` -- root finding for polynomials over GF(p) via
  Cantor-Zassenhaus equal-degree splitting (used to extract the reconciled
  set elements from the interpolated characteristic-polynomial ratio).
* :mod:`repro.field.kernels` -- the pluggable batched-arithmetic backends
  (pure-Python reference, vectorized NumPy, and the numba-compiled tier of
  :mod:`repro.field.kernels_numba`) every hot path above runs through; see
  :mod:`repro.config` for selection.
"""

from repro.field.prime import is_probable_prime, next_prime
from repro.field.gfp import PrimeField, prime_field
from repro.field.kernels import (
    FieldKernel,
    NumpyFieldKernel,
    PythonFieldKernel,
    kernel_for,
    use_kernel,
)
from repro.field.kernels_numba import NumbaFieldKernel
from repro.field.poly import Polynomial
from repro.field.linalg import (
    gaussian_elimination,
    rational_interpolation_system,
    solve_linear_system,
    solve_nullspace_vector,
)
from repro.field.roots import find_roots

__all__ = [
    "is_probable_prime",
    "next_prime",
    "PrimeField",
    "prime_field",
    "FieldKernel",
    "PythonFieldKernel",
    "NumpyFieldKernel",
    "NumbaFieldKernel",
    "kernel_for",
    "use_kernel",
    "Polynomial",
    "solve_nullspace_vector",
    "solve_linear_system",
    "gaussian_elimination",
    "rational_interpolation_system",
    "find_roots",
]
