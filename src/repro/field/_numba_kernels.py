"""numba-compiled GF(p) loops for :class:`~repro.field.kernels_numba.NumbaFieldKernel`.

Importing this module compiles (or loads from numba's on-disk cache) the
modmul-heavy inner loops of the CPI path:

* :func:`pmul` -- schoolbook polynomial convolution mod ``p``,
* :func:`horner_many` -- one coefficient vector Horner-evaluated at many
  points,
* :func:`eval_from_roots` -- ``prod (z - r)`` at many points,
* :func:`gcd_chain` -- the full Euclidean remainder chain (returns the
  monic gcd), and
* :func:`inv_many` -- Montgomery batch inversion.

Only import it behind :func:`repro.jit.numba_available`; the kernels are
module level (a ``cache=True`` requirement) and the import fails outright
without numba.  All arithmetic is exact int64 with eager reduction -- the
kernels assume ``2 < p < 2**31`` (the compiled tier's ``supports`` gate), so
every product of canonical residues fits a signed 64-bit word and results
are bit-identical to the scalar helpers in :mod:`repro.field.kernels`.
"""

from __future__ import annotations

import numpy as np

from repro.jit import get_njit

njit = get_njit()


@njit(cache=True, inline="always")
def _modpow(base, exponent, p):
    result = np.int64(1)
    base = base % p
    while exponent > 0:
        if exponent & 1:
            result = result * base % p
        base = base * base % p
        exponent >>= 1
    return result


@njit(cache=True, inline="always")
def _modinv(value, p):
    # p is prime, so Fermat's little theorem gives the inverse.
    return _modpow(value, p - 2, p)


@njit(cache=True)
def pmul(a, b, p):
    """Schoolbook product of canonical int64 coefficient arrays mod ``p``."""
    out = np.zeros(a.shape[0] + b.shape[0] - 1, dtype=np.int64)
    for i in range(a.shape[0]):
        ai = a[i]
        if ai == 0:
            continue
        for j in range(b.shape[0]):
            bj = b[j]
            if bj != 0:
                out[i + j] = (out[i + j] + ai * bj) % p
    return out


@njit(cache=True)
def horner_many(coeffs, points, p):
    """Horner-evaluate one (low-first) coefficient vector at many points."""
    out = np.empty(points.shape[0], dtype=np.int64)
    degree = coeffs.shape[0] - 1
    for k in range(points.shape[0]):
        z = points[k] % p
        acc = np.int64(0)
        for idx in range(degree, -1, -1):
            acc = (acc * z + coeffs[idx]) % p
        out[k] = acc
    return out


@njit(cache=True)
def eval_from_roots(roots, points, p):
    """Evaluate ``prod (z - r)`` at every point, one fused loop per point."""
    out = np.empty(points.shape[0], dtype=np.int64)
    for k in range(points.shape[0]):
        z = points[k] % p
        acc = np.int64(1)
        for idx in range(roots.shape[0]):
            acc = acc * ((z - roots[idx]) % p) % p
        out[k] = acc
    return out


@njit(cache=True)
def gcd_chain(a, b, p):
    """Monic gcd of canonical int64 coefficient arrays (trimmed result).

    The same Euclidean remainder chain as ``_poly_gcd_scalar``, compiled:
    in-place reduction of the larger operand by the smaller, swap, repeat.
    """
    x = a.copy()
    y = b.copy()
    len_x = x.shape[0]
    while len_x and x[len_x - 1] == 0:
        len_x -= 1
    len_y = y.shape[0]
    while len_y and y[len_y - 1] == 0:
        len_y -= 1
    while len_y > 0:
        deg_y = len_y - 1
        if len_x > deg_y:
            inv_lead = _modinv(y[deg_y], p)
            for idx in range(len_x - 1, deg_y - 1, -1):
                coeff = x[idx]
                if coeff != 0:
                    factor = coeff * inv_lead % p
                    base = idx - deg_y
                    for j in range(deg_y):
                        x[base + j] = (x[base + j] - factor * y[j]) % p
            len_x = deg_y
            while len_x and x[len_x - 1] == 0:
                len_x -= 1
        x, y = y, x
        len_x, len_y = len_y, len_x
    result = x[:len_x].copy()
    if len_x and result[len_x - 1] != 1:
        inv_lead = _modinv(result[len_x - 1], p)
        for idx in range(len_x):
            result[idx] = result[idx] * inv_lead % p
    return result


@njit(cache=True)
def inv_many(values, p):
    """Montgomery batch inversion; values must be canonical and nonzero."""
    n = values.shape[0]
    prefix = np.empty(n, dtype=np.int64)
    acc = np.int64(1)
    for i in range(n):
        acc = acc * values[i] % p
        prefix[i] = acc
    inv_acc = _modinv(acc, p)
    out = np.empty(n, dtype=np.int64)
    for i in range(n - 1, 0, -1):
        out[i] = inv_acc * prefix[i - 1] % p
        inv_acc = inv_acc * values[i] % p
    out[0] = inv_acc
    return out
