"""The compiled field-kernel tier: numba-JIT GF(p) inner loops.

:class:`NumbaFieldKernel` keeps :class:`~repro.field.kernels.NumpyFieldKernel`'s
batched strategy (level-batched Cantor-Zassenhaus, vectorized linear algebra)
and replaces the loops that NumPy cannot fuse -- schoolbook convolution,
Horner evaluation, root-product evaluation, Montgomery batch inversion, and
the Euclidean gcd chain that dominates large-degree root finding -- with
numba-compiled kernels from :mod:`repro.field._numba_kernels`.

All arithmetic is exact (eagerly reduced int64, valid for the same
``2 < p < 2**31`` moduli as the NumPy kernel), so results are bit-identical
across the whole tier chain; requests for ``field_kernel="numba"`` resolve
down ``numba -> numpy -> python`` when numba (or NumPy) is missing, exactly
like the cell-store registry.  The first compiled call per process pays
numba's JIT warm-up (amortized by ``cache=True`` artifacts).
"""

from __future__ import annotations

from repro.config import register_field_kernel
from repro.field.kernels import NumpyFieldKernel, _poly_gcd_scalar, _trim
from repro.hashing.mix import HAS_NUMPY
from repro.jit import numba_available

if HAS_NUMPY:
    import numpy as _np

_COMPILED = None


def _kernels():
    """Import (once) the JIT-compiled kernel module."""
    global _COMPILED
    if _COMPILED is None:
        from repro.field import _numba_kernels

        _COMPILED = _numba_kernels
    return _COMPILED


@register_field_kernel
class NumbaFieldKernel(NumpyFieldKernel):
    """Compiled kernel: NumPy batching with numba-JIT modmul loops."""

    name = "numba"
    vectorized = True
    priority = 20

    @classmethod
    def available(cls):
        return HAS_NUMPY and numba_available()

    @classmethod
    def supports(cls, modulus):
        return cls.available() and 2 < modulus < 2**31

    def poly_mul(self, modulus, a, b):
        if not a or not b:
            return []
        product = _kernels().pmul(
            _np.asarray(a, dtype=_np.int64) % modulus,
            _np.asarray(b, dtype=_np.int64) % modulus,
            modulus,
        )
        return _trim([int(v) for v in product])

    def poly_eval_many(self, modulus, coeffs, points):
        if not len(points):
            return []
        if not coeffs:
            return [0] * len(points)
        evals = _kernels().horner_many(
            _np.asarray([c % modulus for c in coeffs], dtype=_np.int64),
            self._residues(modulus, points),
            modulus,
        )
        return evals.tolist()

    def evaluate_from_roots_many(self, modulus, roots, points):
        root_array = self._residues(modulus, roots)
        if root_array.size == 0:
            return [1] * len(points)
        if not len(points):
            return []
        evals = _kernels().eval_from_roots(
            root_array, self._residues(modulus, points), modulus
        )
        return evals.tolist()

    def poly_gcd(self, modulus, a, b):
        if min(len(a), len(b)) < 2:
            return _poly_gcd_scalar(modulus, a, b)
        result = _kernels().gcd_chain(
            _np.asarray(a, dtype=_np.int64) % modulus,
            _np.asarray(b, dtype=_np.int64) % modulus,
            modulus,
        )
        return [int(v) for v in result]

    def inv_many(self, modulus, values):
        canonical = [v % modulus for v in values]
        if not canonical:
            return []
        if min(canonical) == 0:
            raise ZeroDivisionError("cannot invert zero in a prime field")
        inverses = _kernels().inv_many(
            _np.asarray(canonical, dtype=_np.int64), modulus
        )
        return inverses.tolist()
