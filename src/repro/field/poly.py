"""Dense univariate polynomials over GF(p).

These polynomials back the characteristic-polynomial reconciliation protocol
(Theorem 2.3): Alice evaluates the characteristic polynomial of her set at
shared points, Bob interpolates the rational function chi_A / chi_B and
factors numerator and denominator to recover the symmetric difference.

Coefficients are stored low-degree first (``coeffs[i]`` multiplies ``x**i``)
and are always canonical residues of the owning :class:`PrimeField`.  The
zero polynomial is represented by an empty coefficient list and has degree
``-1`` by convention.

Products and long divisions route through the active field kernel
(:mod:`repro.field.kernels`), so large-degree arithmetic is vectorized when
NumPy is available while staying bit-identical to the reference kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ParameterError
from repro.field.gfp import PrimeField
from repro.field.kernels import FieldKernel, kernel_for


@dataclass(frozen=True)
class Polynomial:
    """An immutable polynomial over a prime field."""

    field: PrimeField
    coeffs: tuple[int, ...]

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_coefficients(
        cls, field: PrimeField, coefficients: Sequence[int]
    ) -> "Polynomial":
        """Build a polynomial from a low-degree-first coefficient sequence."""
        reduced = [field.element(c) for c in coefficients]
        while reduced and reduced[-1] == 0:
            reduced.pop()
        return cls(field, tuple(reduced))

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        """The zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: PrimeField) -> "Polynomial":
        """The constant polynomial 1."""
        return cls(field, (1,))

    @classmethod
    def x(cls, field: PrimeField) -> "Polynomial":
        """The monomial ``x``."""
        return cls(field, (0, 1))

    @classmethod
    def from_roots(cls, field: PrimeField, roots: Iterable[int]) -> "Polynomial":
        """The monic polynomial whose roots are exactly ``roots``.

        This is the characteristic polynomial ``prod (x - r)`` of a set, the
        central object of Theorem 2.3.  Built by iterated multiplication,
        which is O(n^2) in the set size; adequate for the set sizes used in
        the protocols (the evaluation path never materialises it for large n,
        see :meth:`evaluate_from_roots`).
        """
        result = cls.one(field)
        for root in roots:
            result = result * cls.from_coefficients(field, [field.neg(root), 1])
        return result

    @staticmethod
    def evaluate_from_roots(field: PrimeField, roots: Iterable[int], point: int) -> int:
        """Evaluate ``prod (point - r)`` without materialising coefficients.

        O(n) per evaluation point, matching the "evaluate the polynomial in
        O(n) time once for each of the points" option in the paper.
        """
        acc = 1
        for root in roots:
            acc = field.mul(acc, field.sub(point, root))
        return acc

    @staticmethod
    def evaluate_from_roots_many(
        field: PrimeField,
        roots: Iterable[int],
        points: Sequence[int],
        kernel: FieldKernel | None = None,
    ) -> list[int]:
        """Evaluate ``prod (z - r)`` at every ``z`` in ``points`` in one batch.

        This is the CPI hot path: both parties evaluate their characteristic
        polynomial at all ``d + 1`` shared points, which the scalar method
        turns into ``O(n d)`` interpreted field operations.  The batch form
        hands the whole set to the active field kernel (one difference
        matrix plus a balanced product tree on the NumPy kernel), returning
        bit-identical values.
        """
        if kernel is None:
            kernel = kernel_for(field.modulus)
        return kernel.evaluate_from_roots_many(field.modulus, roots, points)

    def evaluate_many(
        self, points: Sequence[int], kernel: FieldKernel | None = None
    ) -> list[int]:
        """Batched Horner evaluation of this polynomial at many points."""
        if kernel is None:
            kernel = kernel_for(self.field.modulus)
        return kernel.poly_eval_many(self.field.modulus, self.coeffs, points)

    # -- basic queries -------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; ``-1`` for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True if this is the zero polynomial."""
        return not self.coeffs

    def is_monic(self) -> bool:
        """True if the leading coefficient is 1."""
        return bool(self.coeffs) and self.coeffs[-1] == 1

    def leading_coefficient(self) -> int:
        """Leading coefficient (0 for the zero polynomial)."""
        return self.coeffs[-1] if self.coeffs else 0

    def __len__(self) -> int:
        return len(self.coeffs)

    # -- arithmetic ----------------------------------------------------------------

    def _check_same_field(self, other: "Polynomial") -> None:
        if self.field.modulus != other.field.modulus:
            raise ParameterError("polynomials belong to different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_same_field(other)
        field = self.field
        longer, shorter = (
            (self.coeffs, other.coeffs)
            if len(self.coeffs) >= len(other.coeffs)
            else (other.coeffs, self.coeffs)
        )
        summed = list(longer)
        for index, coefficient in enumerate(shorter):
            summed[index] = field.add(summed[index], coefficient)
        return Polynomial.from_coefficients(field, summed)

    def __neg__(self) -> "Polynomial":
        return Polynomial.from_coefficients(
            self.field, [self.field.neg(c) for c in self.coeffs]
        )

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check_same_field(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.field)
        kernel = kernel_for(self.field.modulus)
        product = kernel.poly_mul(self.field.modulus, self.coeffs, other.coeffs)
        # Kernel outputs are canonical residues, so skip the re-reduction of
        # from_coefficients on this hot path.
        return Polynomial(self.field, tuple(product))

    def scale(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by a field scalar."""
        scalar = self.field.element(scalar)
        return Polynomial.from_coefficients(
            self.field, [self.field.mul(scalar, c) for c in self.coeffs]
        )

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Polynomial long division; returns ``(quotient, remainder)``."""
        self._check_same_field(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        kernel = kernel_for(self.field.modulus)
        quotient, remainder = kernel.poly_divmod(
            self.field.modulus, self.coeffs, divisor.coeffs
        )
        return (
            Polynomial(self.field, tuple(quotient)),
            Polynomial(self.field, tuple(remainder)),
        )

    def __floordiv__(self, other: "Polynomial") -> "Polynomial":
        return self.divmod(other)[0]

    def __mod__(self, other: "Polynomial") -> "Polynomial":
        return self.divmod(other)[1]

    def monic(self) -> "Polynomial":
        """Return the monic scalar multiple of this polynomial."""
        if self.is_zero():
            return self
        return self.scale(self.field.inv(self.leading_coefficient()))

    def gcd(self, other: "Polynomial") -> "Polynomial":
        """Monic greatest common divisor via the Euclidean algorithm."""
        self._check_same_field(other)
        kernel = kernel_for(self.field.modulus)
        divisor = kernel.poly_gcd(self.field.modulus, self.coeffs, other.coeffs)
        return Polynomial(self.field, tuple(divisor))

    def pow_mod(self, exponent: int, modulus_poly: "Polynomial") -> "Polynomial":
        """Compute ``self**exponent mod modulus_poly`` by square-and-multiply."""
        if exponent < 0:
            raise ParameterError("pow_mod requires a non-negative exponent")
        result = Polynomial.one(self.field)
        base = self % modulus_poly
        while exponent:
            if exponent & 1:
                result = (result * base) % modulus_poly
            base = (base * base) % modulus_poly
            exponent >>= 1
        return result

    # -- evaluation & interpolation --------------------------------------------------

    def evaluate(self, point: int) -> int:
        """Evaluate at ``point`` using Horner's rule."""
        field = self.field
        acc = 0
        for coefficient in reversed(self.coeffs):
            acc = field.add(field.mul(acc, point), coefficient)
        return acc

    def derivative(self) -> "Polynomial":
        """Formal derivative."""
        field = self.field
        derived = [
            field.mul(index, coefficient)
            for index, coefficient in enumerate(self.coeffs)
        ][1:]
        return Polynomial.from_coefficients(field, derived)

    @classmethod
    def interpolate(
        cls, field: PrimeField, points: Sequence[tuple[int, int]]
    ) -> "Polynomial":
        """Lagrange interpolation through ``(x, y)`` pairs with distinct x."""
        xs = [field.element(x) for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ParameterError("interpolation points must have distinct x values")
        result = cls.zero(field)
        for i, (x_i, y_i) in enumerate(points):
            numerator = cls.one(field)
            denominator = 1
            for j, (x_j, _) in enumerate(points):
                if i == j:
                    continue
                numerator = numerator * cls.from_coefficients(
                    field, [field.neg(x_j), 1]
                )
                denominator = field.mul(denominator, field.sub(x_i, x_j))
            term = numerator.scale(field.mul(field.element(y_i), field.inv(denominator)))
            result = result + term
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_zero():
            return "Polynomial(0)"
        terms = [f"{c}*x^{i}" for i, c in enumerate(self.coeffs) if c]
        return "Polynomial(" + " + ".join(terms) + f" mod {self.field.modulus})"
