"""Transport seam: how a party's messages reach its peer.

Three implementations of one interface:

* :class:`InMemoryTransport` -- payload objects are handed over untouched
  (zero-copy).  This is the default and preserves the historical simulation
  behavior and performance of the ``reconcile_*`` functions.
* :class:`SerializingTransport` -- every payload is round-tripped through its
  wire codec.  The receiver gets a genuinely re-decoded object, and the
  measured byte length of every message is cross-checked against the
  ``size_bits`` the transcript charged (plus the codec's documented framing)
  -- turning the paper's communication accounting from asserted into
  verified.
* :class:`SocketTransport` -- one endpoint of a real byte stream (e.g. a TCP
  connection); two OS processes each drive one party with
  :func:`run_party`.  The frame format is shared with
  :class:`SerializingTransport`'s measurements: a small uncharged header
  (sender, label, claimed ``size_bits``, payload length) followed by the
  codec-encoded payload bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.comm import Transcript
from repro.errors import ParameterError, ReconciliationError
from repro.protocols.party import END_OF_SESSION, PartyOutcome, Receive, Send
from repro.protocols.wire import WireAccountingError, WireError


@dataclass(frozen=True)
class MessageMeasurement:
    """Measured vs. charged size of one serialized message."""

    sender: str
    label: str
    charged_bits: int
    framing_bits: int
    measured_bytes: int

    @property
    def budget_bytes(self) -> int:
        """Largest byte length the charged size (plus framing) allows."""
        return (self.charged_bits + self.framing_bits + 7) // 8

    @property
    def within_budget(self) -> bool:
        return self.measured_bytes <= self.budget_bytes


class Transport:
    """Interface between a :class:`~repro.protocols.session.Session` and the wire.

    ``on_send`` converts an outgoing :class:`Send` into the in-flight
    representation queued for the peer; ``on_receive`` converts the in-flight
    representation back into the payload the receiving party sees.
    """

    name = "abstract"

    def on_send(self, sender: str, send: Send) -> Any:
        raise NotImplementedError

    def on_receive(self, inflight: Any, receive: Receive, send: Send) -> Any:
        raise NotImplementedError


def _encode_and_measure(
    sender: str,
    send: Send,
    measurements: list[MessageMeasurement],
    strict: bool,
    wire_name: str,
) -> bytes:
    """Encode one message, record its measurement, enforce the byte budget.

    The single accounting rule shared by every byte-level transport: the
    encoding must fit ``ceil((size_bits + framing_bits) / 8)`` bytes.
    """
    if send.codec is None:
        raise WireError(
            f"message {send.label!r} has no wire codec; "
            f"it cannot travel over the {wire_name} transport"
        )
    data = send.codec.encode(send.payload)
    measurement = MessageMeasurement(
        sender,
        send.label,
        send.size_bits,
        send.codec.framing_bits(send.payload),
        len(data),
    )
    measurements.append(measurement)
    if strict and not measurement.within_budget:
        raise WireAccountingError(
            f"message {send.label!r} serialized to {len(data)} bytes but its "
            f"transcript entry charged {send.size_bits} bits "
            f"(+{measurement.framing_bits} framing = "
            f"{measurement.budget_bytes} byte budget)"
        )
    return data


class InMemoryTransport(Transport):
    """Zero-copy transport: the receiver sees the sender's payload object."""

    name = "memory"

    def on_send(self, sender: str, send: Send) -> Any:
        return send.payload

    def on_receive(self, inflight: Any, receive: Receive, send: Send) -> Any:
        return inflight


class SerializingTransport(Transport):
    """Round-trip every payload through bytes and verify the accounting.

    Parameters
    ----------
    strict:
        When True (default), a message whose encoding exceeds its charged
        ``size_bits`` (rounded up to bytes, plus the codec's documented
        framing) raises :class:`~repro.protocols.wire.WireAccountingError`
        at send time.  When False, the violation is only recorded in
        :attr:`measurements`.
    """

    name = "serializing"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.measurements: list[MessageMeasurement] = []

    def on_send(self, sender: str, send: Send) -> bytes:
        return _encode_and_measure(
            sender, send, self.measurements, self.strict, self.name
        )

    def on_receive(self, inflight: bytes, receive: Receive, send: Send) -> Any:
        codec = receive.codec if receive.codec is not None else send.codec
        return codec.decode(inflight)


# ---------------------------------------------------------------------------
# Real byte streams: frames and the single-party driver
# ---------------------------------------------------------------------------

_FRAME_MESSAGE = 0
_FRAME_FIN = 1

#: struct layout of the fixed part of a frame header:
#: type (B), sender length (B), label length (H), size_bits (Q), payload length (I)
_HEADER = struct.Struct("!BBHQI")


def _recv_exact(sock, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ReconciliationError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class SocketTransport:
    """One endpoint of a two-process protocol session over a stream socket.

    Each process constructs a :class:`SocketTransport` around a connected
    socket and drives its own party with :func:`run_party`.  Frames carry the
    sender role, the transcript label and the claimed ``size_bits`` so both
    endpoints reconstruct identical transcripts.
    """

    name = "socket"

    def __init__(self, sock, role: str, strict: bool = True) -> None:
        if role not in ("alice", "bob"):
            raise ParameterError("role must be 'alice' or 'bob'")
        self.sock = sock
        self.role = role
        self.strict = strict
        self.measurements: list[MessageMeasurement] = []

    # -- frame I/O ------------------------------------------------------------------

    def send_message(self, send: Send) -> None:
        data = _encode_and_measure(
            self.role, send, self.measurements, self.strict, self.name
        )
        sender = self.role.encode()
        label = send.label.encode()
        header = _HEADER.pack(
            _FRAME_MESSAGE, len(sender), len(label), send.size_bits, len(data)
        )
        self.sock.sendall(header + sender + label + data)

    def send_fin(self) -> None:
        self.sock.sendall(_HEADER.pack(_FRAME_FIN, 0, 0, 0, 0))

    def receive_message(self) -> tuple[str, str, int, bytes] | None:
        """The next frame as ``(sender, label, size_bits, data)``; ``None`` on FIN."""
        kind, sender_len, label_len, size_bits, payload_len = _HEADER.unpack(
            _recv_exact(self.sock, _HEADER.size)
        )
        if kind == _FRAME_FIN:
            return None
        sender = _recv_exact(self.sock, sender_len).decode()
        label = _recv_exact(self.sock, label_len).decode()
        data = _recv_exact(self.sock, payload_len)
        return sender, label, size_bits, data


def run_party(
    party, transport: SocketTransport, transcript: Transcript | None = None
) -> tuple[PartyOutcome, Transcript]:
    """Drive one party generator against a real byte stream.

    Returns the party's outcome and the transcript this endpoint observed
    (identical, message for message, to the peer's).
    """
    transcript = transcript if transcript is not None else Transcript()
    try:
        outcome = _drive_party(party, transport, transcript)
    finally:
        # Always tell the peer we are done -- including when the party or a
        # codec raised -- so its blocking recv fails fast instead of hanging.
        try:
            transport.send_fin()
        except OSError:
            pass  # peer already gone; the primary error (if any) propagates
    return outcome, transcript


def _drive_party(party, transport: SocketTransport, transcript: Transcript):
    peer_finished = False
    value = None
    try:
        command = party.send(None)
        while True:
            if isinstance(command, Send):
                transport.send_message(command)
                transcript.send(
                    transport.role, command.label, command.size_bits, command.payload
                )
                value = None
            elif isinstance(command, Receive):
                if peer_finished:
                    value = END_OF_SESSION
                else:
                    frame = transport.receive_message()
                    if frame is None:
                        peer_finished = True
                        value = END_OF_SESSION
                    else:
                        sender, label, size_bits, data = frame
                        if command.codec is None:
                            raise WireError(
                                f"receiver provided no codec for message {label!r}"
                            )
                        payload = command.codec.decode(data)
                        transcript.send(sender, label, size_bits, payload)
                        value = payload
            else:
                raise ReconciliationError(
                    f"party yielded {command!r}; expected Send or Receive"
                )
            command = party.send(value)
    except StopIteration as stop:
        if stop.value is None:
            return PartyOutcome(True)
        if isinstance(stop.value, PartyOutcome):
            return stop.value
        raise ReconciliationError(
            f"party returned {stop.value!r}; expected a PartyOutcome"
        ) from None
