"""Transport seam: how a party's messages reach its peer.

Three implementations of one interface:

* :class:`InMemoryTransport` -- payload objects are handed over untouched
  (zero-copy).  This is the default and preserves the historical simulation
  behavior and performance of the ``reconcile_*`` functions.
* :class:`SerializingTransport` -- every payload is round-tripped through its
  wire codec.  The receiver gets a genuinely re-decoded object, and the
  measured byte length of every message is cross-checked against the
  ``size_bits`` the transcript charged (plus the codec's documented framing)
  -- turning the paper's communication accounting from asserted into
  verified.
* :class:`SocketTransport` -- one endpoint of a real byte stream (e.g. a TCP
  connection); two OS processes each drive one party with
  :func:`run_party`.  The frame format is shared with
  :class:`SerializingTransport`'s measurements: a small uncharged header
  (sender, label, claimed ``size_bits``, payload length) followed by the
  codec-encoded payload bytes.

The asyncio sibling, :class:`repro.service.AsyncSocketTransport`, speaks the
exact same frames through the packing/parsing helpers defined here, so the
blocking and event-loop transports interoperate on one wire.
"""

from __future__ import annotations

import socket as _socket
import struct
from dataclasses import dataclass
from typing import Any

from repro.comm import Transcript
from repro.errors import ParameterError, ReconciliationError
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    Receive,
    Send,
)
from repro.protocols.wire import WireAccountingError, WireError


@dataclass(frozen=True)
class MessageMeasurement:
    """Measured vs. charged size of one serialized message."""

    sender: str
    label: str
    charged_bits: int
    framing_bits: int
    measured_bytes: int

    @property
    def budget_bytes(self) -> int:
        """Largest byte length the charged size (plus framing) allows."""
        return (self.charged_bits + self.framing_bits + 7) // 8

    @property
    def within_budget(self) -> bool:
        return self.measured_bytes <= self.budget_bytes


class Transport:
    """Interface between a :class:`~repro.protocols.session.Session` and the wire.

    ``on_send`` converts an outgoing :class:`Send` into the in-flight
    representation queued for the peer; ``on_receive`` converts the in-flight
    representation back into the payload the receiving party sees.
    """

    name = "abstract"

    def on_send(self, sender: str, send: Send) -> Any:
        raise NotImplementedError

    def on_receive(self, inflight: Any, receive: Receive, send: Send) -> Any:
        raise NotImplementedError


def _encode_and_measure(
    sender: str,
    send: Send,
    measurements: list[MessageMeasurement],
    strict: bool,
    wire_name: str,
) -> bytes:
    """Encode one message, record its measurement, enforce the byte budget.

    The single accounting rule shared by every byte-level transport: the
    encoding must fit ``ceil((size_bits + framing_bits) / 8)`` bytes.
    """
    if send.codec is None:
        raise WireError(
            f"message {send.label!r} has no wire codec; "
            f"it cannot travel over the {wire_name} transport"
        )
    data = send.codec.encode(send.payload)
    measurement = MessageMeasurement(
        sender,
        send.label,
        send.size_bits,
        send.codec.framing_bits(send.payload),
        len(data),
    )
    measurements.append(measurement)
    if strict and not measurement.within_budget:
        raise WireAccountingError(
            f"message {send.label!r} serialized to {len(data)} bytes but its "
            f"transcript entry charged {send.size_bits} bits "
            f"(+{measurement.framing_bits} framing = "
            f"{measurement.budget_bytes} byte budget)"
        )
    return data


class InMemoryTransport(Transport):
    """Zero-copy transport: the receiver sees the sender's payload object."""

    name = "memory"

    def on_send(self, sender: str, send: Send) -> Any:
        return send.payload

    def on_receive(self, inflight: Any, receive: Receive, send: Send) -> Any:
        return inflight


class SerializingTransport(Transport):
    """Round-trip every payload through bytes and verify the accounting.

    Parameters
    ----------
    strict:
        When True (default), a message whose encoding exceeds its charged
        ``size_bits`` (rounded up to bytes, plus the codec's documented
        framing) raises :class:`~repro.protocols.wire.WireAccountingError`
        at send time.  When False, the violation is only recorded in
        :attr:`measurements`.
    """

    name = "serializing"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.measurements: list[MessageMeasurement] = []

    def on_send(self, sender: str, send: Send) -> bytes:
        return _encode_and_measure(
            sender, send, self.measurements, self.strict, self.name
        )

    def on_receive(self, inflight: bytes, receive: Receive, send: Send) -> Any:
        codec = receive.codec if receive.codec is not None else send.codec
        return codec.decode(inflight)


# ---------------------------------------------------------------------------
# Real byte streams: the shared frame layer and the single-party driver
# ---------------------------------------------------------------------------
#
# One frame format is shared by every byte-stream transport in the library:
# the blocking :class:`SocketTransport` below and the asyncio
# :class:`repro.service.AsyncSocketTransport` (plus the sync service's hello
# negotiation, which rides on the HELLO frame kind).  Helpers here do all the
# packing/parsing so the two transports cannot drift, and every malformed or
# truncated frame surfaces as a clean :class:`ReconciliationError` instead of
# a leaked ``struct.error`` / ``UnicodeDecodeError`` / raw ``OSError``.

FRAME_MESSAGE = 0
FRAME_FIN = 1
#: Control frames used by the sync service's hello/ack/stats negotiation
#: (see :mod:`repro.service.hello`); never produced by a protocol session.
FRAME_CONTROL = 2

#: struct layout of the fixed part of a frame header:
#: type (B), sender length (B), label length (H), size_bits (Q), payload length (I)
FRAME_HEADER = struct.Struct("!BBHQI")

#: Sanity cap on a single frame's payload (64 MiB).  No message in the
#: library comes anywhere close; a corrupt or hostile header must not make
#: the receiver wait for gigabytes that will never arrive.
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


@dataclass(frozen=True)
class Frame:
    """One parsed wire frame."""

    kind: int
    sender: str
    label: str
    size_bits: int
    payload: bytes


def pack_frame(
    kind: int, sender: str = "", label: str = "", size_bits: int = 0,
    payload: bytes = b"",
) -> bytes:
    """Serialize one frame (header + sender + label + payload).

    The sender-side twin of the receive-path checks: fields that do not fit
    the header layout, or a payload over :data:`MAX_FRAME_PAYLOAD`, raise a
    clean :class:`ReconciliationError` here instead of being sent and
    refused by the peer (or leaking a ``struct.error`` mid-send).
    """
    sender_bytes = sender.encode()
    label_bytes = label.encode()
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ReconciliationError(
            f"message {label!r} serialized to {len(payload)} bytes, over the "
            f"{MAX_FRAME_PAYLOAD}-byte frame cap; split the instance "
            "(e.g. shard it) instead of sending one monolithic sketch"
        )
    try:
        header = FRAME_HEADER.pack(
            kind, len(sender_bytes), len(label_bytes), size_bits, len(payload)
        )
    except struct.error as exc:
        raise ReconciliationError(
            f"frame fields do not fit the header layout "
            f"(sender {len(sender_bytes)} B, label {len(label_bytes)} B, "
            f"size_bits {size_bits}): {exc}"
        ) from exc
    return header + sender_bytes + label_bytes + payload


def parse_frame_header(header: bytes) -> tuple[int, int, int, int, int]:
    """Parse the fixed header; returns ``(kind, sender_len, label_len, size_bits,
    payload_len)`` and validates the payload sanity cap."""
    try:
        kind, sender_len, label_len, size_bits, payload_len = FRAME_HEADER.unpack(
            header
        )
    except struct.error as exc:
        raise ReconciliationError(f"malformed frame header: {exc}") from exc
    if payload_len > MAX_FRAME_PAYLOAD:
        raise ReconciliationError(
            f"frame claims a {payload_len}-byte payload "
            f"(cap {MAX_FRAME_PAYLOAD}); refusing to read it"
        )
    return kind, sender_len, label_len, size_bits, payload_len


def assemble_frame(
    kind: int, sender_len: int, label_len: int, size_bits: int, body: bytes
) -> Frame:
    """Build a :class:`Frame` from a parsed header and the frame body
    (``sender + label + payload`` concatenated)."""
    try:
        sender = body[:sender_len].decode()
        label = body[sender_len : sender_len + label_len].decode()
    except UnicodeDecodeError as exc:
        raise ReconciliationError(f"undecodable frame metadata: {exc}") from exc
    return Frame(kind, sender, label, size_bits, body[sender_len + label_len :])


def enable_nodelay(sock: _socket.socket) -> None:
    """Set ``TCP_NODELAY`` on a socket, ignoring sockets that lack it.

    Protocol frames are small and latency-bound; Nagle's algorithm only adds
    round-trip delay.  Non-TCP sockets (``socketpair``, AF_UNIX) raise
    ``OSError`` and are left alone.
    """
    try:
        sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):
        pass


def _recv_exact(sock: _socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise ReconciliationError(f"socket receive failed: {exc}") from exc
        if not chunk:
            raise ReconciliationError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: _socket.socket) -> Frame:
    """Read one complete frame from a blocking socket (clean errors on EOF)."""
    kind, sender_len, label_len, size_bits, payload_len = parse_frame_header(
        _recv_exact(sock, FRAME_HEADER.size)
    )
    body = _recv_exact(sock, sender_len + label_len + payload_len)
    return assemble_frame(kind, sender_len, label_len, size_bits, body)


class SocketTransport:
    """One endpoint of a two-process protocol session over a stream socket.

    Each process constructs a :class:`SocketTransport` around a connected
    socket and drives its own party with :func:`run_party`.  Frames carry the
    sender role, the transcript label and the claimed ``size_bits`` so both
    endpoints reconstruct identical transcripts.
    """

    name = "socket"

    def __init__(self, sock: _socket.socket, role: str, strict: bool = True) -> None:
        if role not in ("alice", "bob"):
            raise ParameterError("role must be 'alice' or 'bob'")
        self.sock = sock
        self.role = role
        self.strict = strict
        self.measurements: list[MessageMeasurement] = []
        enable_nodelay(sock)

    # -- frame I/O ------------------------------------------------------------------

    def _sendall(self, data: bytes) -> None:
        try:
            self.sock.sendall(data)
        except OSError as exc:
            raise ReconciliationError(f"socket send failed: {exc}") from exc

    def send_message(self, send: Send) -> None:
        data = _encode_and_measure(
            self.role, send, self.measurements, self.strict, self.name
        )
        self._sendall(
            pack_frame(FRAME_MESSAGE, self.role, send.label, send.size_bits, data)
        )

    def send_fin(self) -> None:
        self._sendall(pack_frame(FRAME_FIN))

    def receive_message(self) -> tuple[str, str, int, bytes] | None:
        """The next frame as ``(sender, label, size_bits, data)``; ``None`` on FIN."""
        frame = read_frame(self.sock)
        if frame.kind == FRAME_FIN:
            return None
        if frame.kind != FRAME_MESSAGE:
            raise ReconciliationError(
                f"unexpected frame kind {frame.kind} mid-session"
            )
        return frame.sender, frame.label, frame.size_bits, frame.payload


def run_party(
    party: PartyGenerator,
    transport: SocketTransport,
    transcript: Transcript | None = None,
) -> tuple[PartyOutcome, Transcript]:
    """Drive one party generator against a real byte stream.

    Returns the party's outcome and the transcript this endpoint observed
    (identical, message for message, to the peer's).
    """
    transcript = transcript if transcript is not None else Transcript()
    try:
        outcome = _drive_party(party, transport, transcript)
    finally:
        # Always tell the peer we are done -- including when the party or a
        # codec raised -- so its blocking recv fails fast instead of hanging.
        try:
            transport.send_fin()
        except (OSError, ReconciliationError):
            pass  # peer already gone; the primary error (if any) propagates
    return outcome, transcript


def outcome_from_stop(stop_value: Any, who: str = "party") -> PartyOutcome:
    """Normalize a party generator's return value into a :class:`PartyOutcome`.

    The single normalization point shared by every party driver: the
    in-memory session loop, the blocking socket driver above and the asyncio
    driver in :mod:`repro.service.transport`.  ``who`` names the offender in
    the error (the session loop passes the role).
    """
    if stop_value is None:
        return PartyOutcome(True)
    if isinstance(stop_value, PartyOutcome):
        return stop_value
    raise ReconciliationError(
        f"{who} returned {stop_value!r}; expected a PartyOutcome"
    )


def _drive_party(
    party: PartyGenerator, transport: SocketTransport, transcript: Transcript
) -> PartyOutcome:
    peer_finished = False
    value = None
    try:
        command = party.send(None)
        while True:
            if isinstance(command, Send):
                transport.send_message(command)
                transcript.send(
                    transport.role, command.label, command.size_bits, command.payload
                )
                value = None
            elif isinstance(command, Receive):
                if peer_finished:
                    value = END_OF_SESSION
                else:
                    frame = transport.receive_message()
                    if frame is None:
                        peer_finished = True
                        value = END_OF_SESSION
                    else:
                        sender, label, size_bits, data = frame
                        if command.codec is None:
                            raise WireError(
                                f"receiver provided no codec for message {label!r}"
                            )
                        payload = command.codec.decode(data)
                        transcript.send(sender, label, size_bits, payload)
                        value = payload
            else:
                raise ReconciliationError(
                    f"party yielded {command!r}; expected Send or Receive"
                )
            command = party.send(value)
    except StopIteration as stop:
        return outcome_from_stop(stop.value)
