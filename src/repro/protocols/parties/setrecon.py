"""Party state machines for plain set reconciliation (Section 2 protocols).

Splits :mod:`repro.core.setrecon.ibf` and :mod:`repro.core.setrecon.cpi`
into explicit alice/bob generators:

* ``ibf`` known-``d``: one message (IBLT + whole-set hash + set size).
* ``ibf`` unknown-``d``: bob's difference estimator, then the known-``d``
  exchange with a self-describing difference-bound header (32 bits of
  documented framing -- on a real wire bob cannot derive the bound alice
  computed from the merged estimator).
* ``cpi``: one message of characteristic-polynomial evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Set

from repro.comm import WORD_BITS
from repro.comm.bits import BitReader, BitWriter
from repro.comm.sizing import bits_for_value
from repro.core.setrecon.cpi import (
    CPIMessage,
    cpi_decode,
    cpi_encode,
    field_for_universe,
)
from repro.core.setrecon.difference import apply_difference, max_element_bits
from repro.errors import ParameterError
from repro.estimator import L0Estimator, SetDifferenceEstimator
from repro.hashing import SeededHasher, derive_seed
from repro.iblt import IBLT, IBLTParameters
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    PartyPair,
    Receive,
    Send,
    aborted_outcome,
)
from repro.protocols.wire import EstimatorCodec, PayloadCodec, WireError

#: Width of the self-describing difference-bound header used by the
#: unknown-``d`` variants (documented framing; see docs/protocols.md).
BOUND_HEADER_BITS = 32


def set_verification_hash(seed: int, elements: Iterable[int]) -> int:
    """Whole-set verification hash (guards against undetected checksum failures)."""
    return SeededHasher(derive_seed(seed, "set-verification"), WORD_BITS).hash_iterable(
        elements
    )


@dataclass(frozen=True)
class SetReconContext:
    """Shared knowledge both parties derive the ``ibf`` exchange from."""

    universe_size: int
    seed: int
    num_hashes: int = 4
    backend: str | None = None
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None
    safety_factor: float = 2.0

    def table_params(self, difference_bound: int) -> IBLTParameters:
        return IBLTParameters.for_difference(
            max(1, difference_bound),
            max_element_bits(self.universe_size),
            derive_seed(self.seed, "setrecon"),
            self.num_hashes,
        )

    @property
    def estimator_seed(self) -> int:
        return derive_seed(self.seed, "setrecon-estimator")

    def make_estimator(self) -> SetDifferenceEstimator:
        factory = self.estimator_factory if self.estimator_factory else L0Estimator
        return factory(self.estimator_seed)

    def estimator_codec(self) -> EstimatorCodec:
        factory = self.estimator_factory if self.estimator_factory else L0Estimator
        return EstimatorCodec(factory, self.estimator_seed)


class IBFMessageCodec(PayloadCodec):
    """Codec for the known-``d`` message ``(table, set_hash, set_size)``.

    With ``self_describing=True`` a :data:`BOUND_HEADER_BITS` difference
    bound header is prepended (unknown-``d`` flow); the encoding side must
    then know ``bound``, the decoding side may pass ``bound=None``.
    """

    def __init__(
        self, ctx: SetReconContext, bound: int | None, self_describing: bool = False
    ) -> None:
        self.ctx = ctx
        self.bound = bound
        self.self_describing = self_describing

    def write(self, writer: BitWriter, payload: tuple[IBLT, int, int]) -> None:
        table, set_hash, set_size = payload
        if self.bound is None:
            raise WireError("encoding side must know the difference bound")
        if self.self_describing:
            writer.write(self.bound, BOUND_HEADER_BITS)
        params = self.ctx.table_params(self.bound)
        if table.params != params:
            raise WireError("table parameters disagree with the shared context")
        writer.write(table.serialize(), params.size_bits)
        writer.write(set_hash, WORD_BITS)
        writer.write_tail(set_size)

    def read(self, reader: BitReader) -> tuple[IBLT, int, int]:
        bound = reader.read(BOUND_HEADER_BITS) if self.self_describing else self.bound
        params = self.ctx.table_params(bound)
        table = IBLT.deserialize(
            params, reader.read(params.size_bits), backend=self.ctx.backend
        )
        set_hash = reader.read(WORD_BITS)
        set_size = reader.read_tail_int()
        return table, set_hash, set_size

    def framing_bits(self, payload: tuple[IBLT, int, int]) -> int:
        return BOUND_HEADER_BITS if self.self_describing else 0


def ibf_message_bits(ctx: SetReconContext, difference_bound: int, set_size: int) -> int:
    """Charged size of the known-``d`` message: table + whole-set hash + size.

    The single sizing rule for this message; composite protocols that report
    per-phase bit breakdowns (the graph schemes) use it too, so their details
    cannot drift from what the transcript charges.
    """
    return (
        ctx.table_params(difference_bound).size_bits
        + bits_for_value(set_size)
        + WORD_BITS
    )


def ibf_alice_known(
    alice: Set[int],
    difference_bound: int,
    ctx: SetReconContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Alice's side of the one-round IBLT protocol (Corollary 2.2)."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if ctx.universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    params = ctx.table_params(difference_bound)
    alice_table = IBLT.from_items(params, alice, backend=ctx.backend)
    alice_hash = set_verification_hash(ctx.seed, alice)
    yield Send(
        "set IBLT",
        ibf_message_bits(ctx, difference_bound, len(alice)),
        payload=(alice_table, alice_hash, len(alice)),
        codec=IBFMessageCodec(ctx, difference_bound, self_describing),
    )
    return PartyOutcome(True)


def ibf_bob_known(
    bob: Set[int],
    difference_bound: int | None,
    ctx: SetReconContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Bob's side: delete his elements, peel, verify the reconstruction."""
    payload = yield Receive(IBFMessageCodec(ctx, difference_bound, self_describing))
    if payload is END_OF_SESSION:
        return aborted_outcome()
    alice_table, alice_hash, alice_size = payload
    difference_table = alice_table.copy()
    difference_table.delete_batch(bob)
    decode = difference_table.try_decode()
    if not decode.success:
        return PartyOutcome(False, details={"failure": "iblt-peel"})
    recovered = apply_difference(bob, decode.positive, decode.negative)
    verified = (
        set_verification_hash(ctx.seed, recovered) == alice_hash
        and len(recovered) == alice_size
    )
    return PartyOutcome(
        verified,
        recovered if verified else None,
        details={
            "difference_found": decode.symmetric_difference_size(),
            "failure": None if verified else "verification-hash",
        },
    )


def ibf_alice_unknown(alice: Set[int], ctx: SetReconContext) -> PartyGenerator:
    """Alice's side of the two-round protocol (Corollary 3.2)."""
    bob_estimator = yield Receive(ctx.estimator_codec())
    if bob_estimator is END_OF_SESSION:
        return aborted_outcome()
    alice_estimator = ctx.make_estimator()
    alice_estimator.update_all(alice, 2)
    estimate = bob_estimator.merge(alice_estimator).query()
    bound = max(1, int(round(ctx.safety_factor * estimate)) + 1)
    yield from ibf_alice_known(alice, bound, ctx, self_describing=True)
    return PartyOutcome(
        True,
        details={"estimated_difference": estimate, "difference_bound_used": bound},
    )


def ibf_bob_unknown(bob: Set[int], ctx: SetReconContext) -> PartyGenerator:
    """Bob's side: send the estimator, then run the known-``d`` exchange."""
    bob_estimator = ctx.make_estimator()
    bob_estimator.update_all(bob, 1)
    yield Send(
        "difference estimator",
        bob_estimator.size_bits,
        payload=bob_estimator,
        codec=ctx.estimator_codec(),
    )
    outcome = yield from ibf_bob_known(bob, None, ctx, self_describing=True)
    return outcome


def ibf_parties(
    alice: Set[int],
    bob: Set[int],
    difference_bound: int | None,
    ctx: SetReconContext,
) -> PartyPair:
    """Both parties for the ``ibf`` protocol (known or unknown ``d``)."""
    if difference_bound is None:
        return ibf_alice_unknown(alice, ctx), ibf_bob_unknown(bob, ctx)
    return (
        ibf_alice_known(alice, difference_bound, ctx),
        ibf_bob_known(bob, difference_bound, ctx),
    )


# ---------------------------------------------------------------------------
# Characteristic-polynomial interpolation (Theorem 2.3)
# ---------------------------------------------------------------------------


class CPIMessageCodec(PayloadCodec):
    """Codec for :class:`~repro.core.setrecon.cpi.CPIMessage`.

    The prime and the evaluation count follow from the shared
    ``(universe_size, difference_bound)``; only the evaluations and the set
    size travel (exactly the bits :attr:`CPIMessage.size_bits` charges).
    """

    def __init__(self, universe_size: int, difference_bound: int) -> None:
        self.universe_size = universe_size
        self.difference_bound = difference_bound
        self.prime = field_for_universe(universe_size, difference_bound).modulus

    def write(self, writer: BitWriter, payload: CPIMessage) -> None:
        if payload.prime != self.prime or payload.difference_bound != self.difference_bound:
            raise WireError("CPI message disagrees with the shared context")
        element_bits = bits_for_value(self.prime - 1)
        for evaluation in payload.evaluations:
            writer.write(evaluation, element_bits)
        writer.write_tail(payload.set_size)

    def read(self, reader: BitReader) -> CPIMessage:
        element_bits = bits_for_value(self.prime - 1)
        evaluations = tuple(
            reader.read(element_bits) for _ in range(self.difference_bound + 1)
        )
        set_size = reader.read_tail_int()
        return CPIMessage(set_size, evaluations, self.difference_bound, self.prime)


def cpi_alice(
    alice: Set[int],
    difference_bound: int,
    universe_size: int,
    *,
    field_kernel: str | None = None,
) -> PartyGenerator:
    """Alice's side of the one-round CPI protocol."""
    message = cpi_encode(
        alice, difference_bound, universe_size, field_kernel=field_kernel
    )
    yield Send(
        "CPI evaluations",
        message.size_bits,
        payload=message,
        codec=CPIMessageCodec(universe_size, difference_bound),
    )
    return PartyOutcome(True)


def cpi_bob(
    bob: Set[int],
    difference_bound: int,
    universe_size: int,
    seed: int = 0,
    *,
    field_kernel: str | None = None,
) -> PartyGenerator:
    """Bob's side: rational interpolation and root extraction."""
    message = yield Receive(CPIMessageCodec(universe_size, difference_bound))
    if message is END_OF_SESSION:
        return aborted_outcome()
    success, recovered = cpi_decode(
        message, bob, universe_size, seed, field_kernel=field_kernel
    )
    return PartyOutcome(
        success,
        recovered,
        details={"difference_bound": difference_bound},
    )


def cpi_parties(
    alice: Set[int],
    bob: Set[int],
    difference_bound: int,
    universe_size: int,
    seed: int = 0,
    *,
    field_kernel: str | None = None,
) -> PartyPair:
    """Both parties for the ``cpi`` protocol."""
    return (
        cpi_alice(alice, difference_bound, universe_size, field_kernel=field_kernel),
        cpi_bob(bob, difference_bound, universe_size, seed, field_kernel=field_kernel),
    )
