"""Party state machines for the application protocols (databases, documents).

Both applications are transforms around a set-of-sets protocol: binary
relational tables become sets of row-sets (reconciled with cascading by
default), document collections become sets of shingle-signature sets
(reconciled with IBLT-of-IBLTs, the protocol the paper singles out for the
application).
"""

from __future__ import annotations

from repro.db.table import BinaryTable
from repro.documents.collection import DocumentCollection
from repro.errors import ParameterError
from repro.hashing import derive_seed
from repro.protocols.party import PartyGenerator, PartyOutcome, PartyPair
from repro.protocols.parties.setsofsets import (
    cascading_alice_known,
    cascading_bob_known,
    context_for,
    iblt_of_iblts_alice_known,
    iblt_of_iblts_bob_known,
    naive_alice_known,
    naive_bob_known,
)


def db_parties(
    alice: BinaryTable,
    bob: BinaryTable,
    flipped_bits_bound: int,
    seed: int,
    *,
    protocol: str = "cascading",
    backend: str | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    level_slack: float = 3.0,
) -> PartyPair:
    """Both parties for binary-table reconciliation (Bob recovers Alice's)."""
    if alice.columns != bob.columns:
        raise ParameterError("tables must share the same columns")
    columns = alice.columns
    alice_sets = alice.to_sets_of_sets()
    bob_sets = bob.to_sets_of_sets()
    universe = alice.num_columns
    max_child = max(1, alice_sets.max_child_size, bob_sets.max_child_size)
    bound = max(1, flipped_bits_bound)
    ctx = context_for(
        alice_sets,
        bob_sets,
        universe,
        derive_seed(seed, "db"),
        max_child_size=max_child,
        backend=backend,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        level_slack=level_slack,
    )
    if protocol not in ("cascading", "naive"):
        raise ParameterError(f"unknown protocol {protocol!r}")

    def alice_party() -> PartyGenerator:
        if protocol == "naive":
            yield from naive_alice_known(alice_sets, bound, ctx)
        else:
            yield from cascading_alice_known(alice_sets, bound, ctx)
        return PartyOutcome(True)

    def bob_party() -> PartyGenerator:
        if protocol == "naive":
            outcome = yield from naive_bob_known(bob_sets, bound, ctx)
        else:
            outcome = yield from cascading_bob_known(bob_sets, bound, ctx)
        if outcome.success:
            outcome.recovered = BinaryTable.from_sets_of_sets(
                columns, outcome.recovered
            )
        return outcome

    return alice_party(), bob_party()


def documents_parties(
    alice: DocumentCollection,
    bob: DocumentCollection,
    shingle_difference_bound: int,
    seed: int,
    *,
    backend: str | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
) -> PartyPair:
    """Both parties for document-collection signature reconciliation.

    ``recovered`` is the :class:`SetOfSets` of Alice's document signatures,
    from which Bob learns exactly which signatures he is missing (he can then
    request the corresponding documents out of band).
    """
    if (
        alice.shingle_size != bob.shingle_size
        or alice.seed != bob.seed
        or alice.hash_bits != bob.hash_bits
    ):
        raise ParameterError("collections must share shingling parameters")
    alice_sets = alice.to_sets_of_sets()
    bob_sets = bob.to_sets_of_sets()
    bound = max(1, shingle_difference_bound)
    ctx = context_for(
        alice_sets,
        bob_sets,
        alice.universe_size,
        derive_seed(seed, "documents"),
        backend=backend,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
    )

    def alice_party() -> PartyGenerator:
        yield from iblt_of_iblts_alice_known(alice_sets, bound, ctx)
        return PartyOutcome(True)

    def bob_party() -> PartyGenerator:
        outcome = yield from iblt_of_iblts_bob_known(bob_sets, bound, ctx)
        return outcome

    return alice_party(), bob_party()
