"""Party state machines for the graph and forest schemes (Sections 4-6).

Each scheme composes the flat set / set-of-sets parties with its local
signature and labeling computations:

* ``labeled`` -- plain labeled-edge set reconciliation (Section 4).
* ``exhaustive`` -- the ``O(d log n)``-bit brute-force scheme (Theorem 4.3).
* ``degree_order`` -- degree-ordering signatures + cascading + edge recon
  (Theorem 5.2).
* ``degree_neighborhood`` -- degree-neighborhood signatures (Theorem 5.6).
* ``forest`` -- AHU signatures encoded as multisets-of-multisets over the
  cascading protocol (Theorem 6.1).

The party builders precompute the *shared context* (signature-set sizes,
multiplicity bounds, canonical primes) from both inputs -- the quantities the
paper's protocol statements treat as public parameters -- and hand each
party only its own side's data plus that context.
"""

from __future__ import annotations

import random

from typing import Callable

from repro.comm.bits import BitReader, BitWriter
from repro.comm.sizing import bits_for_value
from repro.core.setsofsets.nested import (
    decode_multiset_children,
    encode_multiset_children,
    encoded_universe_size,
)
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.estimator import SetDifferenceEstimator
from repro.field.prime import prime_at_least
from repro.graphs.degree_neighborhood import (
    _decode_signature,
    _encode_signature,
    signature_change_bound,
)
from repro.graphs.degree_order import (
    _conforming_labels_for_bob,
    canonical_labeling_from_signatures,
)
from repro.graphs.exhaustive import (
    MAX_BRUTE_FORCE_VERTICES,
    _canonical_evaluation,
    _graphs_within_changes,
)
from repro.graphs.forest import (
    RootedForest,
    _edge_multisets,
    _reconstruct_forest,
    ahu_signatures,
)
from repro.graphs.graph import Graph
from repro.graphs.separation import (
    degree_neighborhood_signatures,
    degree_order_signatures,
    multiset_difference_size,
)
from repro.hashing import derive_seed
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    PartyPair,
    Receive,
    Send,
    aborted_outcome,
)
from repro.protocols.parties.setrecon import (
    SetReconContext,
    ibf_alice_known,
    ibf_alice_unknown,
    ibf_bob_known,
    ibf_bob_unknown,
    ibf_message_bits,
)
from repro.protocols.parties.setsofsets import (
    _cascade_plan,
    cascading_alice_known,
    cascading_bob_known,
    context_for,
)
from repro.protocols.wire import PayloadCodec


# ---------------------------------------------------------------------------
# Labeled graphs (Section 4): edge-set reconciliation
# ---------------------------------------------------------------------------


def labeled_parties(
    alice: Graph,
    bob: Graph,
    difference_bound: int | None,
    seed: int,
    *,
    num_hashes: int = 4,
    backend: str | None = None,
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
    safety_factor: float = 2.0,
) -> PartyPair:
    """Both parties for labeled-graph reconciliation."""
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("labeled reconciliation requires equal vertex counts")
    num_vertices = alice.num_vertices
    ctx = SetReconContext(
        alice.edge_key_universe,
        seed,
        num_hashes,
        backend,
        estimator_factory=estimator_factory,
        safety_factor=safety_factor,
    )

    def alice_party() -> PartyGenerator:
        if difference_bound is None:
            outcome = yield from ibf_alice_unknown(alice.edge_keys(), ctx)
        else:
            outcome = yield from ibf_alice_known(
                alice.edge_keys(), difference_bound, ctx
            )
        return outcome

    def bob_party() -> PartyGenerator:
        if difference_bound is None:
            outcome = yield from ibf_bob_unknown(bob.edge_keys(), ctx)
        else:
            outcome = yield from ibf_bob_known(bob.edge_keys(), difference_bound, ctx)
        if outcome.success:
            outcome.recovered = Graph.from_edge_keys(num_vertices, outcome.recovered)
        return outcome

    return alice_party(), bob_party()


# ---------------------------------------------------------------------------
# Exhaustive brute-force scheme (Theorem 4.3)
# ---------------------------------------------------------------------------


class FingerprintCodec(PayloadCodec):
    """Codec for the ``(point, evaluation)`` canonical-form fingerprint."""

    def __init__(self, prime: int) -> None:
        self.prime = prime

    def write(self, writer: BitWriter, payload: tuple[int, int]) -> None:
        point, evaluation = payload
        bits = bits_for_value(self.prime - 1)
        writer.write(point, bits)
        writer.write(evaluation, bits)

    def read(self, reader: BitReader) -> tuple[int, int]:
        bits = bits_for_value(self.prime - 1)
        return reader.read(bits), reader.read(bits)


def exhaustive_parties(
    alice: Graph,
    bob: Graph,
    difference_bound: int,
    seed: int,
    *,
    prime: int | None = None,
) -> PartyPair:
    """Both parties for the brute-force scheme (only feasible for tiny n)."""
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("graph reconciliation requires equal vertex counts")
    n = alice.num_vertices
    if n > MAX_BRUTE_FORCE_VERTICES:
        raise ParameterError(
            f"exhaustive reconciliation is limited to {MAX_BRUTE_FORCE_VERTICES} vertices"
        )
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if prime is None:
        # q = n^{2d+3} as in the proof of Theorem 4.3 (with a small floor).
        prime = prime_at_least(max(17, n ** (2 * difference_bound + 3)))
    codec = FingerprintCodec(prime)

    def alice_party() -> PartyGenerator:
        # Both endpoints derive the identical evaluation point from the
        # shared protocol seed.  lint: allow[D301] seeded from protocol seed
        rng = random.Random(seed)
        point = rng.randrange(prime)
        evaluation = _canonical_evaluation(alice, point, prime)
        yield Send(
            "canonical-form fingerprint",
            2 * bits_for_value(prime - 1),
            payload=(point, evaluation),
            codec=codec,
        )
        return PartyOutcome(True)

    def bob_party() -> PartyGenerator:
        payload = yield Receive(codec)
        if payload is END_OF_SESSION:
            return aborted_outcome()
        point, evaluation = payload
        for candidate in _graphs_within_changes(bob, difference_bound):
            if _canonical_evaluation(candidate, point, prime) == evaluation:
                return PartyOutcome(True, candidate, details={"prime": prime})
        return PartyOutcome(
            False, details={"failure": "no-candidate-matched", "prime": prime}
        )

    return alice_party(), bob_party()


# ---------------------------------------------------------------------------
# Degree-ordering scheme (Theorem 5.2)
# ---------------------------------------------------------------------------


def degree_order_parties(
    alice: Graph,
    bob: Graph,
    difference_bound: int,
    num_top: int,
    seed: int,
    *,
    backend: str | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    level_slack: float = 3.0,
) -> PartyPair:
    """Both parties for the degree-ordering scheme."""
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("graph reconciliation requires equal vertex counts")
    if num_top <= 0 or num_top > alice.num_vertices:
        raise ParameterError("num_top must lie in (0, num_vertices]")
    difference_bound = max(1, difference_bound)
    num_vertices = alice.num_vertices

    alice_top, alice_signatures = degree_order_signatures(alice, num_top)
    bob_top, bob_signatures = degree_order_signatures(bob, num_top)
    alice_signature_set = SetOfSets(alice_signatures.values())
    bob_signature_set = SetOfSets(bob_signatures.values())

    sig_ctx = context_for(
        alice_signature_set,
        bob_signature_set,
        num_top,
        derive_seed(seed, "degree-order-signatures"),
        max_child_size=num_top,
        backend=backend,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        level_slack=level_slack,
    )
    edge_ctx = SetReconContext(
        alice.edge_key_universe, derive_seed(seed, "degree-order-edges"),
        num_hashes, backend,
    )
    signature_bits = _cascade_plan(sig_ctx, difference_bound).total_bits

    def alice_party() -> PartyGenerator:
        try:
            alice_labeling = canonical_labeling_from_signatures(
                alice_top, alice_signatures
            )
        except ParameterError:
            return PartyOutcome(False, details={"failure": "alice-not-separated"})
        if alice_signature_set.num_children != len(alice_signatures):
            return PartyOutcome(False, details={"failure": "alice-not-separated"})
        alice_canonical = alice.relabel([alice_labeling[v] for v in range(num_vertices)])
        yield from cascading_alice_known(alice_signature_set, difference_bound, sig_ctx)
        yield from ibf_alice_known(
            alice_canonical.edge_keys(), difference_bound, edge_ctx
        )
        return PartyOutcome(True)

    def bob_party() -> PartyGenerator:
        sig_outcome = yield from cascading_bob_known(
            bob_signature_set, difference_bound, sig_ctx
        )
        if sig_outcome.aborted:
            return aborted_outcome()
        if not sig_outcome.success:
            return PartyOutcome(
                False,
                details={"failure": "signature-reconciliation", **sig_outcome.details},
            )
        conforming = _conforming_labels_for_bob(
            sig_outcome.recovered, bob_signatures, num_top, difference_bound
        )
        if conforming is None:
            return PartyOutcome(False, details={"failure": "conforming-match"})
        bob_labeling = {vertex: rank for rank, vertex in enumerate(bob_top)}
        bob_labeling.update(conforming)
        bob_canonical = bob.relabel([bob_labeling[v] for v in range(num_vertices)])
        edge_outcome = yield from ibf_bob_known(
            bob_canonical.edge_keys(), difference_bound, edge_ctx
        )
        if edge_outcome.aborted:
            return aborted_outcome()
        if not edge_outcome.success:
            return PartyOutcome(False, details={"failure": "edge-reconciliation"})
        recovered = Graph.from_edge_keys(num_vertices, edge_outcome.recovered)
        edge_bits = ibf_message_bits(
            edge_ctx, difference_bound, len(edge_outcome.recovered)
        )
        return PartyOutcome(
            True,
            recovered,
            details={
                "bob_canonical_labeling": bob_labeling,
                "num_top": num_top,
                "signature_bits": signature_bits,
                "edge_bits": edge_bits,
            },
        )

    return alice_party(), bob_party()


# ---------------------------------------------------------------------------
# Degree-neighborhood scheme (Theorem 5.6)
# ---------------------------------------------------------------------------


def degree_neighborhood_parties(
    alice: Graph,
    bob: Graph,
    difference_bound: int,
    max_degree: int,
    seed: int,
    *,
    signature_bound: int | None = None,
    backend: str | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    level_slack: float = 3.0,
) -> PartyPair:
    """Both parties for the degree-neighborhood scheme."""
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("graph reconciliation requires equal vertex counts")
    difference_bound = max(1, difference_bound)
    num_vertices = alice.num_vertices
    multiplicity_bound = num_vertices  # a degree value occurs at most n times
    if signature_bound is None:
        signature_bound = signature_change_bound(difference_bound, max_degree)

    alice_raw = degree_neighborhood_signatures(alice, max_degree)
    bob_raw = degree_neighborhood_signatures(bob, max_degree)
    alice_encoded = {
        vertex: _encode_signature(signature, multiplicity_bound)
        for vertex, signature in alice_raw.items()
    }
    bob_encoded = {
        vertex: _encode_signature(signature, multiplicity_bound)
        for vertex, signature in bob_raw.items()
    }
    alice_signature_set = SetOfSets(alice_encoded.values())
    bob_signature_set = SetOfSets(bob_encoded.values())

    pair_universe = (num_vertices + 1) * (multiplicity_bound + 1) + multiplicity_bound + 1
    max_child = max(
        1, alice_signature_set.max_child_size, bob_signature_set.max_child_size
    )
    sig_ctx = context_for(
        alice_signature_set,
        bob_signature_set,
        pair_universe,
        derive_seed(seed, "degree-neighborhood-signatures"),
        max_child_size=max_child,
        backend=backend,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        level_slack=level_slack,
    )
    edge_ctx = SetReconContext(
        alice.edge_key_universe, derive_seed(seed, "degree-neighborhood-edges"),
        num_hashes, backend,
    )
    signature_bits = _cascade_plan(sig_ctx, signature_bound).total_bits

    def alice_party() -> PartyGenerator:
        if len(set(alice_encoded.values())) != num_vertices:
            return PartyOutcome(False, details={"failure": "alice-not-disjoint"})
        alice_order = sorted(alice_encoded, key=lambda v: sorted(alice_encoded[v]))
        alice_labeling = {vertex: rank for rank, vertex in enumerate(alice_order)}
        alice_canonical = alice.relabel([alice_labeling[v] for v in range(num_vertices)])
        yield from cascading_alice_known(alice_signature_set, signature_bound, sig_ctx)
        yield from ibf_alice_known(
            alice_canonical.edge_keys(), difference_bound, edge_ctx
        )
        return PartyOutcome(True)

    def bob_party() -> PartyGenerator:
        sig_outcome = yield from cascading_bob_known(
            bob_signature_set, signature_bound, sig_ctx
        )
        if sig_outcome.aborted:
            return aborted_outcome()
        if not sig_outcome.success:
            return PartyOutcome(
                False,
                details={"failure": "signature-reconciliation", **sig_outcome.details},
            )
        alice_children = sig_outcome.recovered.sorted_children()
        if len(alice_children) != num_vertices:
            return PartyOutcome(False, details={"failure": "signature-count"})
        alice_counters = [
            _decode_signature(child, multiplicity_bound) for child in alice_children
        ]
        bob_labeling: dict[int, int] = {}
        used: set[int] = set()
        for vertex in bob.vertices():
            bob_counter = bob_raw[vertex]
            best_rank = None
            best_distance = None
            for rank, alice_counter in enumerate(alice_counters):
                distance = multiset_difference_size(bob_counter, alice_counter)
                if best_distance is None or distance < best_distance:
                    best_distance = distance
                    best_rank = rank
            if (
                best_rank is None
                or best_distance > 2 * difference_bound
                or best_rank in used
            ):
                return PartyOutcome(False, details={"failure": "conforming-match"})
            used.add(best_rank)
            bob_labeling[vertex] = best_rank
        bob_canonical = bob.relabel([bob_labeling[v] for v in range(num_vertices)])
        edge_outcome = yield from ibf_bob_known(
            bob_canonical.edge_keys(), difference_bound, edge_ctx
        )
        if edge_outcome.aborted:
            return aborted_outcome()
        if not edge_outcome.success:
            return PartyOutcome(False, details={"failure": "edge-reconciliation"})
        recovered = Graph.from_edge_keys(num_vertices, edge_outcome.recovered)
        edge_bits = ibf_message_bits(
            edge_ctx, difference_bound, len(edge_outcome.recovered)
        )
        return PartyOutcome(
            True,
            recovered,
            details={
                "bob_canonical_labeling": bob_labeling,
                "max_degree": max_degree,
                "signature_bits": signature_bits,
                "edge_bits": edge_bits,
            },
        )

    return alice_party(), bob_party()


# ---------------------------------------------------------------------------
# Forest reconciliation (Theorem 6.1)
# ---------------------------------------------------------------------------


def forest_parties(
    alice: RootedForest,
    bob: RootedForest,
    difference_bound: int,
    max_depth: int | None,
    seed: int,
    *,
    signature_bits: int = 48,
    backend: str | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    level_slack: float = 3.0,
) -> PartyPair:
    """Both parties for forest reconciliation over the cascading protocol."""
    difference_bound = max(1, difference_bound)
    if max_depth is None:
        max_depth = max(alice.max_depth, bob.max_depth)
    max_depth = max(1, max_depth)

    alice_collection = _edge_multisets(
        alice, ahu_signatures(alice, seed, signature_bits), signature_bits
    )
    bob_collection = _edge_multisets(
        bob, ahu_signatures(bob, seed, signature_bits), signature_bits
    )

    # Each edge edit changes the signatures of at most ``sigma`` ancestors;
    # each changed signature perturbs two multisets (its own tagged entry and
    # its parent's child entry), and the edit itself moves one child entry.
    change_bound = difference_bound * (4 * max_depth + 2)
    universe = 1 << (signature_bits + 1)

    # Multiset-of-multisets encoding (Theorem 3.11): multiplicity bounds and
    # child sizes are public context derived from both collections.
    element_multiplicity_bound = max(
        alice_collection.max_element_multiplicity,
        bob_collection.max_element_multiplicity,
    )
    parent_multiplicity_bound = max(
        alice_collection.max_parent_multiplicity,
        bob_collection.max_parent_multiplicity,
    )
    encoded_alice = encode_multiset_children(
        alice_collection, universe, element_multiplicity_bound, parent_multiplicity_bound
    )
    encoded_bob = encode_multiset_children(
        bob_collection, universe, element_multiplicity_bound, parent_multiplicity_bound
    )
    encoded_universe = encoded_universe_size(
        universe, element_multiplicity_bound, parent_multiplicity_bound
    )
    encoded_bound = 2 * max(1, change_bound) + 2
    max_child = max(1, encoded_alice.max_child_size, encoded_bob.max_child_size)
    sos_ctx = context_for(
        encoded_alice,
        encoded_bob,
        encoded_universe,
        derive_seed(seed, "forest-sos"),
        max_child_size=max_child,
        backend=backend,
        child_hash_bits=child_hash_bits,
        num_hashes=num_hashes,
        level_slack=level_slack,
    )

    def alice_party() -> PartyGenerator:
        yield from cascading_alice_known(encoded_alice, encoded_bound, sos_ctx)
        return PartyOutcome(True)

    def bob_party() -> PartyGenerator:
        outcome = yield from cascading_bob_known(encoded_bob, encoded_bound, sos_ctx)
        if outcome.aborted:
            return aborted_outcome()
        if not outcome.success:
            return PartyOutcome(
                False,
                details={"failure": "collection-reconciliation", **outcome.details},
            )
        recovered_collection = decode_multiset_children(
            outcome.recovered, universe, element_multiplicity_bound
        )
        reconstructed = _reconstruct_forest(recovered_collection, signature_bits)
        if reconstructed is None:
            return PartyOutcome(False, details={"failure": "reconstruction"})
        # Local sanity check: the rebuilt forest must reproduce the recovered
        # collection (catches reconstruction bugs and signature collisions).
        rebuilt_signatures = ahu_signatures(reconstructed, seed, signature_bits)
        rebuilt_collection = _edge_multisets(
            reconstructed, rebuilt_signatures, signature_bits
        )
        verified = rebuilt_collection == recovered_collection
        return PartyOutcome(
            verified,
            reconstructed if verified else None,
            details={
                "max_depth": max_depth,
                "change_bound": change_bound,
                "failure": None if verified else "reconstruction-verification",
            },
        )

    return alice_party(), bob_party()
