"""Party state machines for the set-of-sets protocols (Section 3).

The four SSRK protocols -- naive (Thm 3.3/3.4), IBLT-of-IBLTs (Thm 3.5 /
Cor 3.6), cascading (Thm 3.7 / Cor 3.8) and multiround (Thm 3.9/3.10) --
split into explicit alice/bob generators plus the wire codecs for their
messages.  The legacy functions in :mod:`repro.core.setsofsets` are thin
wrappers running these parties over an in-memory session.

Shared-context conventions (documented in docs/protocols.md): the universe
size ``u``, child bound ``h``, the seed, and both parents' child counts and
total sizes are public parameters -- exactly the quantities the paper's
protocol statements assume both parties know.  The unknown-``d`` variants
whose bound comes out of an estimator merge transmit it in a small
self-describing header (documented framing); the repeated-doubling variants
need no header because both parties track the deterministic bound schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.comm import WORD_BITS
from repro.comm.bits import BitReader, BitWriter
from repro.comm.sizing import bits_for_value
from repro.core.setrecon.cpi import (
    CPIMessage,
    cpi_decode,
    cpi_encode,
    field_for_universe,
)
from repro.core.setrecon.difference import apply_difference, max_element_bits
from repro.core.setsofsets.encoding import (
    ChildEncodingScheme,
    ChildTableCache,
    ExplicitChildScheme,
    child_set_hash,
    child_set_hash_many,
    parent_hash,
)
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.estimator import L0Estimator, SetDifferenceEstimator
from repro.hashing import SeededHasher, derive_seed
from repro.iblt import IBLT, IBLTArray, IBLTParameters
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    PartyPair,
    Receive,
    Send,
    aborted_outcome,
)
from repro.protocols.wire import (
    NULL_CODEC,
    EstimatorCodec,
    PayloadCodec,
    TableWithHashCodec,
    WireError,
)


@dataclass(frozen=True)
class SetsOfSetsContext:
    """Shared knowledge for one set-of-sets protocol execution.

    ``max_num_children`` and ``max_total_elements`` are the public size
    statistics (the paper's ``s`` and ``n``) used for the ``d_hat`` and
    ``max_bound`` defaults; builders fill them from both inputs.
    """

    universe_size: int
    seed: int
    max_child_size: int | None = None
    differing_children_bound: int | None = None
    num_hashes: int = 4
    child_hash_bits: int = 48
    backend: str | None = None
    field_kernel: str | None = None
    level_slack: float = 3.0
    safety_factor: float = 2.0
    estimate_safety: float = 2.0
    estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None
    fallback_to_all_children: bool = True
    max_num_children: int = 1
    max_total_elements: int = 1

    def with_seed(self, seed: int) -> "SetsOfSetsContext":
        return replace(self, seed=seed)


def context_for(
    alice: SetOfSets, bob: SetOfSets, universe_size: int, seed: int, **kwargs: Any
) -> SetsOfSetsContext:
    """Build a context with the public size statistics of both parents."""
    return SetsOfSetsContext(
        universe_size,
        seed,
        max_num_children=max(1, alice.num_children, bob.num_children),
        max_total_elements=max(1, alice.total_elements + bob.total_elements),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Naive protocol (Theorems 3.3 and 3.4)
# ---------------------------------------------------------------------------


def _naive_parent_params(ctx: SetsOfSetsContext, bound: int) -> IBLTParameters:
    scheme = ExplicitChildScheme(ctx.universe_size, ctx.max_child_size)
    # A bound of d_hat differing child *pairs* can put up to 2 * d_hat child
    # encodings (one per side) into the difference table, so size for that.
    return IBLTParameters.for_difference(
        2 * max(1, bound),
        scheme.key_bits,
        derive_seed(ctx.seed, "naive-parent"),
        ctx.num_hashes,
    )


def _naive_codec(
    ctx: SetsOfSetsContext, bound: int | None, self_describing: bool
) -> TableWithHashCodec:
    return TableWithHashCodec(
        lambda b: _naive_parent_params(ctx, b),
        bound,
        self_describing=self_describing,
        backend=ctx.backend,
    )


def naive_alice_known(
    alice: SetOfSets,
    differing_children_bound: int,
    ctx: SetsOfSetsContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Alice's side of the one-round naive protocol (Theorem 3.3)."""
    if differing_children_bound < 0:
        raise ParameterError("differing_children_bound must be non-negative")
    scheme = ExplicitChildScheme(ctx.universe_size, ctx.max_child_size)
    params = _naive_parent_params(ctx, differing_children_bound)
    alice_table = IBLT(params, backend=ctx.backend)
    alice_table.insert_batch(scheme.encode(child) for child in alice)
    verification = parent_hash(alice, ctx.seed)
    yield Send(
        "naive parent IBLT",
        alice_table.size_bits + WORD_BITS,
        payload=(alice_table, verification),
        codec=_naive_codec(ctx, differing_children_bound, self_describing),
    )
    return PartyOutcome(True)


def naive_bob_known(
    bob: SetOfSets,
    differing_children_bound: int | None,
    ctx: SetsOfSetsContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Bob's side: subtract his encodings, peel, swap differing children."""
    payload = yield Receive(
        _naive_codec(ctx, differing_children_bound, self_describing)
    )
    if payload is END_OF_SESSION:
        return aborted_outcome()
    alice_table, verification = payload
    scheme = ExplicitChildScheme(ctx.universe_size, ctx.max_child_size)
    difference = alice_table.copy()
    difference.delete_batch(scheme.encode(child) for child in bob)
    decode = difference.try_decode()
    if not decode.success:
        return PartyOutcome(False, details={"failure": "parent-iblt-peel"})
    alice_only = [scheme.decode(key) for key in decode.positive]
    bob_only = [scheme.decode(key) for key in decode.negative]
    recovered = bob.replace_children(bob_only, alice_only)
    verified = parent_hash(recovered, ctx.seed) == verification
    return PartyOutcome(
        verified,
        recovered if verified else None,
        details={
            "differing_children_found": len(alice_only) + len(bob_only),
            "failure": None if verified else "verification-hash",
        },
    )


def _naive_child_id_hasher(
    ctx: SetsOfSetsContext,
) -> Callable[[frozenset[int]], int]:
    hasher = SeededHasher(derive_seed(ctx.seed, "naive-child-id"), 64)

    def child_id(child: frozenset[int]) -> int:
        return hasher.hash_iterable(sorted(child)) ^ hasher.hash_int(len(child))

    return child_id


def _naive_estimator(
    ctx: SetsOfSetsContext,
) -> tuple[Callable[[int], SetDifferenceEstimator], int]:
    factory = ctx.estimator_factory if ctx.estimator_factory else L0Estimator
    estimator_seed = derive_seed(ctx.seed, "naive-estimator")
    return factory, estimator_seed


def naive_alice_unknown(alice: SetOfSets, ctx: SetsOfSetsContext) -> PartyGenerator:
    """Alice's side of the two-round naive protocol (Theorem 3.4)."""
    factory, estimator_seed = _naive_estimator(ctx)
    bob_estimator = yield Receive(EstimatorCodec(factory, estimator_seed))
    if bob_estimator is END_OF_SESSION:
        return aborted_outcome()
    child_id = _naive_child_id_hasher(ctx)
    alice_estimator = factory(estimator_seed)
    alice_estimator.update_all((child_id(child) for child in alice), 2)
    estimate = bob_estimator.merge(alice_estimator).query()
    bound = max(1, int(round(ctx.safety_factor * estimate)) + 1)
    yield from naive_alice_known(alice, bound, ctx, self_describing=True)
    return PartyOutcome(
        True,
        details={
            "estimated_differing_children": estimate,
            "differing_children_bound_used": bound,
        },
    )


def naive_bob_unknown(bob: SetOfSets, ctx: SetsOfSetsContext) -> PartyGenerator:
    """Bob's side: send the child-count estimator, then the known-bound flow."""
    factory, estimator_seed = _naive_estimator(ctx)
    child_id = _naive_child_id_hasher(ctx)
    bob_estimator = factory(estimator_seed)
    bob_estimator.update_all((child_id(child) for child in bob), 1)
    yield Send(
        "child-count estimator",
        bob_estimator.size_bits,
        payload=bob_estimator,
        codec=EstimatorCodec(factory, estimator_seed),
    )
    outcome = yield from naive_bob_known(bob, None, ctx, self_describing=True)
    return outcome


def naive_parties(
    alice: SetOfSets,
    bob: SetOfSets,
    differing_children_bound: int | None,
    ctx: SetsOfSetsContext,
) -> PartyPair:
    """Both parties for the ``naive`` protocol (known or unknown bound)."""
    if differing_children_bound is None:
        return naive_alice_unknown(alice, ctx), naive_bob_unknown(bob, ctx)
    return (
        naive_alice_known(alice, differing_children_bound, ctx),
        naive_bob_known(bob, differing_children_bound, ctx),
    )


# ---------------------------------------------------------------------------
# Shared repeated-doubling driver (Corollaries 3.6 and 3.8)
# ---------------------------------------------------------------------------


def doubling_alice(
    known_alice: Callable[[int, int], PartyGenerator],
    initial_bound: int,
    max_bound: int,
) -> PartyGenerator:
    """Alice's side of a repeated-doubling protocol.

    ``known_alice(bound, attempt)`` builds the known-``d`` sub-party for one
    attempt.  After each attempt alice waits: a retry request means "double
    and go again"; :data:`END_OF_SESSION` means bob verified and finished.
    """
    bound = max(1, initial_bound)
    attempts = 0
    while bound <= max_bound:
        attempts += 1
        yield from known_alice(bound, attempts)
        reply = yield Receive(NULL_CODEC)
        if reply is END_OF_SESSION:
            return PartyOutcome(True, attempts=attempts)
        if bound >= max_bound:
            break
        bound = min(2 * bound, max_bound)
    return PartyOutcome(False, attempts=attempts)


def doubling_bob(
    known_bob: Callable[[int, int], PartyGenerator],
    initial_bound: int,
    max_bound: int,
) -> PartyGenerator:
    """Bob's side: try each attempt, acknowledge failures with a retry request.

    The final doubling is clamped to ``max_bound`` so the largest permitted
    bound is always attempted (a true ``d`` between the last power of two and
    ``max_bound`` would otherwise never be tried).
    """
    bound = max(1, initial_bound)
    attempts = 0
    while bound <= max_bound:
        attempts += 1
        outcome = yield from known_bob(bound, attempts)
        if outcome.success:
            outcome.attempts = attempts
            outcome.details["final_difference_bound"] = bound
            return outcome
        yield Send("retry request", WORD_BITS, payload=None, codec=NULL_CODEC)
        if bound >= max_bound:
            break
        bound = min(2 * bound, max_bound)
    return PartyOutcome(
        False,
        attempts=attempts,
        details={"failure": "exceeded-max-bound", "max_bound": max_bound},
    )


# ---------------------------------------------------------------------------
# IBLT-of-IBLTs protocol (Theorem 3.5, Corollary 3.6)
# ---------------------------------------------------------------------------


def _flat_child_scheme(
    ctx: SetsOfSetsContext, difference_bound: int
) -> ChildEncodingScheme:
    """Child-IBLT encoding scheme shared by both parties."""
    child_params = IBLTParameters.for_difference(
        max(1, difference_bound),
        max_element_bits(ctx.universe_size),
        derive_seed(ctx.seed, "child-iblt", "flat"),
        num_hashes=3,
        checksum_bits=24,
        count_bits=16,
    )
    return ChildEncodingScheme(
        child_params, ctx.child_hash_bits, derive_seed(ctx.seed, "child-hash")
    )


def _flat_parent_params(ctx: SetsOfSetsContext, difference_bound: int) -> IBLTParameters:
    d_hat = (
        ctx.differing_children_bound
        if ctx.differing_children_bound is not None
        else max(1, difference_bound)
    )
    scheme = _flat_child_scheme(ctx, difference_bound)
    # Up to 2 * d_hat child encodings (one per side of each differing pair)
    # can remain in the parent table, so size it accordingly.
    return IBLTParameters.for_difference(
        2 * max(1, d_hat),
        scheme.key_bits,
        derive_seed(ctx.seed, "parent-iblt"),
        ctx.num_hashes,
    )


def _recover_child(
    scheme: ChildEncodingScheme,
    alice_key: int,
    candidate_children: list[frozenset[int]],
    candidate_tables: ChildTableCache,
    backend: str | None = None,
) -> frozenset[int] | None:
    """Try to decode one of Alice's child encodings against candidate children.

    Returns Alice's recovered child set, or ``None`` if no candidate decodes
    to a set matching the encoding's hash.  Candidate tables come from the
    per-reconcile cache, so each candidate's table is built exactly once no
    matter how many of Alice's keys it is tried against.

    On a vectorized backend every candidate difference peels in one batched
    :meth:`~repro.iblt.multi.IBLTArray.decode_all` pass; otherwise the
    candidates are tried lazily one by one (keeping the early exit on the
    first hash match, which is the better economics for the scalar store).
    Either way the answer is the first candidate, in order, whose decode
    matches the hash -- bit-identical across backends.
    """
    alice_table, alice_hash = scheme.decode(alice_key, backend=backend)
    tables = [candidate_tables.get(candidate) for candidate in candidate_children]
    batched = IBLTArray.from_difference(alice_table, tables)
    if batched is not None:
        decodes = batched.decode_all()
    else:
        decodes = (
            alice_table.subtract(table).try_decode() for table in tables
        )
    for candidate, decode in zip(candidate_children, decodes):
        if not decode.success:
            continue
        recovered = frozenset(
            apply_difference(candidate, decode.positive, decode.negative)
        )
        if scheme.hash_of(recovered) == alice_hash:
            return recovered
    return None


def iblt_of_iblts_alice_known(
    alice: SetOfSets, difference_bound: int, ctx: SetsOfSetsContext
) -> PartyGenerator:
    """Alice's side of the one-round IBLT-of-IBLTs protocol (Theorem 3.5)."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    scheme = _flat_child_scheme(ctx, difference_bound)
    parent_params = _flat_parent_params(ctx, difference_bound)
    alice_table = IBLT(parent_params, backend=ctx.backend)
    alice_table.insert_batch(scheme.encode_all(alice, backend=ctx.backend))
    verification = parent_hash(alice, ctx.seed)
    yield Send(
        "parent IBLT of child encodings",
        alice_table.size_bits + WORD_BITS,
        payload=(alice_table, verification),
        codec=TableWithHashCodec(
            lambda b: _flat_parent_params(ctx, b), difference_bound, backend=ctx.backend
        ),
    )
    return PartyOutcome(True)


def iblt_of_iblts_bob_known(
    bob: SetOfSets, difference_bound: int, ctx: SetsOfSetsContext
) -> PartyGenerator:
    """Bob's side: peel the parent, decode differing children pairwise."""
    payload = yield Receive(
        TableWithHashCodec(
            lambda b: _flat_parent_params(ctx, b), difference_bound, backend=ctx.backend
        )
    )
    if payload is END_OF_SESSION:
        return aborted_outcome()
    alice_table, verification = payload
    scheme = _flat_child_scheme(ctx, difference_bound)

    bob_children = bob.sorted_children()
    bob_encoding_to_child = dict(
        zip(scheme.encode_all(bob_children, backend=ctx.backend), bob_children)
    )
    difference_table = alice_table.copy()
    difference_table.delete_batch(list(bob_encoding_to_child))
    decode = difference_table.try_decode()
    if not decode.success:
        return PartyOutcome(False, details={"failure": "parent-iblt-peel"})

    differing_bob_children = [
        bob_encoding_to_child[key]
        for key in decode.negative
        if key in bob_encoding_to_child
    ]
    if len(differing_bob_children) != len(decode.negative):
        # A negative key we never inserted: checksum corruption in the parent.
        return PartyOutcome(False, details={"failure": "parent-checksum"})

    other_children = (
        [child for child in bob_children if child not in set(differing_bob_children)]
        if ctx.fallback_to_all_children
        else []
    )

    # Candidate child tables are built once per reconcile call and shared
    # across every one of Alice's keys; the fallback candidates are only
    # built if some encoding actually needs them.
    candidate_tables = ChildTableCache(scheme, backend=ctx.backend)
    if decode.positive:
        candidate_tables.add_children(differing_bob_children)

    recovered_children: list[frozenset[int]] = []
    for alice_key in decode.positive:
        recovered = _recover_child(
            scheme, alice_key, differing_bob_children, candidate_tables,
            backend=ctx.backend,
        )
        if recovered is None and ctx.fallback_to_all_children:
            candidate_tables.add_children(other_children)
            recovered = _recover_child(
                scheme, alice_key, other_children, candidate_tables,
                backend=ctx.backend,
            )
        if recovered is None:
            return PartyOutcome(False, details={"failure": "child-iblt-decode"})
        recovered_children.append(recovered)

    reconstruction = bob.replace_children(differing_bob_children, recovered_children)
    verified = parent_hash(reconstruction, ctx.seed) == verification
    return PartyOutcome(
        verified,
        reconstruction if verified else None,
        details={
            "differing_children_found": len(decode.positive) + len(decode.negative),
            "failure": None if verified else "verification-hash",
        },
    )


def iblt_of_iblts_parties(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int | None,
    ctx: SetsOfSetsContext,
    *,
    initial_bound: int = 1,
    max_bound: int | None = None,
) -> PartyPair:
    """Both parties; ``difference_bound=None`` runs repeated doubling."""
    if difference_bound is not None:
        return (
            iblt_of_iblts_alice_known(alice, difference_bound, ctx),
            iblt_of_iblts_bob_known(bob, difference_bound, ctx),
        )
    if max_bound is None:
        max_bound = 2 * ctx.max_total_elements

    def known_alice(bound: int, attempt: int) -> PartyGenerator:
        return iblt_of_iblts_alice_known(
            alice, bound, ctx.with_seed(derive_seed(ctx.seed, "doubling", attempt))
        )

    def known_bob(bound: int, attempt: int) -> PartyGenerator:
        return iblt_of_iblts_bob_known(
            bob, bound, ctx.with_seed(derive_seed(ctx.seed, "doubling", attempt))
        )

    return (
        doubling_alice(known_alice, initial_bound, max_bound),
        doubling_bob(known_bob, initial_bound, max_bound),
    )


# ---------------------------------------------------------------------------
# Cascading protocol (Algorithm 2, Theorem 3.7, Corollary 3.8)
# ---------------------------------------------------------------------------


def _level_child_scheme(ctx: SetsOfSetsContext, level: int) -> ChildEncodingScheme:
    """Child encoding scheme for cascade level ``level`` (child IBLTs of O(2^level) cells)."""
    child_params = IBLTParameters.for_difference(
        2**level,
        max_element_bits(ctx.universe_size),
        derive_seed(ctx.seed, "cascade-child", level),
        num_hashes=3,
        checksum_bits=24,
        count_bits=16,
    )
    return ChildEncodingScheme(
        child_params, ctx.child_hash_bits, derive_seed(ctx.seed, "child-hash")
    )


def _parent_capacity(level: int, difference_bound: int, d_hat: int, slack: float) -> int:
    """Capacity (in keys) of the level-``level`` parent table.

    Level 1 may see every differing child encoding from both sides (up to
    ``2 * d_hat``); level ``i >= 2`` sees at most about ``d / 2^{i-1}``
    unrecovered children by the budget argument in the proof of Theorem 3.7
    (we apply a small constant ``slack`` on top).
    """
    if level == 1:
        return max(2, min(2 * d_hat, 2 * difference_bound))
    budget = int(math.ceil(slack * difference_bound / (2 ** (level - 1))))
    return max(2, min(2 * d_hat, budget))


@dataclass(frozen=True)
class _CascadePlan:
    """Everything both parties derive from the shared cascading context."""

    schemes: list[ChildEncodingScheme]
    level_params: list[IBLTParameters]
    explicit_scheme: ExplicitChildScheme
    t_star_params: IBLTParameters | None

    @property
    def num_levels(self) -> int:
        return len(self.schemes)

    @property
    def total_bits(self) -> int:
        total = sum(params.size_bits for params in self.level_params) + WORD_BITS
        if self.t_star_params is not None:
            total += self.t_star_params.size_bits
        return total


def _cascade_plan(ctx: SetsOfSetsContext, difference_bound: int) -> _CascadePlan:
    difference_bound = max(1, difference_bound)
    d_hat = (
        ctx.differing_children_bound
        if ctx.differing_children_bound is not None
        else min(difference_bound, ctx.max_num_children)
    )
    cascade_limit = max(2, min(difference_bound, ctx.max_child_size))
    num_levels = max(1, math.ceil(math.log2(cascade_limit)))
    schemes = [
        _level_child_scheme(ctx, level) for level in range(1, num_levels + 1)
    ]
    level_params = [
        IBLTParameters.for_difference(
            _parent_capacity(level, difference_bound, d_hat, ctx.level_slack),
            scheme.key_bits,
            derive_seed(ctx.seed, "cascade-parent", level),
            ctx.num_hashes,
        )
        for level, scheme in zip(range(1, num_levels + 1), schemes)
    ]
    explicit_scheme = ExplicitChildScheme(ctx.universe_size, ctx.max_child_size)
    t_star_params = None
    if difference_bound >= ctx.max_child_size:
        t_star_params = IBLTParameters.for_difference(
            max(2, math.ceil(ctx.level_slack * difference_bound / ctx.max_child_size)),
            explicit_scheme.key_bits,
            derive_seed(ctx.seed, "cascade-t-star"),
            ctx.num_hashes,
        )
    return _CascadePlan(schemes, level_params, explicit_scheme, t_star_params)


class CascadingMessageCodec(PayloadCodec):
    """Codec for Alice's single cascading message.

    Payload: ``(level_tables, t_star_or_None, verification)``.  Every table's
    parameters follow from the shared plan, so only cell contents travel --
    exactly the bits the transcript charges (zero framing).
    """

    def __init__(self, plan: _CascadePlan, backend: str | None = None) -> None:
        self.plan = plan
        self.backend = backend

    def write(
        self, writer: BitWriter, payload: tuple[list[IBLT], IBLT | None, int]
    ) -> None:
        level_tables, t_star, verification = payload
        if len(level_tables) != self.plan.num_levels:
            raise WireError("level count disagrees with the shared cascade plan")
        if (t_star is None) != (self.plan.t_star_params is None):
            raise WireError("T* presence disagrees with the shared cascade plan")
        for params, table in zip(self.plan.level_params, level_tables):
            writer.write(table.serialize(), params.size_bits)
        if t_star is not None:
            writer.write(t_star.serialize(), self.plan.t_star_params.size_bits)
        writer.write(verification, WORD_BITS)

    def read(self, reader: BitReader) -> tuple[list[IBLT], IBLT | None, int]:
        level_tables = [
            IBLT.deserialize(params, reader.read(params.size_bits), backend=self.backend)
            for params in self.plan.level_params
        ]
        t_star = None
        if self.plan.t_star_params is not None:
            t_star = IBLT.deserialize(
                self.plan.t_star_params,
                reader.read(self.plan.t_star_params.size_bits),
                backend=self.backend,
            )
        verification = reader.read(WORD_BITS)
        return level_tables, t_star, verification


def cascading_alice_known(
    alice: SetOfSets, difference_bound: int, ctx: SetsOfSetsContext
) -> PartyGenerator:
    """Alice's side: build every level table (and T*) and send them at once."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if ctx.max_child_size is None or ctx.max_child_size <= 0:
        raise ParameterError("max_child_size must be positive")
    plan = _cascade_plan(ctx, difference_bound)
    level_tables: list[IBLT] = []
    for scheme, params in zip(plan.schemes, plan.level_params):
        table = IBLT(params, backend=ctx.backend)
        table.insert_batch(scheme.encode_all(alice, backend=ctx.backend))
        level_tables.append(table)
    t_star: IBLT | None = None
    if plan.t_star_params is not None:
        t_star = IBLT(plan.t_star_params, backend=ctx.backend)
        t_star.insert_batch(plan.explicit_scheme.encode(child) for child in alice)
    verification = parent_hash(alice, ctx.seed)
    yield Send(
        "cascading level tables",
        plan.total_bits,
        payload=(level_tables, t_star, verification),
        codec=CascadingMessageCodec(plan, backend=ctx.backend),
    )
    return PartyOutcome(True)


def cascading_bob_known(
    bob: SetOfSets, difference_bound: int, ctx: SetsOfSetsContext
) -> PartyGenerator:
    """Bob's side: process the levels in order, then T*."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if ctx.max_child_size is None or ctx.max_child_size <= 0:
        raise ParameterError("max_child_size must be positive")
    plan = _cascade_plan(ctx, difference_bound)
    payload = yield Receive(CascadingMessageCodec(plan, backend=ctx.backend))
    if payload is END_OF_SESSION:
        return aborted_outcome()
    level_tables, t_star, verification = payload

    bob_children = bob.sorted_children()
    recovered_children: set[frozenset[int]] = set()   # D_A
    differing_bob: set[frozenset[int]] = set()        # D_B

    for level_index, (scheme, alice_table) in enumerate(
        zip(plan.schemes, level_tables)
    ):
        level = level_index + 1
        work = alice_table.copy()
        # All of Bob's encodings (and the already-recovered children's) are
        # batch-built for this level's scheme in one flat pass each.
        bob_keys = scheme.encode_all(bob_children, backend=ctx.backend)
        encoding_to_child = dict(zip(bob_keys, bob_children))
        deletions = [
            key
            for key, child in zip(bob_keys, bob_children)
            if level == 1 or child not in differing_bob
        ]
        if recovered_children:
            deletions.extend(
                scheme.encode_all(
                    sorted(recovered_children, key=sorted), backend=ctx.backend
                )
            )
        work.delete_batch(deletions)
        decode = work.try_decode()  # partial results are still useful on failure

        for key in decode.negative:
            child = encoding_to_child.get(key)
            if child is not None:
                differing_bob.add(child)
        candidates = sorted(differing_bob, key=sorted)
        candidate_tables = ChildTableCache(scheme, backend=ctx.backend)
        if decode.positive:
            candidate_tables.add_children(candidates)
        for key in decode.positive:
            recovered = _recover_child(
                scheme, key, candidates, candidate_tables, backend=ctx.backend
            )
            if recovered is not None:
                recovered_children.add(recovered)

    if t_star is not None:
        work = t_star.copy()
        # Children in D_B stay in the table so only Alice's unrecovered
        # children remain to extract (keeps T* within its O(d/h) budget).
        deletions = [
            plan.explicit_scheme.encode(child)
            for child in bob_children
            if child not in differing_bob
        ]
        deletions.extend(
            plan.explicit_scheme.encode(child) for child in recovered_children
        )
        work.delete_batch(deletions)
        decode = work.try_decode()
        for key in decode.positive:
            recovered_children.add(plan.explicit_scheme.decode(key))
        for key in decode.negative:
            decoded = plan.explicit_scheme.decode(key)
            if decoded in bob.children:
                differing_bob.add(decoded)

    reconstruction = bob.replace_children(differing_bob, recovered_children)
    verified = parent_hash(reconstruction, ctx.seed) == verification
    return PartyOutcome(
        verified,
        reconstruction if verified else None,
        details={
            "num_levels": plan.num_levels,
            "used_t_star": t_star is not None,
            "recovered_children": len(recovered_children),
            "differing_bob_children": len(differing_bob),
            "failure": None if verified else "verification-hash",
        },
    )


def cascading_parties(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int | None,
    ctx: SetsOfSetsContext,
    *,
    initial_bound: int = 1,
    max_bound: int | None = None,
) -> PartyPair:
    """Both parties; ``difference_bound=None`` runs repeated doubling."""
    if difference_bound is not None:
        return (
            cascading_alice_known(alice, difference_bound, ctx),
            cascading_bob_known(bob, difference_bound, ctx),
        )
    if max_bound is None:
        max_bound = 2 * ctx.max_total_elements

    def known_alice(bound: int, attempt: int) -> PartyGenerator:
        return cascading_alice_known(
            alice, bound, ctx.with_seed(derive_seed(ctx.seed, "cascade-doubling", attempt))
        )

    def known_bob(bound: int, attempt: int) -> PartyGenerator:
        return cascading_bob_known(
            bob, bound, ctx.with_seed(derive_seed(ctx.seed, "cascade-doubling", attempt))
        )

    return (
        doubling_alice(known_alice, initial_bound, max_bound),
        doubling_bob(known_bob, initial_bound, max_bound),
    )


# ---------------------------------------------------------------------------
# Multi-round protocol (Section 3.3, Theorems 3.9 and 3.10)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChildPayload:
    """One per-child payload of Alice's final multiround message."""

    target_hash: int          # hash of Bob's child to decode against
    own_hash: int             # hash of Alice's child (verification)
    bound: int                # difference bound the payload was sized for
    iblt: IBLT | None         # used when the estimated difference is large
    cpi: CPIMessage | None    # used when the estimated difference is small

    def size_bits(self, hash_bits: int) -> int:
        payload = self.iblt.size_bits if self.iblt is not None else self.cpi.size_bits
        return 2 * hash_bits + payload


def default_child_estimator_factory(
    max_child_size: int,
) -> Callable[[int], SetDifferenceEstimator]:
    """Small per-child estimators: O(log h) levels of a handful of buckets."""
    levels = max(4, max_child_size.bit_length() + 2)

    def factory(seed: int) -> SetDifferenceEstimator:
        return L0Estimator(seed, num_levels=levels, buckets_per_level=32)

    return factory


def _hash_iblt_params(ctx: SetsOfSetsContext, d_hat: int) -> IBLTParameters:
    # Up to 2 * d_hat child hashes (one per side of each differing pair) can
    # remain after Bob subtracts his own hashes, so size for that.
    return IBLTParameters.for_difference(
        2 * max(1, d_hat),
        ctx.child_hash_bits,
        derive_seed(ctx.seed, "multiround-hash-iblt"),
        ctx.num_hashes,
        checksum_bits=24,
        count_bits=16,
    )


def _multiround_child_estimator(
    ctx: SetsOfSetsContext,
) -> tuple[Callable[[int], SetDifferenceEstimator], int]:
    factory = (
        ctx.estimator_factory
        if ctx.estimator_factory
        else default_child_estimator_factory(max(1, ctx.max_child_size))
    )
    return factory, derive_seed(ctx.seed, "multiround-child-estimator")


def _multiround_child_params(
    ctx: SetsOfSetsContext, bound: int, own_hash: int
) -> IBLTParameters:
    return IBLTParameters.for_difference(
        bound,
        max_element_bits(ctx.universe_size),
        derive_seed(ctx.seed, "multiround-child-iblt", own_hash),
        num_hashes=3,
        checksum_bits=24,
    )


class MultiroundRound2Codec(PayloadCodec):
    """Codec for Bob's reply: his hash IBLT plus per-child estimators.

    The estimator list is self-delimiting: every entry is a fixed
    ``hash_bits + estimator.size_bits`` wide (the shared factory fixes the
    estimator shape), so the entry count is recovered from the remaining bit
    count.  Zero framing.
    """

    def __init__(self, ctx: SetsOfSetsContext, hash_params: IBLTParameters) -> None:
        self.ctx = ctx
        self.params = hash_params
        self.factory, self.estimator_seed = _multiround_child_estimator(ctx)
        self.entry_bits = (
            ctx.child_hash_bits + self.factory(self.estimator_seed).size_bits
        )

    def write(
        self,
        writer: BitWriter,
        payload: tuple[IBLT, list[tuple[int, SetDifferenceEstimator]]],
    ) -> None:
        bob_hash_table, bob_estimators = payload
        writer.write(bob_hash_table.serialize(), self.params.size_bits)
        for child_hash, estimator in bob_estimators:
            writer.write(child_hash, self.ctx.child_hash_bits)
            estimator.write_wire(writer)

    def read(
        self, reader: BitReader
    ) -> tuple[IBLT, list[tuple[int, SetDifferenceEstimator]]]:
        bob_hash_table = IBLT.deserialize(
            self.params, reader.read(self.params.size_bits), backend=self.ctx.backend
        )
        bob_estimators = []
        while reader.remaining_bits >= self.entry_bits:
            child_hash = reader.read(self.ctx.child_hash_bits)
            estimator = self.factory(self.estimator_seed)
            estimator.read_wire(reader)
            bob_estimators.append((child_hash, estimator))
        return bob_hash_table, bob_estimators


#: Per-child framing of the multiround round-3 message (documented): one
#: payload-kind flag bit plus the difference bound the payload was sized for.
CHILD_FLAG_BITS = 1
CHILD_BOUND_BITS = 24
#: Fixed width of the CPI set-size counter on the wire (the analytic
#: accounting charges the variable ``bits_for_value`` width instead).
CHILD_SET_SIZE_BITS = 32


class MultiroundPayloadsCodec(PayloadCodec):
    """Codec for Alice's final message: a list of :class:`ChildPayload`.

    Each entry carries two child hashes, a flag/bound header (framing, see
    :data:`CHILD_FLAG_BITS` / :data:`CHILD_BOUND_BITS`) and either a child
    IBLT (parameters derived from the bound and the child's own hash) or CPI
    evaluations (count and field derived from the bound).  Entries are
    self-delimiting, so no list length travels.
    """

    def __init__(self, ctx: SetsOfSetsContext) -> None:
        self.ctx = ctx

    def _min_entry_bits(self) -> int:
        return 2 * self.ctx.child_hash_bits + CHILD_FLAG_BITS + CHILD_BOUND_BITS

    def write(self, writer: BitWriter, payload: list[ChildPayload]) -> None:
        for child in payload:
            writer.write(child.target_hash, self.ctx.child_hash_bits)
            writer.write(child.own_hash, self.ctx.child_hash_bits)
            writer.write(0 if child.iblt is not None else 1, CHILD_FLAG_BITS)
            writer.write(child.bound, CHILD_BOUND_BITS)
            if child.iblt is not None:
                params = _multiround_child_params(
                    self.ctx, child.bound, child.own_hash
                )
                if child.iblt.params != params:
                    raise WireError("child IBLT parameters disagree with the context")
                writer.write(child.iblt.serialize(), params.size_bits)
            else:
                message = child.cpi
                writer.write(message.set_size, CHILD_SET_SIZE_BITS)
                element_bits = bits_for_value(message.prime - 1)
                for evaluation in message.evaluations:
                    writer.write(evaluation, element_bits)

    def read(self, reader: BitReader) -> list[ChildPayload]:
        payloads = []
        minimum = self._min_entry_bits()
        while reader.remaining_bits > minimum:
            target_hash = reader.read(self.ctx.child_hash_bits)
            own_hash = reader.read(self.ctx.child_hash_bits)
            is_cpi = reader.read(CHILD_FLAG_BITS)
            bound = reader.read(CHILD_BOUND_BITS)
            if not is_cpi:
                params = _multiround_child_params(self.ctx, bound, own_hash)
                table = IBLT.deserialize(
                    params, reader.read(params.size_bits), backend=self.ctx.backend
                )
                payloads.append(ChildPayload(target_hash, own_hash, bound, table, None))
            else:
                set_size = reader.read(CHILD_SET_SIZE_BITS)
                prime = field_for_universe(self.ctx.universe_size, bound).modulus
                element_bits = bits_for_value(prime - 1)
                evaluations = tuple(
                    reader.read(element_bits) for _ in range(bound + 1)
                )
                payloads.append(
                    ChildPayload(
                        target_hash,
                        own_hash,
                        bound,
                        None,
                        CPIMessage(set_size, evaluations, bound, prime),
                    )
                )
        return payloads

    def framing_bits(self, payload: list[ChildPayload]) -> int:
        total = 0
        for child in payload:
            total += CHILD_FLAG_BITS + CHILD_BOUND_BITS
            if child.cpi is not None:
                total += CHILD_SET_SIZE_BITS - bits_for_value(
                    max(1, child.cpi.set_size)
                )
        return total


def _multiround_r1_codec(
    ctx: SetsOfSetsContext, d_hat: int | None, self_describing: bool
) -> TableWithHashCodec:
    return TableWithHashCodec(
        lambda dh: _hash_iblt_params(ctx, dh),
        d_hat,
        self_describing=self_describing,
        backend=ctx.backend,
    )


def multiround_alice_known(
    alice: SetOfSets,
    difference_bound: int,
    d_hat: int,
    ctx: SetsOfSetsContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Alice's side of the three-round protocol (Theorem 3.9): rounds 1 and 3."""
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    difference_bound = max(1, difference_bound)
    factory, estimator_seed = _multiround_child_estimator(ctx)
    hash_seed = derive_seed(ctx.seed, "child-hash")

    # ---- Round 1: the IBLT of Alice's child hashes (one batch; the hashes
    # of the whole parent set are computed in one batched pass).
    hash_params = _hash_iblt_params(ctx, d_hat)
    alice_hash_table = IBLT(hash_params, backend=ctx.backend)
    alice_children = alice.sorted_children()
    alice_hashes = child_set_hash_many(alice_children, hash_seed, ctx.child_hash_bits)
    alice_hash_to_child = dict(zip(alice_hashes, alice_children))
    alice_child_to_hash = dict(zip(alice_children, alice_hashes))
    alice_hash_table.insert_batch(list(alice_hash_to_child))
    verification = parent_hash(alice, ctx.seed)
    yield Send(
        "child-hash IBLT",
        alice_hash_table.size_bits + WORD_BITS,
        payload=(alice_hash_table, verification),
        codec=_multiround_r1_codec(ctx, d_hat, self_describing),
    )

    # ---- Round 2 arrives: Bob's hash IBLT and his per-child estimators.
    payload = yield Receive(MultiroundRound2Codec(ctx, hash_params))
    if payload is END_OF_SESSION:
        return aborted_outcome()
    bob_hash_table, bob_estimators = payload
    hash_decode = alice_hash_table.subtract(bob_hash_table).try_decode()
    if not hash_decode.success:
        # Bob would have aborted too (identical tables); nothing to send.
        return PartyOutcome(False)

    # ---- Round 3: match children and send per-child payloads.
    alice_differing = [
        alice_hash_to_child[h] for h in hash_decode.positive if h in alice_hash_to_child
    ]
    if len(alice_differing) != len(hash_decode.positive):
        return PartyOutcome(False, details={"failure": "hash-collision"})
    cpi_threshold = math.isqrt(difference_bound)
    payloads: list[ChildPayload] = []
    for child in alice_differing:
        alice_estimator = factory(estimator_seed)
        alice_estimator.update_all(child, 2)
        best_hash = None
        best_estimate = None
        for bob_hash, bob_estimator in bob_estimators:
            estimate = bob_estimator.merge(alice_estimator).query()
            if best_estimate is None or estimate < best_estimate:
                best_estimate = estimate
                best_hash = bob_hash
        if best_hash is None:
            # Bob reported no differing children at all; send the child
            # explicitly via a CPI message against the empty set.
            best_hash = 0
            best_estimate = len(child)
        bound = max(1, int(math.ceil(ctx.estimate_safety * best_estimate)) + 1)
        bound = min(bound, 2 * ctx.max_child_size) if ctx.max_child_size else bound
        own_hash = alice_child_to_hash[child]
        if best_estimate >= cpi_threshold:
            child_params = _multiround_child_params(ctx, bound, own_hash)
            payloads.append(
                ChildPayload(
                    best_hash,
                    own_hash,
                    bound,
                    IBLT.from_items(child_params, child, backend=ctx.backend),
                    None,
                )
            )
        else:
            payloads.append(
                ChildPayload(
                    best_hash,
                    own_hash,
                    bound,
                    None,
                    cpi_encode(
                        child, bound, ctx.universe_size, field_kernel=ctx.field_kernel
                    ),
                )
            )
    round3_bits = sum(
        payload.size_bits(ctx.child_hash_bits) for payload in payloads
    )
    yield Send(
        "per-child payloads",
        round3_bits,
        payload=payloads,
        codec=MultiroundPayloadsCodec(ctx),
    )
    return PartyOutcome(True)


def multiround_bob_known(
    bob: SetOfSets,
    d_hat: int | None,
    ctx: SetsOfSetsContext,
    *,
    self_describing: bool = False,
) -> PartyGenerator:
    """Bob's side: rounds 2 and 4 (reply with estimators, then recover)."""
    payload = yield Receive(_multiround_r1_codec(ctx, d_hat, self_describing))
    if payload is END_OF_SESSION:
        return aborted_outcome()
    alice_hash_table, verification = payload
    hash_params = alice_hash_table.params
    factory, estimator_seed = _multiround_child_estimator(ctx)
    hash_seed = derive_seed(ctx.seed, "child-hash")

    def hash_of(child: frozenset[int]) -> int:
        return child_set_hash(child, hash_seed, ctx.child_hash_bits)

    # ---- Round 2: Bob replies with his hash IBLT and per-child estimators.
    bob_hash_table = IBLT(hash_params, backend=ctx.backend)
    bob_children = bob.sorted_children()
    bob_hashes = child_set_hash_many(bob_children, hash_seed, ctx.child_hash_bits)
    bob_hash_to_child = dict(zip(bob_hashes, bob_children))
    bob_child_to_hash = dict(zip(bob_children, bob_hashes))
    bob_hash_table.insert_batch(list(bob_hash_to_child))
    hash_decode = alice_hash_table.subtract(bob_hash_table).try_decode()
    if not hash_decode.success:
        return PartyOutcome(False, details={"failure": "hash-iblt-peel"})
    bob_differing = [
        bob_hash_to_child[h] for h in hash_decode.negative if h in bob_hash_to_child
    ]
    bob_estimators: list[tuple[int, SetDifferenceEstimator]] = []
    for child in bob_differing:
        estimator = factory(estimator_seed)
        estimator.update_all(child, 1)
        bob_estimators.append((bob_child_to_hash[child], estimator))
    round2_bits = bob_hash_table.size_bits + sum(
        ctx.child_hash_bits + estimator.size_bits for _, estimator in bob_estimators
    )
    # The hash-table parameters came with round 1 (directly, or via its
    # self-describing header), so the reply codec never needs its own header.
    yield Send(
        "hash IBLT + child estimators",
        round2_bits,
        payload=(bob_hash_table, bob_estimators),
        codec=MultiroundRound2Codec(ctx, hash_params),
    )

    # ---- Round 3 arrives: recover Alice's children.
    payloads = yield Receive(MultiroundPayloadsCodec(ctx))
    if payloads is END_OF_SESSION:
        return aborted_outcome()
    recovered_children: list[frozenset[int]] = []
    for payload in payloads:
        base_child = bob_hash_to_child.get(payload.target_hash, frozenset())
        recovered: frozenset[int] | None = None
        if payload.iblt is not None:
            base_table = IBLT.from_items(
                payload.iblt.params, base_child, backend=ctx.backend
            )
            decode = payload.iblt.subtract(base_table).try_decode()
            if decode.success:
                recovered = frozenset(
                    apply_difference(base_child, decode.positive, decode.negative)
                )
        else:
            success, result = cpi_decode(
                payload.cpi,
                set(base_child),
                ctx.universe_size,
                ctx.seed,
                field_kernel=ctx.field_kernel,
            )
            if success:
                recovered = frozenset(result)
        if recovered is None or hash_of(recovered) != payload.own_hash:
            return PartyOutcome(False, details={"failure": "child-recovery"})
        recovered_children.append(recovered)

    reconstruction = bob.replace_children(bob_differing, recovered_children)
    verified = parent_hash(reconstruction, ctx.seed) == verification
    return PartyOutcome(
        verified,
        reconstruction if verified else None,
        details={
            "differing_children_found": len(payloads) + len(bob_differing),
            "cpi_payloads": sum(1 for p in payloads if p.cpi is not None),
            "iblt_payloads": sum(1 for p in payloads if p.iblt is not None),
            "failure": None if verified else "verification-hash",
        },
    )


def multiround_alice_unknown(
    alice: SetOfSets,
    ctx: SetsOfSetsContext,
    *,
    hash_estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
) -> PartyGenerator:
    """Alice's side of the four-round protocol (Theorem 3.10)."""
    factory = hash_estimator_factory if hash_estimator_factory else L0Estimator
    hash_seed = derive_seed(ctx.seed, "child-hash")
    estimator_seed = derive_seed(ctx.seed, "multiround-dhat-estimator")
    bob_estimator = yield Receive(EstimatorCodec(factory, estimator_seed))
    if bob_estimator is END_OF_SESSION:
        return aborted_outcome()
    alice_estimator = factory(estimator_seed)
    alice_estimator.update_all(
        (child_set_hash(child, hash_seed, ctx.child_hash_bits) for child in alice), 2
    )
    estimated_d_hat = bob_estimator.merge(alice_estimator).query()
    d_hat = max(1, int(round(ctx.estimate_safety * estimated_d_hat)) + 1)
    pseudo_d = max(1, d_hat * max(1, ctx.max_child_size) // 4)
    outcome = yield from multiround_alice_known(
        alice, pseudo_d, d_hat, ctx, self_describing=True
    )
    outcome.details.update(
        {
            "estimated_differing_children": estimated_d_hat,
            "differing_children_bound_used": d_hat,
        }
    )
    return outcome


def multiround_bob_unknown(
    bob: SetOfSets,
    ctx: SetsOfSetsContext,
    *,
    hash_estimator_factory: Callable[[int], SetDifferenceEstimator] | None = None,
) -> PartyGenerator:
    """Bob's side: send the child-hash estimator, then rounds 2 and 4."""
    factory = hash_estimator_factory if hash_estimator_factory else L0Estimator
    hash_seed = derive_seed(ctx.seed, "child-hash")
    estimator_seed = derive_seed(ctx.seed, "multiround-dhat-estimator")
    bob_estimator = factory(estimator_seed)
    bob_estimator.update_all(
        (child_set_hash(child, hash_seed, ctx.child_hash_bits) for child in bob), 1
    )
    yield Send(
        "child-hash estimator",
        bob_estimator.size_bits,
        payload=bob_estimator,
        codec=EstimatorCodec(factory, estimator_seed),
    )
    outcome = yield from multiround_bob_known(bob, None, ctx, self_describing=True)
    return outcome


def multiround_parties(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int | None,
    ctx: SetsOfSetsContext,
) -> PartyPair:
    """Both parties; ``difference_bound=None`` runs the four-round variant."""
    if difference_bound is None:
        return multiround_alice_unknown(alice, ctx), multiround_bob_unknown(bob, ctx)
    d_hat = (
        ctx.differing_children_bound
        if ctx.differing_children_bound is not None
        else min(max(1, difference_bound), ctx.max_num_children)
    )
    return (
        multiround_alice_known(alice, difference_bound, d_hat, ctx),
        multiround_bob_known(bob, d_hat, ctx),
    )
