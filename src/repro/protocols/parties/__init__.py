"""Party state machines for every protocol in the library.

Each module splits its protocols into explicit initiator/responder
generators (see :mod:`repro.protocols.party`) plus the wire codecs for their
messages.  The legacy ``reconcile_*`` free functions are thin wrappers that
run these parties over an in-memory session; :func:`repro.reconcile` runs
them over any transport.
"""
