"""Wire codecs: turning protocol payloads into bytes and back.

Every message a party :class:`~repro.protocols.party.Send`-s carries a codec
describing its byte encoding; the matching :class:`Receive` carries the codec
the receiver uses to decode it.  Codecs are built from *shared protocol
context* (universe sizes, seeds, table parameters both parties can derive),
so the bytes on the wire carry only the information the transcript charges
for -- exactly like a real protocol implementation would.

Two invariants tie the codecs to the paper's communication accounting:

* ``decode(encode(payload))`` reproduces the payload (round-trip tests in
  ``tests/protocols/test_wire_roundtrip.py``);
* ``len(encode(payload)) * 8 <= size_bits + framing_bits(payload) + 7`` where
  ``size_bits`` is what the transcript charged.  ``framing_bits`` is each
  codec's *documented* slack -- almost always 0; the exceptions are the
  self-describing headers of the unknown-``d`` variants (a bound the
  receiving party genuinely cannot derive) and the per-child framing of the
  multiround payload list.  :class:`~repro.protocols.transports.SerializingTransport`
  enforces the inequality on every message.

The codecs in this module are the generic, protocol-independent ones;
protocol-specific composites live next to their parties in
:mod:`repro.protocols.parties`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.comm.bits import BitReader, BitWriter
from repro.errors import ReproError
from repro.iblt import IBLT, IBLTParameters


class WireError(ReproError):
    """A payload could not be serialized or deserialized."""


class WireAccountingError(WireError):
    """A serialized message exceeded the size its transcript entry charged."""


class PayloadCodec:
    """Base class for payload codecs.

    Subclasses implement :meth:`write` / :meth:`read` against bit streams;
    :meth:`encode` / :meth:`decode` add the byte framing.  ``framing_bits``
    reports the documented per-payload overhead the analytic ``size_bits``
    does not charge for (0 unless a subclass overrides it).
    """

    def write(self, writer: BitWriter, payload: Any) -> None:
        raise NotImplementedError

    def read(self, reader: BitReader) -> Any:
        raise NotImplementedError

    def framing_bits(self, payload: Any) -> int:
        return 0

    def encode(self, payload: Any) -> bytes:
        writer = BitWriter()
        self.write(writer, payload)
        return writer.getvalue()

    def decode(self, data: bytes) -> Any:
        return self.read(BitReader(data))


class NullCodec(PayloadCodec):
    """Codec for payload-less messages (acknowledgements, retry requests).

    The transcript still charges such messages (e.g. one word for a retry
    request -- the receiver learns one bit of information plus framing), but
    nothing needs to cross the wire beyond the frame itself.
    """

    def write(self, writer: BitWriter, payload: Any) -> None:
        if payload is not None:
            raise WireError("NullCodec cannot carry a payload")

    def read(self, reader: BitReader) -> Any:
        return None


NULL_CODEC = NullCodec()


class TableCodec(PayloadCodec):
    """Codec for one IBLT with shared :class:`IBLTParameters`.

    Packs :meth:`IBLT.serialize` into exactly ``params.size_bits`` bits; the
    parameters themselves are shared context and never transmitted.
    """

    def __init__(self, params: IBLTParameters, backend: str | None = None) -> None:
        self.params = params
        self.backend = backend

    def write(self, writer: BitWriter, payload: IBLT) -> None:
        if payload.params != self.params:
            raise WireError("table parameters do not match the codec's shared context")
        writer.write(payload.serialize(), self.params.size_bits)

    def read(self, reader: BitReader) -> IBLT:
        return IBLT.deserialize(
            self.params, reader.read(self.params.size_bits), backend=self.backend
        )


class TableWithHashCodec(PayloadCodec):
    """Codec for ``(parent IBLT, verification hash)`` messages.

    Covers the one-message set-of-sets protocols (naive, IBLT-of-IBLTs,
    multiround round 1): the table parameters follow from a shared
    bound-to-parameters rule.  With ``self_describing=True`` the bound is
    prepended as a ``header_bits`` field (documented framing) for flows where
    the receiver cannot derive it (the estimator-based unknown-``d``
    variants); the repeated-doubling variants do *not* need it, since both
    parties track the deterministic bound schedule.
    """

    def __init__(
        self,
        params_for_bound: Callable[[int], IBLTParameters],
        bound: int | None,
        *,
        self_describing: bool = False,
        hash_bits: int = 64,
        backend: str | None = None,
        header_bits: int = 32,
    ) -> None:
        self.params_for_bound = params_for_bound
        self.bound = bound
        self.self_describing = self_describing
        self.hash_bits = hash_bits
        self.backend = backend
        self.header_bits = header_bits

    def write(self, writer: BitWriter, payload: tuple[IBLT, int]) -> None:
        table, verification = payload
        if self.bound is None:
            raise WireError("encoding side must know the bound")
        if self.self_describing:
            writer.write(self.bound, self.header_bits)
        params = self.params_for_bound(self.bound)
        if table.params != params:
            raise WireError("table parameters disagree with the shared context")
        writer.write(table.serialize(), params.size_bits)
        writer.write(verification, self.hash_bits)

    def read(self, reader: BitReader) -> tuple[IBLT, int]:
        bound = reader.read(self.header_bits) if self.self_describing else self.bound
        params = self.params_for_bound(bound)
        table = IBLT.deserialize(
            params, reader.read(params.size_bits), backend=self.backend
        )
        verification = reader.read(self.hash_bits)
        return table, verification

    def framing_bits(self, payload: tuple[IBLT, int]) -> int:
        return self.header_bits if self.self_describing else 0


class EstimatorCodec(PayloadCodec):
    """Codec for a set-difference estimator built by a shared factory.

    Only the estimator's registers travel (exactly ``size_bits`` bits); the
    configuration is reconstructed by calling ``factory(seed)`` on the
    receiving side -- both parties share the factory and the derived seed.
    """

    def __init__(self, factory: Callable[[int], Any], seed: int) -> None:
        self.factory = factory
        self.seed = seed

    def write(self, writer: BitWriter, payload: Any) -> None:
        payload.write_wire(writer)

    def read(self, reader: BitReader) -> Any:
        estimator = self.factory(self.seed)
        estimator.read_wire(reader)
        return estimator


