"""Party state machines: the building blocks of a protocol session.

A *party* is one side of a two-party protocol, written as a Python generator
that yields :class:`Send` and :class:`Receive` commands and finally returns a
:class:`PartyOutcome`.  The generator form makes the protocol's state machine
explicit -- every ``yield`` is a point where the party either hands a message
to the transport or blocks until one arrives -- while keeping the protocol
logic sequential and readable:

.. code-block:: python

    def alice(ctx):
        table = build_table(ctx)
        yield Send("set IBLT", table.size_bits, payload=table, codec=codec)
        return PartyOutcome(True)

    def bob(ctx):
        table = yield Receive(codec)
        ...
        return PartyOutcome(True, recovered=recovered)

Parties compose: a protocol that runs another protocol as a subroutine simply
``yield from``-s the sub-protocol's party generators (the four graph schemes
and the application protocols are built this way).

``Send.codec`` / ``Receive.codec`` name the :class:`~repro.protocols.wire`
codec able to turn the payload into bytes and back.  The in-memory transport
ignores codecs entirely (zero-copy, today's simulation behavior); the
serializing and socket transports use them to put real bytes on the wire.

When a party blocks on :class:`Receive` after its peer has already finished,
the session delivers the :data:`END_OF_SESSION` sentinel instead of a
payload.  Parties that wait for an optional reply (e.g. the repeated-doubling
initiators waiting for a retry request) treat it as "the peer is satisfied".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator


class _EndOfSession:
    """Sentinel delivered to a Receive when the peer has already finished."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "END_OF_SESSION"


#: Delivered to a blocked :class:`Receive` once the peer's generator returned.
END_OF_SESSION = _EndOfSession()


@dataclass(frozen=True)
class Send:
    """Yield this to transmit one message to the peer.

    Attributes
    ----------
    label:
        Human-readable payload description (recorded in the transcript).
    size_bits:
        The size charged in the transcript -- the protocol's analytical
        accounting, validated against the real encoding by
        :class:`~repro.protocols.transports.SerializingTransport`.
    payload:
        The in-memory payload object.
    codec:
        Wire codec able to serialize the payload (``None`` restricts the
        protocol to the in-memory transport).
    """

    label: str
    size_bits: int
    payload: Any = None
    codec: Any = None


@dataclass(frozen=True)
class Receive:
    """Yield this to block until the peer's next message arrives.

    The yield expression evaluates to the received payload (decoded through
    ``codec`` on serializing transports) or :data:`END_OF_SESSION`.
    """

    codec: Any = None


@dataclass
class PartyOutcome:
    """What one party's generator returns.

    The session combines both parties' outcomes into a single
    :class:`~repro.comm.result.ReconciliationResult`: overall success requires
    both parties to succeed, ``recovered`` is taken from the responder (the
    recovering side), and ``details`` dictionaries are merged.
    """

    success: bool = True
    recovered: Any = None
    details: dict[str, Any] = field(default_factory=dict)
    attempts: int = 1
    #: True when the party stopped because the peer finished without sending
    #: the message it was waiting for (END_OF_SESSION).  Composite parties use
    #: this to let the *peer's* failure details surface instead of their own.
    aborted: bool = False


#: The type of a party generator: yields Send/Receive commands, receives the
#: decoded payload (or END_OF_SESSION) back at each Receive, and returns a
#: PartyOutcome.  The send type is ``Any`` because only Receive yields get a
#: value; Send yields are resumed with ``None``.
PartyGenerator = Generator["Send | Receive", Any, PartyOutcome]

#: A pair of party generators ready to run against each other.
PartyPair = tuple[PartyGenerator, PartyGenerator]


#: Outcome a party returns when its peer ended the session mid-protocol.
def aborted_outcome() -> PartyOutcome:
    return PartyOutcome(False, aborted=True)
