"""The session loop: drives two party generators over a transport.

A :class:`Session` owns the scheduling of one two-party protocol execution:
it advances each party until it blocks on a :class:`~repro.protocols.party.Receive`
with no pending message, routes every :class:`~repro.protocols.party.Send`
through the transport (recording it in the shared transcript), and delivers
:data:`~repro.protocols.party.END_OF_SESSION` to a party still waiting after
its peer finished.  The result combines both parties' outcomes into the
library's standard :class:`~repro.comm.result.ReconciliationResult`.

The legacy ``reconcile_*`` free functions are thin wrappers over this loop
with an :class:`~repro.protocols.transports.InMemoryTransport`; the uniform
entry point :func:`repro.reconcile` adds transport selection on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.comm import ReconciliationResult, Transcript
from repro.errors import ReconciliationError
from repro.field.kernels import use_kernel
from repro.protocols.party import (
    END_OF_SESSION,
    PartyGenerator,
    PartyOutcome,
    Receive,
    Send,
)
from repro.protocols.transports import InMemoryTransport, Transport, outcome_from_stop


@dataclass
class SessionResult:
    """Both parties' outcomes plus the shared transcript."""

    alice: PartyOutcome
    bob: PartyOutcome
    transcript: Transcript

    def round_summary(self) -> list[dict[str, Any]]:
        """Per-round bits breakdown (``Transcript.round_summary``) for reports."""
        return self.transcript.round_summary()

    def to_reconciliation_result(self) -> ReconciliationResult:
        """Combine the outcomes the way the legacy functions reported them.

        Success requires both parties to succeed; ``recovered`` comes from
        the recovering party (bob); ``details`` are merged with bob's entries
        winning on key collisions; ``attempts`` is the larger of the two
        parties' counts (they agree in every shipped protocol).
        """
        success = self.alice.success and self.bob.success
        return ReconciliationResult(
            success,
            self.bob.recovered if success else None,
            self.transcript,
            attempts=max(self.alice.attempts, self.bob.attempts),
            details={**self.alice.details, **self.bob.details},
        )


class Session:
    """One protocol execution between an ``alice`` and a ``bob`` party.

    Parameters
    ----------
    alice, bob:
        Party generators (see :mod:`repro.protocols.party`).  By library
        convention ``alice`` is the party whose data is recovered and ``bob``
        the recovering party; either may send first.
    transport:
        A :class:`~repro.protocols.transports.Transport`; defaults to the
        zero-copy in-memory transport.
    transcript:
        Optional existing transcript to append to (protocols running as
        subroutines of a larger one reuse the caller's).
    field_kernel:
        Optional GF(p) kernel name scoped around the whole session (both
        parties), mirroring how the legacy entry points scoped it around
        their bodies.
    """

    _ROLES = ("alice", "bob")

    def __init__(
        self,
        alice: PartyGenerator,
        bob: PartyGenerator,
        transport: Transport | None = None,
        transcript: Transcript | None = None,
        field_kernel: str | None = None,
    ) -> None:
        self._parties = {"alice": alice, "bob": bob}
        self.transport = transport if transport is not None else InMemoryTransport()
        self.transcript = transcript if transcript is not None else Transcript()
        self.field_kernel = field_kernel

    def run(self) -> SessionResult:
        """Drive both parties to completion and return the combined result."""
        with use_kernel(self.field_kernel):
            return self._run()

    def _run(self) -> SessionResult:
        inbox: dict[str, deque] = {role: deque() for role in self._ROLES}
        outcomes: dict[str, PartyOutcome] = {}
        # Per-party scheduler state: ("new", None) before the first advance,
        # ("ready", value) when the generator can be resumed with ``value``,
        # ("blocked", receive_command) while waiting for a message.
        state: dict[str, tuple[str, Any]] = {role: ("new", None) for role in self._ROLES}

        def peer(role: str) -> str:
            return "bob" if role == "alice" else "alice"

        while len(outcomes) < len(self._ROLES):
            progressed = False
            for role in self._ROLES:
                if role in outcomes:
                    continue
                while role not in outcomes:
                    kind, value = state[role]
                    if kind == "blocked":
                        if inbox[role]:
                            inflight, send = inbox[role].popleft()
                            payload = self.transport.on_receive(inflight, value, send)
                            state[role] = ("ready", payload)
                            continue
                        if peer(role) in outcomes:
                            state[role] = ("ready", END_OF_SESSION)
                            continue
                        break  # genuinely waiting; let the peer run
                    try:
                        command = self._parties[role].send(
                            None if kind == "new" else value
                        )
                    except StopIteration as stop:
                        outcomes[role] = outcome_from_stop(
                            stop.value, who=f"party {role!r}"
                        )
                        progressed = True
                        break
                    progressed = True
                    if isinstance(command, Send):
                        inflight = self.transport.on_send(role, command)
                        self.transcript.send(
                            role, command.label, command.size_bits, command.payload
                        )
                        inbox[peer(role)].append((inflight, command))
                        state[role] = ("ready", None)
                    elif isinstance(command, Receive):
                        state[role] = ("blocked", command)
                    else:
                        raise ReconciliationError(
                            f"party {role!r} yielded {command!r}; expected Send or Receive"
                        )
            if not progressed:
                raise ReconciliationError(
                    "protocol deadlock: both parties are waiting for a message"
                )
        return SessionResult(outcomes["alice"], outcomes["bob"], self.transcript)


def run_session(
    alice: PartyGenerator,
    bob: PartyGenerator,
    transport: Transport | None = None,
    transcript: Transcript | None = None,
    field_kernel: str | None = None,
) -> ReconciliationResult:
    """Run a session and combine the outcomes (the legacy wrappers' one-liner)."""
    session = Session(
        alice, bob, transport=transport, transcript=transcript, field_kernel=field_kernel
    )
    return session.run().to_reconciliation_result()
