"""The protocol registry and the uniform :func:`reconcile` entry point.

Every protocol in the library registers a :class:`Protocol` descriptor here
(the same ``name -> class`` registry seam used for cell-store backends and
field kernels, :class:`repro.config._Registry`), carrying metadata -- input
kind, round count, known/unknown-``d`` support, paper reference -- and a
``build`` hook that turns ``(alice, bob, options)`` into the two party
generators.  ``repro.reconcile(alice, bob, protocol="multiround", ...)``
resolves a name, builds the parties, and runs them over any transport.
"""

from __future__ import annotations

from typing import Any

from repro.comm import ReconciliationResult, Transcript
from repro.config import _Registry
from repro.protocols.options import ReconcileOptions
from repro.protocols.party import PartyPair
from repro.protocols.session import run_session
from repro.protocols.transports import Transport

#: Environment variable naming the default protocol for :func:`reconcile`.
PROTOCOL_ENV_VAR = "REPRO_PROTOCOL"

_protocol_registry: _Registry = _Registry("protocol", PROTOCOL_ENV_VAR)


class Protocol:
    """Base class for protocol descriptors.

    Class attributes are the registry metadata; :meth:`build` constructs the
    two party generators for one execution.  Descriptors are stateless --
    everything execution-specific lives in the options object and the party
    closures.
    """

    #: Registry key (e.g. ``"multiround"``).
    name: str = ""
    #: What ``alice`` and ``bob`` are: ``"set"``, ``"set_of_sets"``,
    #: ``"graph"``, ``"forest"``, ``"table"``, ``"documents"`` or ``"kv"``.
    input_kind: str = ""
    #: Rounds of the known-``d`` variant.
    rounds_known: int = 1
    #: Rounds of the unknown-``d`` variant (``None`` when unsupported; the
    #: string ``"log d"`` marks the repeated-doubling variants).
    rounds_unknown: Any = None
    #: Whether ``difference_bound=None`` selects an unknown-``d`` variant.
    supports_unknown_d: bool = False
    #: One-line description for the generated protocol table.
    summary: str = ""
    #: Paper reference (theorem / corollary numbers).
    reference: str = ""
    #: Registry-seam plumbing (parity with backend/kernel descriptors).
    priority: int = 0

    @classmethod
    def available(cls) -> bool:
        return True

    @classmethod
    def supports(cls, key: Any) -> bool:
        return True

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        """Return ``(alice_party, bob_party)`` generators for one execution."""
        raise NotImplementedError

    @classmethod
    def rounds_label(cls) -> str:
        """Human-readable round count for the docs table."""
        if not cls.supports_unknown_d:
            return str(cls.rounds_known)
        return f"{cls.rounds_known} / {cls.rounds_unknown} (unknown d)"


def register_protocol(cls: type[Protocol]) -> type[Protocol]:
    """Register a protocol descriptor under ``cls.name`` (decorator-friendly)."""
    return _protocol_registry.register(cls)


def names() -> list[str]:
    """Sorted names of every registered protocol."""
    return _protocol_registry.names()


def get(name: str) -> type[Protocol]:
    """Look up a protocol descriptor by name (unknown names raise)."""
    return _protocol_registry.lookup(name)


def specs() -> list[type[Protocol]]:
    """Every registered descriptor, sorted by name."""
    return [get(name) for name in names()]


def registry_table_markdown() -> str:
    """The protocol table for README / docs, generated from the registry."""
    header = (
        "| protocol | input | rounds | unknown d | reference | summary |\n"
        "|---|---|---|---|---|---|\n"
    )
    rows = []
    for spec in specs():
        rows.append(
            f"| `{spec.name}` | {spec.input_kind} | {spec.rounds_label()} | "
            f"{'yes' if spec.supports_unknown_d else 'no'} | {spec.reference} | "
            f"{spec.summary} |"
        )
    return header + "\n".join(rows) + "\n"


def reconcile(
    alice: Any,
    bob: Any,
    *,
    protocol: str,
    options: ReconcileOptions | None = None,
    transport: Transport | None = None,
    transcript: Transcript | None = None,
    **overrides: Any,
) -> ReconciliationResult:
    """Run any registered protocol between ``alice`` and ``bob``.

    Parameters
    ----------
    alice, bob:
        The two parties' data; the required type depends on the protocol's
        ``input_kind`` (see :func:`specs` or docs/protocols.md).
    protocol:
        A registered protocol name (see :func:`names`).
    options:
        A :class:`~repro.protocols.options.ReconcileOptions`; keyword
        ``overrides`` are applied on top (so ``reconcile(a, b,
        protocol="ibf", seed=7, universe_size=100, difference_bound=4)``
        works without building an options object first).
    transport:
        A :class:`~repro.protocols.transports.Transport`; ``None`` uses the
        zero-copy in-memory transport.
    transcript:
        Optional existing transcript to append to.
    """
    spec = get(protocol)
    merged = (options if options is not None else ReconcileOptions()).merged(
        **overrides
    )
    alice_party, bob_party = spec.build(alice, bob, merged)
    return run_session(
        alice_party,
        bob_party,
        transport=transport,
        transcript=transcript,
        field_kernel=merged.field_kernel,
    )


# ---------------------------------------------------------------------------
# Descriptors for every protocol in the library
# ---------------------------------------------------------------------------


def _derived_max_child_size(alice: Any, bob: Any, options: ReconcileOptions) -> int:
    if options.max_child_size is not None:
        return options.max_child_size
    return max(1, alice.max_child_size, bob.max_child_size)


def _sets_of_sets_context(
    alice: Any, bob: Any, options: ReconcileOptions, **extra: Any
) -> Any:
    from repro.protocols.parties.setsofsets import context_for

    options.require("universe_size")
    return context_for(
        alice,
        bob,
        options.universe_size,
        options.seed,
        num_hashes=options.num_hashes,
        child_hash_bits=options.child_hash_bits,
        backend=options.backend,
        field_kernel=options.field_kernel,
        differing_children_bound=options.differing_children_bound,
        level_slack=options.level_slack,
        safety_factor=options.safety_factor,
        estimate_safety=options.estimate_safety,
        estimator_factory=options.estimator_factory,
        fallback_to_all_children=options.fallback_to_all_children,
        **extra,
    )


@register_protocol
class IBFProtocol(Protocol):
    name = "ibf"
    input_kind = "set"
    rounds_known = 1
    rounds_unknown = 2
    supports_unknown_d = True
    summary = "IBLT set reconciliation; estimator sizes the table when d is unknown"
    reference = "Cor 2.2 / Cor 3.2"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.setrecon import SetReconContext, ibf_parties

        options.require("universe_size")
        ctx = SetReconContext(
            options.universe_size,
            options.seed,
            options.num_hashes,
            options.backend,
            estimator_factory=options.estimator_factory,
            safety_factor=options.safety_factor,
        )
        return ibf_parties(alice, bob, options.difference_bound, ctx)


@register_protocol
class KVSyncProtocol(Protocol):
    name = "kv"
    input_kind = "kv"
    rounds_known = 2
    rounds_unknown = 3
    supports_unknown_d = True
    summary = "replicated-KV gossip: fingerprint set reconciliation plus a value fetch"
    reference = "Cor 2.2 / Cor 3.2 application"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.cluster.parties import kv_context, kv_parties

        ctx = kv_context(options)
        return kv_parties(alice, bob, options.difference_bound, ctx)


@register_protocol
class CPIProtocol(Protocol):
    name = "cpi"
    input_kind = "set"
    rounds_known = 1
    summary = "characteristic-polynomial reconciliation; certain whenever d holds"
    reference = "Thm 2.3"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.setrecon import cpi_parties

        options.require("universe_size", "difference_bound")
        return cpi_parties(
            alice,
            bob,
            options.difference_bound,
            options.universe_size,
            options.seed,
            field_kernel=options.field_kernel,
        )


@register_protocol
class NaiveProtocol(Protocol):
    name = "naive"
    input_kind = "set_of_sets"
    rounds_known = 1
    rounds_unknown = 2
    supports_unknown_d = True
    summary = "whole child sets as single items of a huge universe"
    reference = "Thm 3.3 / Thm 3.4"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.setsofsets import naive_parties

        ctx = _sets_of_sets_context(
            alice, bob, options,
            max_child_size=_derived_max_child_size(alice, bob, options),
        )
        return naive_parties(alice, bob, options.difference_bound, ctx)


@register_protocol
class IBLTOfIBLTsProtocol(Protocol):
    name = "iblt_of_iblts"
    input_kind = "set_of_sets"
    rounds_known = 1
    rounds_unknown = "2 log d"
    supports_unknown_d = True
    summary = "child IBLTs as parent-IBLT keys; repeated doubling when d is unknown"
    reference = "Thm 3.5 / Cor 3.6"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.setsofsets import iblt_of_iblts_parties

        ctx = _sets_of_sets_context(alice, bob, options)
        return iblt_of_iblts_parties(
            alice,
            bob,
            options.difference_bound,
            ctx,
            initial_bound=options.initial_bound,
            max_bound=options.max_bound,
        )


@register_protocol
class CascadingProtocol(Protocol):
    name = "cascading"
    input_kind = "set_of_sets"
    rounds_known = 1
    rounds_unknown = "2 log d"
    supports_unknown_d = True
    summary = "level cascade: cheap levels recover small-difference children first"
    reference = "Thm 3.7 / Cor 3.8"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.setsofsets import cascading_parties

        ctx = _sets_of_sets_context(
            alice, bob, options,
            max_child_size=_derived_max_child_size(alice, bob, options),
        )
        return cascading_parties(
            alice,
            bob,
            options.difference_bound,
            ctx,
            initial_bound=options.initial_bound,
            max_bound=options.max_bound,
        )


@register_protocol
class MultiroundProtocol(Protocol):
    name = "multiround"
    input_kind = "set_of_sets"
    rounds_known = 3
    rounds_unknown = 4
    supports_unknown_d = True
    summary = "estimate per-child differences, then size IBLT or CPI payloads exactly"
    reference = "Thm 3.9 / Thm 3.10"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.setsofsets import multiround_parties

        ctx = _sets_of_sets_context(
            alice, bob, options,
            max_child_size=_derived_max_child_size(alice, bob, options),
        )
        bound = options.difference_bound
        return multiround_parties(
            alice, bob, max(1, bound) if bound is not None else None, ctx
        )


@register_protocol
class DegreeOrderProtocol(Protocol):
    name = "degree_order"
    input_kind = "graph"
    rounds_known = 1
    summary = "degree-rank signatures align labelings, then edge reconciliation"
    reference = "Thm 5.2"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.graphs import degree_order_parties

        options.require("difference_bound", "num_top")
        return degree_order_parties(
            alice,
            bob,
            options.difference_bound,
            options.num_top,
            options.seed,
            backend=options.backend,
            child_hash_bits=options.child_hash_bits,
            num_hashes=options.num_hashes,
            level_slack=options.level_slack,
        )


@register_protocol
class DegreeNeighborhoodProtocol(Protocol):
    name = "degree_neighborhood"
    input_kind = "graph"
    rounds_known = 1
    summary = "neighbor-degree multiset signatures for sparser graphs"
    reference = "Thm 5.6"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.graphs import degree_neighborhood_parties

        options.require("difference_bound", "max_degree")
        return degree_neighborhood_parties(
            alice,
            bob,
            options.difference_bound,
            options.max_degree,
            options.seed,
            backend=options.backend,
            child_hash_bits=options.child_hash_bits,
            num_hashes=options.num_hashes,
            level_slack=options.level_slack,
        )


@register_protocol
class ForestProtocol(Protocol):
    name = "forest"
    input_kind = "forest"
    rounds_known = 1
    summary = "AHU signatures as multisets-of-multisets over the cascading protocol"
    reference = "Thm 6.1"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.graphs import forest_parties

        options.require("difference_bound")
        return forest_parties(
            alice,
            bob,
            options.difference_bound,
            options.max_depth,
            options.seed,
            signature_bits=options.signature_bits,
            backend=options.backend,
            child_hash_bits=options.child_hash_bits,
            num_hashes=options.num_hashes,
            level_slack=options.level_slack,
        )


@register_protocol
class LabeledGraphProtocol(Protocol):
    name = "labeled"
    input_kind = "graph"
    rounds_known = 1
    rounds_unknown = 2
    supports_unknown_d = True
    summary = "shared-labeling graphs reduce to labeled-edge set reconciliation"
    reference = "Section 4"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.graphs import labeled_parties

        return labeled_parties(
            alice,
            bob,
            options.difference_bound,
            options.seed,
            num_hashes=options.num_hashes,
            backend=options.backend,
            estimator_factory=options.estimator_factory,
            safety_factor=options.safety_factor,
        )


@register_protocol
class ExhaustiveProtocol(Protocol):
    name = "exhaustive"
    input_kind = "graph"
    rounds_known = 1
    summary = "O(d log n)-bit canonical-form fingerprint; brute-force decode"
    reference = "Thm 4.3"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.graphs import exhaustive_parties

        options.require("difference_bound")
        return exhaustive_parties(
            alice, bob, options.difference_bound, options.seed
        )


@register_protocol
class DatabaseProtocol(Protocol):
    name = "db"
    input_kind = "table"
    rounds_known = 1
    summary = "binary relational tables as sets of row-sets (cascading)"
    reference = "Section 1.1 application"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.applications import db_parties

        options.require("difference_bound")
        return db_parties(
            alice,
            bob,
            options.difference_bound,
            options.seed,
            backend=options.backend,
            child_hash_bits=options.child_hash_bits,
            num_hashes=options.num_hashes,
            level_slack=options.level_slack,
        )


@register_protocol
class DocumentsProtocol(Protocol):
    name = "documents"
    input_kind = "documents"
    rounds_known = 1
    summary = "shingle-signature sets per document (IBLT-of-IBLTs)"
    reference = "Thm 3.5 application"

    @classmethod
    def build(cls, alice: Any, bob: Any, options: ReconcileOptions) -> PartyPair:
        from repro.protocols.parties.applications import documents_parties

        options.require("difference_bound")
        return documents_parties(
            alice,
            bob,
            options.difference_bound,
            options.seed,
            backend=options.backend,
            child_hash_bits=options.child_hash_bits,
            num_hashes=options.num_hashes,
        )
