"""The consolidated options object shared by every protocol entry point.

Before this layer existed each ``reconcile_*`` free function threaded its own
ad-hoc keyword set (``seed``, ``backend=``, ``field_kernel=``, sizing knobs).
:class:`ReconcileOptions` consolidates them: one frozen dataclass carries
every cross-protocol parameter, and each protocol documents (in its
:class:`~repro.protocols.registry.Protocol` descriptor) which fields it
reads.  Fields irrelevant to a protocol are simply ignored.

``difference_bound=None`` selects a protocol's unknown-``d`` variant (the
estimator-based or repeated-doubling flavor); an integer selects the
known-``d`` variant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ParameterError


@dataclass(frozen=True)
class ReconcileOptions:
    """Every tunable a registered protocol can consume.

    Attributes
    ----------
    seed:
        Shared seed (public coins).  Every protocol uses it.
    difference_bound:
        The bound ``d`` on the difference (elements, edges, or flipped bits,
        depending on the protocol's input kind).  ``None`` runs the
        unknown-``d`` variant where the protocol supports one.
    universe_size:
        Element universe size ``u`` (set and set-of-sets protocols).
    max_child_size:
        Child-set size bound ``h`` (set-of-sets protocols and those built on
        them).  ``None`` lets protocols derive it from the inputs.
    differing_children_bound:
        Bound ``d_hat`` on differing children (set-of-sets protocols);
        ``None`` uses each protocol's default.
    backend:
        IBLT cell-store backend name (see :mod:`repro.config`).
    field_kernel:
        GF(p) field kernel name (see :mod:`repro.field.kernels`).
    num_hashes:
        Parent-IBLT hash count.
    child_hash_bits:
        Width of per-child identification hashes.
    safety_factor:
        Multiplier applied to estimator queries in the two-round
        unknown-``d`` protocols.
    estimate_safety:
        Multiplier applied to per-child difference estimates (multiround).
    level_slack:
        Cascading per-level capacity slack.
    initial_bound, max_bound:
        Repeated-doubling schedule (unknown-``d`` IBLT-of-IBLTs/cascading).
    estimator_factory:
        Factory ``seed -> SetDifferenceEstimator`` for estimator messages.
        ``None`` uses each protocol's default (which is also the only factory
        the wire codecs can serialize; custom factories restrict the session
        to the in-memory transport).
    num_top:
        Degree-ordering parameter ``h`` (``degree_order``); ``None`` derives
        a default from the vertex count.
    max_degree:
        Signature truncation threshold (``degree_neighborhood``); ``None``
        derives it from the graphs' maximum degree.
    max_depth:
        Depth bound ``sigma`` (``forest``); ``None`` uses the forests' actual
        depths.
    signature_bits:
        Signature hash width (``forest``).
    fallback_to_all_children:
        IBLT-of-IBLTs relaxed-model fallback (see Theorem 3.5 notes).
    """

    seed: int = 0
    difference_bound: int | None = None
    universe_size: int | None = None
    max_child_size: int | None = None
    differing_children_bound: int | None = None
    backend: str | None = None
    field_kernel: str | None = None
    num_hashes: int = 4
    child_hash_bits: int = 48
    safety_factor: float = 2.0
    estimate_safety: float = 2.0
    level_slack: float = 3.0
    initial_bound: int = 1
    max_bound: int | None = None
    estimator_factory: Callable[[int], Any] | None = None
    num_top: int | None = None
    max_degree: int | None = None
    max_depth: int | None = None
    signature_bits: int = 48
    fallback_to_all_children: bool = True

    def merged(self, **overrides: Any) -> "ReconcileOptions":
        """A copy with ``overrides`` applied (unknown names raise)."""
        known = {f.name for f in dataclasses.fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ParameterError(
                f"unknown reconcile option(s): {sorted(unknown)}; known: {sorted(known)}"
            )
        return dataclasses.replace(self, **overrides)

    def require(self, *names: str) -> None:
        """Raise :class:`ParameterError` unless every named field is set."""
        missing = [name for name in names if getattr(self, name) is None]
        if missing:
            raise ParameterError(
                f"protocol requires option(s) {missing} (got None); "
                "pass them via ReconcileOptions or keyword overrides"
            )
