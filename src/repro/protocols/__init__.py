"""First-class protocol sessions: parties, messages, transports, registry.

This package turns every protocol in the library into an explicit two-party
session:

* :mod:`~repro.protocols.party` -- party state machines (generators yielding
  :class:`Send` / :class:`Receive`) and their outcomes;
* :mod:`~repro.protocols.wire` -- codecs that serialize every message payload
  to bytes and back, tied to the transcript's bit accounting;
* :mod:`~repro.protocols.transports` -- the transport seam: zero-copy
  in-memory, serializing (accounting-verified), and real sockets;
* :mod:`~repro.protocols.session` -- the session loop driving two parties;
* :mod:`~repro.protocols.registry` -- the protocol registry and the uniform
  :func:`repro.reconcile` entry point;
* :mod:`~repro.protocols.parties` -- the party implementations of every
  protocol (set reconciliation, the four SSRK protocols, the graph and
  forest schemes, the applications).

See docs/protocols.md for the design and the back-compat story.
"""

from repro.protocols.options import ReconcileOptions
from repro.protocols.party import END_OF_SESSION, PartyOutcome, Receive, Send
from repro.protocols.registry import (
    Protocol,
    get,
    names,
    reconcile,
    register_protocol,
    registry_table_markdown,
    specs,
)
from repro.protocols.session import Session, SessionResult, run_session
from repro.protocols.transports import (
    FRAME_CONTROL,
    FRAME_FIN,
    FRAME_MESSAGE,
    Frame,
    InMemoryTransport,
    MessageMeasurement,
    SerializingTransport,
    SocketTransport,
    Transport,
    outcome_from_stop,
    pack_frame,
    read_frame,
    run_party,
)
from repro.protocols.wire import (
    NULL_CODEC,
    EstimatorCodec,
    NullCodec,
    PayloadCodec,
    TableCodec,
    TableWithHashCodec,
    WireAccountingError,
    WireError,
)

__all__ = [
    "ReconcileOptions",
    "END_OF_SESSION",
    "PartyOutcome",
    "Receive",
    "Send",
    "Protocol",
    "get",
    "names",
    "reconcile",
    "register_protocol",
    "registry_table_markdown",
    "specs",
    "Session",
    "SessionResult",
    "run_session",
    "FRAME_CONTROL",
    "FRAME_FIN",
    "FRAME_MESSAGE",
    "Frame",
    "InMemoryTransport",
    "MessageMeasurement",
    "SerializingTransport",
    "SocketTransport",
    "Transport",
    "outcome_from_stop",
    "pack_frame",
    "read_frame",
    "run_party",
    "NULL_CODEC",
    "EstimatorCodec",
    "NullCodec",
    "PayloadCodec",
    "TableCodec",
    "TableWithHashCodec",
    "WireAccountingError",
    "WireError",
]
