"""Random graph reconciliation via the degree-ordering scheme (Theorem 5.2).

One round, for graphs that are ``(h, d+1, 2d+1)``-separated (Definition 5.1,
which ``G(n, p)`` satisfies with high probability in the regime of
Theorem 5.3):

1.  Both parties sort their vertices by degree.  The top ``h`` vertices are
    identified by their degree rank; every other vertex's *signature* is the
    subset of the top ``h`` it is adjacent to.
2.  Alice sends (a) a set-of-sets reconciliation message for her signature
    set (each signature is a subset of ``[h]``; at most ``d`` total element
    changes separate the two signature sets) and (b) a labeled-edge
    reconciliation message for her graph under her canonical labeling.
3.  Bob recovers Alice's signatures, matches each of his vertices to the
    unique Alice signature within Hamming distance ``d`` (separation makes
    non-conforming signatures at least ``d+1`` away), adopts Alice's
    labeling, and finishes with plain labeled set reconciliation of the
    edges.

``recovered`` is Alice's graph expressed in the canonical labeling (i.e. a
graph isomorphic to hers that Bob can now hold); ``details`` carries the
conforming labeling Bob computed for his own vertex ids.
"""

from __future__ import annotations

from repro.comm import ReconciliationResult, Transcript
from repro.core.setrecon import reconcile_known_d
from repro.core.setsofsets import SetOfSets
from repro.core.setsofsets.cascading import reconcile_cascading
from repro.errors import ParameterError
from repro.graphs.graph import Graph
from repro.graphs.separation import degree_order_signatures
from repro.hashing import derive_seed


def canonical_labeling_from_signatures(
    top_vertices: list[int], signatures: dict[int, frozenset[int]]
) -> dict[int, int]:
    """Alice's canonical labeling: degree rank for the top, signature order below.

    Raises :class:`ParameterError` when two signatures coincide (the graph is
    then not separated and the scheme does not apply).
    """
    labeling = {vertex: rank for rank, vertex in enumerate(top_vertices)}
    ordered = sorted(signatures.items(), key=lambda item: sorted(item[1]))
    seen: set[frozenset[int]] = set()
    for offset, (vertex, signature) in enumerate(ordered):
        if signature in seen:
            raise ParameterError("duplicate vertex signatures: graph is not separated")
        seen.add(signature)
        labeling[vertex] = len(top_vertices) + offset
    return labeling


def _conforming_labels_for_bob(
    alice_signatures: SetOfSets,
    bob_signatures: dict[int, frozenset[int]],
    num_top: int,
    difference_bound: int,
) -> dict[int, int] | None:
    """Map each of Bob's non-top vertices to Alice's canonical label.

    A Bob vertex conforms to the *closest* Alice signature, which must lie
    within Hamming distance ``difference_bound`` (under full separation the
    closest signature is also the unique one within that distance); returns
    ``None`` when a vertex has no close-enough signature, the closest is
    tied, or two vertices claim the same signature.
    """
    alice_list = alice_signatures.sorted_children()
    label_of_signature = {
        signature: num_top + rank for rank, signature in enumerate(alice_list)
    }
    assigned: dict[int, int] = {}
    used: set[int] = set()
    for vertex, signature in bob_signatures.items():
        best = None
        best_distance = None
        tied = False
        for candidate in alice_list:
            distance = len(candidate ^ signature)
            if best_distance is None or distance < best_distance:
                best, best_distance, tied = candidate, distance, False
            elif distance == best_distance:
                tied = True
        if best is None or best_distance > difference_bound or tied:
            return None
        label = label_of_signature[best]
        if label in used:
            return None
        used.add(label)
        assigned[vertex] = label
    return assigned


def reconcile_degree_order(
    alice: Graph,
    bob: Graph,
    difference_bound: int,
    num_top: int,
    seed: int,
    *,
    signature_protocol=reconcile_cascading,
) -> ReconciliationResult:
    """One-round random graph reconciliation (Theorem 5.2).

    Parameters
    ----------
    alice, bob:
        The two unlabeled graphs (equal vertex counts).
    difference_bound:
        Bound ``d`` on the number of edge changes separating the graphs.
    num_top:
        The scheme parameter ``h`` (see Theorem 5.3 for the value that makes
        random graphs separated with high probability).
    seed:
        Shared seed.
    signature_protocol:
        Set-of-sets protocol used for the signatures (cascading by default);
        must follow the ``(alice, bob, d, u, h, seed, ...)`` signature.
    """
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("graph reconciliation requires equal vertex counts")
    if num_top <= 0 or num_top > alice.num_vertices:
        raise ParameterError("num_top must lie in (0, num_vertices]")
    difference_bound = max(1, difference_bound)
    transcript = Transcript()

    # ---- Alice's side: signatures, canonical labeling, canonical edge keys.
    alice_top, alice_signatures = degree_order_signatures(alice, num_top)
    try:
        alice_labeling = canonical_labeling_from_signatures(alice_top, alice_signatures)
    except ParameterError:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "alice-not-separated"}
        )
    alice_canonical = alice.relabel(
        [alice_labeling[v] for v in range(alice.num_vertices)]
    )
    alice_signature_set = SetOfSets(alice_signatures.values())
    if alice_signature_set.num_children != len(alice_signatures):
        return ReconciliationResult(
            False, None, transcript, details={"failure": "alice-not-separated"}
        )

    # ---- Bob's side: his own signatures (needed before protocol messages apply).
    bob_top, bob_signatures = degree_order_signatures(bob, num_top)
    bob_signature_set = SetOfSets(bob_signatures.values())

    # ---- Message part (a): reconcile the signature sets (set of sets, u = h).
    bits_before_signatures = transcript.total_bits
    signature_result = signature_protocol(
        alice_signature_set,
        bob_signature_set,
        difference_bound,
        num_top,
        num_top,
        derive_seed(seed, "degree-order-signatures"),
        transcript=transcript,
    )
    if not signature_result.success:
        return ReconciliationResult(
            False,
            None,
            transcript,
            details={"failure": "signature-reconciliation", **signature_result.details},
        )

    # ---- Bob aligns his labeling with Alice's.
    conforming = _conforming_labels_for_bob(
        signature_result.recovered, bob_signatures, num_top, difference_bound
    )
    if conforming is None:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "conforming-match"}
        )
    bob_labeling = {vertex: rank for rank, vertex in enumerate(bob_top)}
    bob_labeling.update(conforming)
    bob_canonical = bob.relabel([bob_labeling[v] for v in range(bob.num_vertices)])

    # ---- Message part (b): labeled-edge reconciliation under the shared labeling.
    signature_bits = transcript.total_bits - bits_before_signatures
    edge_result = reconcile_known_d(
        alice_canonical.edge_keys(),
        bob_canonical.edge_keys(),
        difference_bound,
        alice_canonical.edge_key_universe,
        derive_seed(seed, "degree-order-edges"),
        transcript=transcript,
    )
    if not edge_result.success:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "edge-reconciliation"}
        )
    recovered = Graph.from_edge_keys(alice.num_vertices, edge_result.recovered)
    return ReconciliationResult(
        True,
        recovered,
        transcript,
        details={
            "bob_canonical_labeling": bob_labeling,
            "num_top": num_top,
            "signature_bits": signature_bits,
            "edge_bits": transcript.total_bits - bits_before_signatures - signature_bits,
        },
    )
