"""Exhaustive (unbounded-computation) graph reconciliation (Theorem 4.3).

Alice sends a random evaluation of the polynomial whose coefficients are the
bits of her graph's canonical form.  Bob enumerates every graph within ``d``
edge changes of his own, canonicalises each, and adopts the first whose
polynomial evaluation matches.  Communication is the information-theoretic
optimum ``O(d log n)`` bits (Theorem 4.4 proves the matching lower bound);
computation is astronomically expensive, so the implementation is gated to
very small graphs and serves as the exact reference the efficient Section 5
schemes are compared against.
"""

from __future__ import annotations

from itertools import combinations

from repro.comm import ReconciliationResult
from repro.graphs.graph import Graph
from repro.graphs.isomorphism import (
    MAX_BRUTE_FORCE_VERTICES as MAX_BRUTE_FORCE_VERTICES,  # re-export: parties import it from here
    canonical_form_small,
)


def _canonical_evaluation(graph: Graph, point: int, prime: int) -> int:
    bits = canonical_form_small(graph)
    value = 0
    power = 1
    for bit in bits:
        if bit:
            value = (value + power) % prime
        power = (power * point) % prime
    return value


def _graphs_within_changes(graph: Graph, max_changes: int):
    """Yield every graph obtained by toggling at most ``max_changes`` edge slots."""
    n = graph.num_vertices
    slots = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for num_changes in range(max_changes + 1):
        for flipped in combinations(slots, num_changes):
            candidate = graph.copy()
            for u, v in flipped:
                candidate.toggle_edge(u, v)
            yield candidate


def reconcile_exhaustive(
    alice: Graph,
    bob: Graph,
    difference_bound: int,
    seed: int,
    *,
    prime: int | None = None,
) -> ReconciliationResult:
    """One-round, ``O(d log n)``-bit graph reconciliation (Theorem 4.3).

    ``recovered`` is a graph isomorphic to Alice's obtained by changing at
    most ``difference_bound`` edges of Bob's graph.  Only feasible for
    ``n <= 9`` and small ``d`` because Bob enumerates ``O(n^{2d})`` graphs and
    canonicalises each by brute force.  Thin wrapper over the party state
    machines of :mod:`repro.protocols.parties.graphs` (in-memory session).
    """
    from repro.protocols.parties.graphs import exhaustive_parties
    from repro.protocols.session import run_session

    alice_party, bob_party = exhaustive_parties(
        alice, bob, difference_bound, seed, prime=prime
    )
    return run_session(alice_party, bob_party)
