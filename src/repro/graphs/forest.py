"""Rooted forests and forest reconciliation (Section 6, Theorem 6.1).

A rooted forest is stored as a parent array.  The reconciliation scheme:

1.  Every vertex gets an AHU-style signature: a Theta(log n)-bit hash of the
    sorted signatures of its children (leaves hash a constant).  The
    signature identifies the isomorphism class of the subtree it roots.
2.  Every vertex contributes one *child multiset*: its own signature with a
    parent marker, together with the signatures of its children.  The
    collection of these multisets (a multiset of multisets, since isomorphic
    subtrees repeat) determines the forest up to isomorphism.
3.  A single edge edit only changes the signatures of the at most ``sigma``
    ancestors of the edited vertex (``sigma`` = maximum tree depth), so at
    most ``O(d * sigma)`` element changes separate the two collections; the
    multiset-of-multisets reconciliation of Section 3.4 transfers them.
4.  Bob reconstructs Alice's forest from the recovered collection: vertices
    are grouped by signature, and the edge signatures attached to a repeated
    signature divide evenly among its copies.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Sequence

from repro.comm import ReconciliationResult
from repro.core.setsofsets.cascading import reconcile_cascading
from repro.core.setsofsets.nested import (
    MultisetOfMultisets,
    reconcile_multisets_of_multisets,
)
from repro.errors import ParameterError
from repro.hashing import SeededHasher, derive_seed, int_to_bytes


class RootedForest:
    """A forest of rooted trees over vertices ``0 .. n-1`` stored as a parent array."""

    __slots__ = ("_parents",)

    def __init__(self, parents: Sequence[int | None]) -> None:
        self._parents = list(parents)
        n = len(self._parents)
        for vertex, parent in enumerate(self._parents):
            if parent is None:
                continue
            if not 0 <= parent < n or parent == vertex:
                raise ParameterError(f"invalid parent {parent} for vertex {vertex}")
        if self._has_cycle():
            raise ParameterError("parent array contains a cycle")

    def _has_cycle(self) -> bool:
        state = [0] * len(self._parents)  # 0 unvisited, 1 in progress, 2 done
        for start in range(len(self._parents)):
            vertex = start
            path = []
            while vertex is not None and state[vertex] == 0:
                state[vertex] = 1
                path.append(vertex)
                vertex = self._parents[vertex]
            if vertex is not None and state[vertex] == 1:
                return True
            for visited in path:
                state[visited] = 2
        return False

    # -- basic accessors -------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._parents)

    def parent(self, vertex: int) -> int | None:
        """Parent of ``vertex`` (``None`` for roots)."""
        return self._parents[vertex]

    def roots(self) -> list[int]:
        """All root vertices."""
        return [v for v, parent in enumerate(self._parents) if parent is None]

    def children_lists(self) -> list[list[int]]:
        """Children of every vertex, indexed by vertex id."""
        children: list[list[int]] = [[] for _ in range(self.num_vertices)]
        for vertex, parent in enumerate(self._parents):
            if parent is not None:
                children[parent].append(vertex)
        return children

    def children(self, vertex: int) -> list[int]:
        """Children of one vertex."""
        return [v for v, parent in enumerate(self._parents) if parent == vertex]

    def edges(self) -> list[tuple[int, int]]:
        """Directed edges as ``(parent, child)`` pairs."""
        return [
            (parent, vertex)
            for vertex, parent in enumerate(self._parents)
            if parent is not None
        ]

    def depths(self) -> list[int]:
        """Depth of every vertex (roots have depth 0)."""
        children = self.children_lists()
        depth = [0] * self.num_vertices
        queue = deque(self.roots())
        while queue:
            vertex = queue.popleft()
            for child in children[vertex]:
                depth[child] = depth[vertex] + 1
                queue.append(child)
        return depth

    @property
    def max_depth(self) -> int:
        """The paper's ``sigma``: maximum depth of any tree in the forest."""
        return max(self.depths(), default=0)

    def copy(self) -> "RootedForest":
        """Deep copy."""
        return RootedForest(list(self._parents))

    # -- the paper's edit operations ----------------------------------------------------

    def delete_edge(self, child: int) -> None:
        """Delete the edge above ``child``; the child becomes a new root."""
        if self._parents[child] is None:
            raise ParameterError(f"vertex {child} is already a root")
        self._parents[child] = None

    def insert_edge(self, parent: int, child: int) -> None:
        """Attach root ``child`` under ``parent`` (the paper's insertion rule)."""
        if self._parents[child] is not None:
            raise ParameterError("the child of an inserted edge must currently be a root")
        ancestor = parent
        while ancestor is not None:
            if ancestor == child:
                raise ParameterError("insertion would create a cycle")
            ancestor = self._parents[ancestor]
        self._parents[child] = parent

    # -- comparisons -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RootedForest):
            return NotImplemented
        return self._parents == other._parents

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RootedForest(n={self.num_vertices}, roots={len(self.roots())})"


# ---------------------------------------------------------------------------
# Canonical forms and signatures
# ---------------------------------------------------------------------------


def _bottom_up_order(forest: RootedForest) -> list[int]:
    """Vertices ordered so every child precedes its parent."""
    depth = forest.depths()
    return sorted(range(forest.num_vertices), key=lambda v: -depth[v])


def forest_canonical_form(forest: RootedForest) -> tuple[str, ...]:
    """Exact AHU canonical form: the sorted tuple of the root trees' labels.

    Two forests are isomorphic (as rooted forests) exactly when their
    canonical forms are equal.  Used by tests and by callers who want a
    collision-free certificate; the protocol itself uses hashed signatures.
    """
    children = forest.children_lists()
    labels = [""] * forest.num_vertices
    for vertex in _bottom_up_order(forest):
        child_labels = sorted(labels[child] for child in children[vertex])
        labels[vertex] = "(" + "".join(child_labels) + ")"
    return tuple(sorted(labels[root] for root in forest.roots()))


def ahu_signatures(forest: RootedForest, seed: int, signature_bits: int = 48) -> list[int]:
    """Hashed AHU signatures of every vertex (the paper's vertex signatures).

    ``signatures[v]`` is a ``signature_bits``-wide hash of the sorted list of
    the children's signatures (leaves hash the empty list), so it identifies
    the isomorphism class of the subtree rooted at ``v`` up to hash
    collisions.
    """
    hasher = SeededHasher(derive_seed(seed, "ahu-signature"), signature_bits)
    children = forest.children_lists()
    signatures = [0] * forest.num_vertices
    for vertex in _bottom_up_order(forest):
        child_signatures = sorted(signatures[child] for child in children[vertex])
        payload = b"".join(int_to_bytes(s, 8) for s in child_signatures)
        signatures[vertex] = hasher.hash_bytes(payload)
    return signatures


# ---------------------------------------------------------------------------
# Reconciliation (Theorem 6.1)
# ---------------------------------------------------------------------------


def _edge_multisets(
    forest: RootedForest, signatures: Sequence[int], signature_bits: int
) -> MultisetOfMultisets:
    """The per-vertex child multisets: tagged own signature plus child signatures."""
    parent_tag = 1 << signature_bits
    children = forest.children_lists()
    multisets: list[list[int]] = []
    for vertex in range(forest.num_vertices):
        entry = [parent_tag | signatures[vertex]]
        entry.extend(signatures[child] for child in children[vertex])
        multisets.append(entry)
    return MultisetOfMultisets(multisets)


def _reconstruct_forest(
    collection: MultisetOfMultisets, signature_bits: int
) -> RootedForest | None:
    """Rebuild a forest (up to isomorphism) from the per-vertex child multisets."""
    parent_tag = 1 << signature_bits
    vertex_count: Counter = Counter()
    children_of: dict[int, Counter] = {}
    child_usage: Counter = Counter()
    for multiset, multiplicity in collection:
        tagged = [value for value in multiset if value >= parent_tag]
        plain = [value for value in multiset if value < parent_tag]
        if len(tagged) != 1:
            return None
        signature = tagged[0] ^ parent_tag
        vertex_count[signature] += multiplicity
        child_counter = Counter(plain)
        existing = children_of.get(signature)
        if existing is not None and existing != child_counter:
            return None  # hash collision: two distinct subtrees share a signature
        children_of[signature] = child_counter
        for child_signature, count in child_counter.items():
            child_usage[child_signature] += count * multiplicity

    root_counts = {
        signature: vertex_count[signature] - child_usage.get(signature, 0)
        for signature in vertex_count
    }
    if any(count < 0 for count in root_counts.values()):
        return None
    total_vertices = sum(vertex_count.values())
    parents: list[int | None] = []

    def build(signature: int, parent_index: int | None) -> bool:
        stack: list[tuple[int, int | None]] = [(signature, parent_index)]
        while stack:
            sig, parent_idx = stack.pop()
            if len(parents) >= total_vertices:
                return False  # more vertices implied than the collection contains
            vertex_index = len(parents)
            parents.append(parent_idx)
            child_counter = children_of.get(sig)
            if child_counter is None:
                return False  # a child signature with no corresponding vertex entry
            for child_signature, count in child_counter.items():
                for _ in range(count):
                    stack.append((child_signature, vertex_index))
        return True

    for signature, count in sorted(root_counts.items()):
        for _ in range(count):
            if not build(signature, None):
                return None
    if len(parents) != total_vertices:
        return None
    return RootedForest(parents)


def forest_signature_multiset_hash(
    forest: RootedForest, seed: int, signature_bits: int = 48
) -> int:
    """Order-independent hash of the multiset of vertex signatures (verification aid)."""
    signatures = ahu_signatures(forest, seed, signature_bits)
    hasher = SeededHasher(derive_seed(seed, "forest-verify"), 64)
    payload = b"".join(int_to_bytes(s, 8) for s in sorted(signatures))
    return hasher.hash_bytes(payload)


def reconcile_forest(
    alice: RootedForest,
    bob: RootedForest,
    difference_bound: int,
    max_depth: int | None,
    seed: int,
    *,
    signature_bits: int = 48,
    protocol=reconcile_cascading,
) -> ReconciliationResult:
    """One-round forest reconciliation (Theorem 6.1).

    Parameters
    ----------
    alice, bob:
        The two rooted forests.
    difference_bound:
        Bound ``d`` on the number of directed edge insertions/deletions.
    max_depth:
        Bound ``sigma`` on the depth of any tree (both parties must agree);
        pass ``None`` to use the maximum of the two forests' actual depths
        (fine in simulations, where both sides are visible).
    seed:
        Shared seed.
    protocol:
        Underlying set-of-sets protocol for the encoded multisets.

    Returns
    -------
    ReconciliationResult
        ``recovered`` is a :class:`RootedForest` isomorphic to Alice's.
    """
    difference_bound = max(1, difference_bound)
    if max_depth is None:
        max_depth = max(alice.max_depth, bob.max_depth)
    max_depth = max(1, max_depth)

    alice_signatures = ahu_signatures(alice, seed, signature_bits)
    bob_signatures = ahu_signatures(bob, seed, signature_bits)
    alice_collection = _edge_multisets(alice, alice_signatures, signature_bits)
    bob_collection = _edge_multisets(bob, bob_signatures, signature_bits)

    # Each edge edit changes the signatures of at most ``sigma`` ancestors;
    # each changed signature perturbs two multisets (its own tagged entry and
    # its parent's child entry), and the edit itself moves one child entry.
    change_bound = difference_bound * (4 * max_depth + 2)
    universe = 1 << (signature_bits + 1)

    result = reconcile_multisets_of_multisets(
        alice_collection,
        bob_collection,
        change_bound,
        universe,
        derive_seed(seed, "forest-sos"),
        protocol=protocol,
    )
    if not result.success:
        return ReconciliationResult(
            False,
            None,
            result.transcript,
            details={"failure": "collection-reconciliation", **result.details},
        )
    reconstructed = _reconstruct_forest(result.recovered, signature_bits)
    if reconstructed is None:
        return ReconciliationResult(
            False, None, result.transcript, details={"failure": "reconstruction"}
        )
    # Local sanity check: the rebuilt forest must reproduce the recovered
    # collection (catches reconstruction bugs and signature collisions).
    rebuilt_signatures = ahu_signatures(reconstructed, seed, signature_bits)
    rebuilt_collection = _edge_multisets(reconstructed, rebuilt_signatures, signature_bits)
    verified = rebuilt_collection == result.recovered
    return ReconciliationResult(
        verified,
        reconstructed if verified else None,
        result.transcript,
        details={
            "max_depth": max_depth,
            "change_bound": change_bound,
            "failure": None if verified else "reconstruction-verification",
        },
    )
