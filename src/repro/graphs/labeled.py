"""Labeled graph reconciliation.

If the two graphs share a vertex labeling, reconciling them "is equivalent to
set reconciliation on their sets of labeled edges" (Section 4).  Every random
graph / forest scheme reduces to this after its signature step has aligned
the labelings.
"""

from __future__ import annotations

from repro.comm import ReconciliationResult, Transcript
from repro.core.setrecon import reconcile_known_d, reconcile_unknown_d
from repro.errors import ParameterError
from repro.graphs.graph import Graph


def reconcile_labeled_graphs(
    alice: Graph,
    bob: Graph,
    difference_bound: int | None,
    seed: int,
    *,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """Reconcile two graphs that share a vertex labeling.

    Parameters
    ----------
    alice, bob:
        Graphs on the same vertex set with the same labeling.
    difference_bound:
        Bound on the number of differing edges; pass ``None`` to use the
        two-round estimator-based protocol instead (Corollary 3.2).
    seed:
        Shared seed.

    Returns
    -------
    ReconciliationResult
        ``recovered`` is Alice's graph (as a :class:`Graph`).
    """
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("labeled reconciliation requires equal vertex counts")
    universe = alice.edge_key_universe
    if difference_bound is None:
        result = reconcile_unknown_d(alice.edge_keys(), bob.edge_keys(), universe, seed)
    else:
        result = reconcile_known_d(
            alice.edge_keys(),
            bob.edge_keys(),
            difference_bound,
            universe,
            seed,
            transcript=transcript,
        )
    if result.success:
        result.recovered = Graph.from_edge_keys(alice.num_vertices, result.recovered)
    return result
