"""Labeled graph reconciliation.

If the two graphs share a vertex labeling, reconciling them "is equivalent to
set reconciliation on their sets of labeled edges" (Section 4).  Every random
graph / forest scheme reduces to this after its signature step has aligned
the labelings.
"""

from __future__ import annotations

from repro.comm import ReconciliationResult, Transcript
from repro.graphs.graph import Graph


def reconcile_labeled_graphs(
    alice: Graph,
    bob: Graph,
    difference_bound: int | None,
    seed: int,
    *,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """Reconcile two graphs that share a vertex labeling.

    Thin wrapper over the party state machines of
    :mod:`repro.protocols.parties.graphs` (in-memory session).

    Parameters
    ----------
    alice, bob:
        Graphs on the same vertex set with the same labeling.
    difference_bound:
        Bound on the number of differing edges; pass ``None`` to use the
        two-round estimator-based protocol instead (Corollary 3.2).
    seed:
        Shared seed.

    Returns
    -------
    ReconciliationResult
        ``recovered`` is Alice's graph (as a :class:`Graph`).
    """
    from repro.protocols.parties.graphs import labeled_parties
    from repro.protocols.session import run_session

    alice_party, bob_party = labeled_parties(alice, bob, difference_bound, seed)
    return run_session(alice_party, bob_party, transcript=transcript)
