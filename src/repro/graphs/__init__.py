"""Graph substrate and graph reconciliation applications (Sections 4-6).

* :mod:`repro.graphs.graph` -- a light undirected simple-graph type with
  canonical edge encodings and networkx interoperability.
* :mod:`repro.graphs.random_graphs` -- G(n, p) generation and the paper's
  perturbation model (a base graph, each party holding a copy with at most
  ``d/2`` edge changes and a private relabeling).
* :mod:`repro.graphs.labeled` -- labeled-graph reconciliation (plain set
  reconciliation over edge keys), the final step of every scheme.
* :mod:`repro.graphs.isomorphism` -- the folklore fingerprint protocol for
  graph isomorphism (Theorem 4.1) and brute-force canonical forms for tiny
  graphs.
* :mod:`repro.graphs.exhaustive` -- unbounded-computation graph
  reconciliation (Theorem 4.3), usable for very small graphs.
* :mod:`repro.graphs.separation` -- the robustness properties of Section 5:
  (h, a, b)-separation (Definition 5.1) and degree-neighborhood disjointness
  (Definition 5.4).
* :mod:`repro.graphs.degree_order` -- random graph reconciliation with the
  degree-ordering signature scheme (Theorem 5.2).
* :mod:`repro.graphs.degree_neighborhood` -- random graph reconciliation
  with the degree-neighborhood signature scheme (Theorem 5.6).
* :mod:`repro.graphs.forest` -- rooted forests, AHU canonical labels and
  forest reconciliation (Theorem 6.1).
"""

from repro.graphs.graph import Graph
from repro.graphs.random_graphs import (
    gnp_random_graph,
    perturb_edges,
    random_permutation,
    reconciliation_pair,
)
from repro.graphs.labeled import reconcile_labeled_graphs
from repro.graphs.isomorphism import (
    canonical_form_small,
    are_isomorphic_small,
    isomorphism_fingerprint_protocol,
)
from repro.graphs.exhaustive import reconcile_exhaustive
from repro.graphs.separation import (
    degree_order_signatures,
    is_degree_separated,
    degree_neighborhood_signatures,
    neighborhood_disjointness,
)
from repro.graphs.degree_order import reconcile_degree_order
from repro.graphs.degree_neighborhood import reconcile_degree_neighborhood
from repro.graphs.forest import (
    RootedForest,
    ahu_signatures,
    forest_canonical_form,
    reconcile_forest,
)

__all__ = [
    "Graph",
    "gnp_random_graph",
    "perturb_edges",
    "random_permutation",
    "reconciliation_pair",
    "reconcile_labeled_graphs",
    "canonical_form_small",
    "are_isomorphic_small",
    "isomorphism_fingerprint_protocol",
    "reconcile_exhaustive",
    "degree_order_signatures",
    "is_degree_separated",
    "degree_neighborhood_signatures",
    "neighborhood_disjointness",
    "reconcile_degree_order",
    "reconcile_degree_neighborhood",
    "RootedForest",
    "ahu_signatures",
    "forest_canonical_form",
    "reconcile_forest",
]
