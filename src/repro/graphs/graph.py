"""A light undirected simple graph.

Vertices are the integers ``0 .. n-1``.  The class carries exactly the
operations the reconciliation schemes need: adjacency queries, degree
sequences, canonical integer edge keys (so that a labeled graph is just a
set of integers, ready for plain set reconciliation), relabeling, and
conversion to/from :mod:`networkx` for interoperability and testing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import ParameterError


class Graph:
    """An undirected simple graph on vertices ``0 .. num_vertices - 1``."""

    __slots__ = ("_num_vertices", "_adjacency", "_num_edges")

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if num_vertices < 0:
            raise ParameterError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- basic accessors -------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    def vertices(self) -> range:
        """Iterate the vertex ids."""
        return range(self._num_vertices)

    def neighbors(self, vertex: int) -> frozenset[int]:
        """The adjacency set of ``vertex``."""
        self._check_vertex(vertex)
        return frozenset(self._adjacency[vertex])

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``."""
        self._check_vertex(vertex)
        return len(self._adjacency[vertex])

    def degree_sequence(self) -> list[int]:
        """Degrees of all vertices, indexed by vertex id."""
        return [len(adj) for adj in self._adjacency]

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``{u, v}`` is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(min, max)`` pairs."""
        for u in range(self._num_vertices):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    # -- mutation --------------------------------------------------------------------

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._num_vertices:
            raise ParameterError(f"vertex {vertex} out of range [0, {self._num_vertices})")

    def add_edge(self, u: int, v: int) -> None:
        """Add the edge ``{u, v}`` (no-op if already present)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ParameterError("self-loops are not allowed in a simple graph")
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}`` (no-op if absent)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._adjacency[u]:
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
            self._num_edges -= 1

    def toggle_edge(self, u: int, v: int) -> None:
        """Flip the presence of the edge ``{u, v}`` (the paper's edge change)."""
        if self.has_edge(u, v):
            self.remove_edge(u, v)
        else:
            self.add_edge(u, v)

    def copy(self) -> "Graph":
        """Deep copy."""
        clone = Graph(self._num_vertices)
        clone._adjacency = [set(adj) for adj in self._adjacency]
        clone._num_edges = self._num_edges
        return clone

    # -- edge keys and relabeling -----------------------------------------------------

    def edge_key(self, u: int, v: int) -> int:
        """Canonical integer key of an (unordered) edge: ``min * n + max``."""
        self._check_vertex(u)
        self._check_vertex(v)
        low, high = (u, v) if u < v else (v, u)
        return low * self._num_vertices + high

    def edge_from_key(self, key: int) -> tuple[int, int]:
        """Inverse of :meth:`edge_key`."""
        return divmod(key, self._num_vertices)

    def edge_keys(self) -> set[int]:
        """All edges as canonical keys (the labeled-graph set representation)."""
        return {self.edge_key(u, v) for u, v in self.edges()}

    @property
    def edge_key_universe(self) -> int:
        """Upper bound (exclusive) on edge keys for this vertex count."""
        return self._num_vertices * self._num_vertices

    @classmethod
    def from_edge_keys(cls, num_vertices: int, keys: Iterable[int]) -> "Graph":
        """Rebuild a graph from canonical edge keys."""
        graph = cls(num_vertices)
        for key in keys:
            u, v = divmod(key, num_vertices)
            graph.add_edge(u, v)
        return graph

    def relabel(self, mapping: Sequence[int]) -> "Graph":
        """Return the graph with vertex ``v`` renamed to ``mapping[v]``.

        ``mapping`` must be a permutation of ``0 .. n-1``.
        """
        if sorted(mapping) != list(range(self._num_vertices)):
            raise ParameterError("mapping must be a permutation of the vertex ids")
        relabeled = Graph(self._num_vertices)
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled

    # -- comparisons and conversions ----------------------------------------------------

    def edge_difference(self, other: "Graph") -> int:
        """Number of edge slots on which the two (labeled) graphs disagree."""
        if other.num_vertices != self._num_vertices:
            raise ParameterError("graphs must have the same number of vertices")
        return len(self.edge_keys() ^ other.edge_keys())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and self._adjacency == other._adjacency
        )

    def __hash__(self) -> int:
        return hash((self._num_vertices, frozenset(self.edge_keys())))

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph`."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._num_vertices))
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert from a :class:`networkx.Graph` with integer-labelable nodes."""
        nodes = sorted(nx_graph.nodes())
        index = {node: position for position, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v in nx_graph.edges():
            if u != v:
                graph.add_edge(index[u], index[v])
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._num_vertices}, m={self._num_edges})"
