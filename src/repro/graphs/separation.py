"""Signature schemes and their robustness properties (Section 5).

Two vertex-signature schemes are used to align unlabeled random graphs:

* **Degree ordering** (Section 5.1, after Babai-Erdos-Selkow): sort vertices
  by degree; the ``h`` highest-degree vertices are identified by their degree
  rank, every other vertex by the subset of those ``h`` vertices it is
  adjacent to.  Robust when the graph is ``(h, a, b)``-separated
  (Definition 5.1).
* **Degree neighborhood** (Section 5.2, after Czajka-Pandurangan): a vertex's
  signature is the multiset of its neighbors' degrees, truncated at ``m``.
  Robust when all degree neighborhoods are ``(m, k)``-disjoint
  (Definition 5.4).

This module computes both kinds of signatures and checks both robustness
properties (used by Theorems 5.3 and 5.5's experiments).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ParameterError
from repro.graphs.graph import Graph


# ---------------------------------------------------------------------------
# Degree-ordering scheme (Definition 5.1)
# ---------------------------------------------------------------------------


def degree_sorted_vertices(graph: Graph) -> list[int]:
    """Vertices sorted by decreasing degree (ties broken by vertex id)."""
    return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))


def degree_order_signatures(
    graph: Graph, num_top: int
) -> tuple[list[int], dict[int, frozenset[int]]]:
    """Compute the degree-ordering signatures.

    Returns
    -------
    (top_vertices, signatures):
        ``top_vertices`` is the list of the ``num_top`` highest-degree
        vertices (in degree order).  ``signatures[v]``, for every other
        vertex ``v``, is the subset of ``{0, ..., num_top-1}`` recording which
        top vertices ``v`` is adjacent to (the paper's ``sig(v)`` read as a
        set rather than a bit string).
    """
    if num_top < 0 or num_top > graph.num_vertices:
        raise ParameterError("num_top must lie in [0, num_vertices]")
    ordered = degree_sorted_vertices(graph)
    top_vertices = ordered[:num_top]
    top_index = {vertex: index for index, vertex in enumerate(top_vertices)}
    signatures: dict[int, frozenset[int]] = {}
    for vertex in ordered[num_top:]:
        adjacency = graph.neighbors(vertex)
        signatures[vertex] = frozenset(
            top_index[top] for top in top_vertices if top in adjacency
        )
    return top_vertices, signatures


def is_degree_separated(graph: Graph, num_top: int, degree_gap: int, signature_gap: int) -> bool:
    """Check Definition 5.1: the graph is ``(h, a, b)``-separated.

    * the top ``h`` degrees are pairwise separated by at least ``a``;
    * the signatures of all remaining vertices are pairwise at Hamming
      distance at least ``b``.
    """
    ordered = degree_sorted_vertices(graph)
    degrees = [graph.degree(v) for v in ordered]
    for index in range(min(num_top, len(ordered) - 1)):
        if degrees[index] - degrees[index + 1] < degree_gap:
            return False
    _, signatures = degree_order_signatures(graph, num_top)
    signature_list = list(signatures.values())
    for i in range(len(signature_list)):
        for j in range(i + 1, len(signature_list)):
            if len(signature_list[i] ^ signature_list[j]) < signature_gap:
                return False
    return True


# ---------------------------------------------------------------------------
# Degree-neighborhood scheme (Definition 5.4)
# ---------------------------------------------------------------------------


def degree_neighborhood_signatures(graph: Graph, max_degree: int) -> dict[int, Counter]:
    """The multiset ``D_v`` of degrees (at most ``max_degree``) of ``v``'s neighbors."""
    if max_degree < 0:
        raise ParameterError("max_degree must be non-negative")
    degrees = graph.degree_sequence()
    signatures: dict[int, Counter] = {}
    for vertex in graph.vertices():
        counter: Counter = Counter()
        for neighbor in graph.neighbors(vertex):
            if degrees[neighbor] <= max_degree:
                counter[degrees[neighbor]] += 1
        signatures[vertex] = counter
    return signatures


def multiset_difference_size(first: Counter, second: Counter) -> int:
    """``|D_u xor D_v|`` for two degree multisets."""
    keys = set(first) | set(second)
    return sum(abs(first.get(key, 0) - second.get(key, 0)) for key in keys)


def neighborhood_disjointness(graph: Graph, max_degree: int) -> int:
    """The smallest pairwise multiset difference among all vertex signatures.

    The graph's degree neighborhoods are ``(max_degree, k)``-disjoint exactly
    when this value is at least ``k`` (Definition 5.4).  Returns a large
    sentinel for graphs with fewer than two vertices.
    """
    signatures = list(degree_neighborhood_signatures(graph, max_degree).values())
    if len(signatures) < 2:
        return graph.num_vertices * graph.num_vertices
    best = None
    for i in range(len(signatures)):
        for j in range(i + 1, len(signatures)):
            difference = multiset_difference_size(signatures[i], signatures[j])
            if best is None or difference < best:
                best = difference
                if best == 0:
                    return 0
    return best if best is not None else 0


def are_neighborhoods_disjoint(graph: Graph, max_degree: int, min_difference: int) -> bool:
    """Check Definition 5.4: all degree neighborhoods ``(max_degree, min_difference)``-disjoint."""
    return neighborhood_disjointness(graph, max_degree) >= min_difference
