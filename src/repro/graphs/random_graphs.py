"""Erdos-Renyi graphs and the paper's perturbation model (Section 5).

The random-graph reconciliation model: a base graph ``G ~ G(n, p)`` is drawn,
then Alice and Bob each obtain a copy perturbed by at most ``d/2`` edge
changes; additionally Alice's copy is relabeled by a private permutation (the
graphs are *unlabeled*, so nothing ties her vertex ids to Bob's).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

try:  # NumPy accelerates G(n, p) sampling; a pure fallback keeps it optional.
    import numpy as np
except ImportError:  # pragma: no cover - exercised on NumPy-free installs
    np = None

from repro.errors import ParameterError
from repro.graphs.graph import Graph


def gnp_random_graph(num_vertices: int, edge_probability: float, seed: int) -> Graph:
    """Draw a graph from G(n, p).

    Edge indicators are generated with numpy over the upper triangle, which
    keeps generation fast enough for the few-thousand-vertex graphs used in
    the benchmarks.  Without NumPy a pure-Python fallback samples the same
    distribution; it is deterministic per seed but draws from a *different*
    random stream, so the concrete realization for a given seed depends on
    whether NumPy is installed.  Both parties of a simulation share one
    process, so reconciliation is unaffected -- only workload realizations
    recorded across differently-equipped machines would differ.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ParameterError("edge_probability must lie in [0, 1]")
    graph = Graph(num_vertices)
    if num_vertices < 2 or edge_probability == 0.0:
        return graph
    if np is not None:
        rng = np.random.default_rng(seed)
        row_indices, col_indices = np.triu_indices(num_vertices, k=1)
        mask = rng.random(row_indices.shape[0]) < edge_probability
        for u, v in zip(row_indices[mask], col_indices[mask]):
            graph.add_edge(int(u), int(v))
        return graph
    fallback_rng = random.Random(seed)
    for u in range(num_vertices - 1):
        for v in range(u + 1, num_vertices):
            if fallback_rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def perturb_edges(graph: Graph, num_changes: int, rng: random.Random) -> Graph:
    """Return a copy of ``graph`` with ``num_changes`` random edge toggles.

    Each change picks a uniformly random vertex pair and flips it, exactly
    the "edge additions or deletions" of the paper's model.  Changes always
    touch distinct pairs, so the edit distance to the input is exactly
    ``num_changes``.
    """
    if num_changes < 0:
        raise ParameterError("num_changes must be non-negative")
    n = graph.num_vertices
    max_pairs = n * (n - 1) // 2
    if num_changes > max_pairs:
        raise ParameterError("more changes requested than vertex pairs available")
    perturbed = graph.copy()
    touched: set[tuple[int, int]] = set()
    while len(touched) < num_changes:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in touched:
            continue
        touched.add(pair)
        perturbed.toggle_edge(*pair)
    return perturbed


def random_permutation(num_vertices: int, rng: random.Random) -> list[int]:
    """A uniformly random permutation of the vertex ids."""
    permutation = list(range(num_vertices))
    rng.shuffle(permutation)
    return permutation


@dataclass(frozen=True)
class ReconciliationPair:
    """A generated random-graph reconciliation instance.

    Attributes
    ----------
    base:
        The common base graph ``G``.
    alice, bob:
        The two perturbed copies; Alice's is additionally relabeled by
        ``alice_permutation`` (``alice_permutation[v]`` is Alice's name for
        base vertex ``v``).
    alice_permutation:
        The hidden relabeling (available to tests, never to the protocols).
    num_changes:
        Total number of edge changes applied across both copies (``<= d``).
    """

    base: Graph
    alice: Graph
    bob: Graph
    alice_permutation: list[int]
    num_changes: int


def reconciliation_pair(
    num_vertices: int,
    edge_probability: float,
    total_changes: int,
    seed: int,
    *,
    relabel_alice: bool = True,
    base: Graph | None = None,
) -> ReconciliationPair:
    """Generate the paper's Section 5 instance: base graph plus two perturbed copies."""
    rng = random.Random(seed)
    if base is None:
        base = gnp_random_graph(num_vertices, edge_probability, seed)
    alice_changes = total_changes // 2
    bob_changes = total_changes - alice_changes
    alice = perturb_edges(base, alice_changes, rng)
    bob = perturb_edges(base, bob_changes, rng)
    permutation = (
        random_permutation(num_vertices, rng) if relabel_alice else list(range(num_vertices))
    )
    alice = alice.relabel(permutation)
    return ReconciliationPair(base, alice, bob, permutation, total_changes)


def planted_separated_graph(
    num_vertices: int,
    edge_probability: float,
    num_top: int,
    degree_gap: int,
    seed: int,
) -> Graph:
    """A G(n, p) graph with ``num_top`` planted high-degree anchor vertices.

    Theorem 5.3 guarantees (h, d+1, 2d+1)-separation only for asymptotically
    large ``n``; at laptop scale vanilla G(n, p) essentially never has the
    required degree gaps among its top vertices.  This generator *plants* the
    property (documented as a substitution in DESIGN.md): it draws G(n, p)
    and then adds random extra edges at the first ``num_top`` vertices until
    their degrees form a descending staircase with consecutive gaps of at
    least ``degree_gap`` above the rest of the graph.  The remainder of the
    graph -- and therefore the non-top signatures the degree-ordering scheme
    relies on -- stays an unmodified random graph.
    """
    if num_top <= 0 or num_top > num_vertices:
        raise ParameterError("num_top must lie in (0, num_vertices]")
    if degree_gap <= 0:
        raise ParameterError("degree_gap must be positive")
    graph = gnp_random_graph(num_vertices, edge_probability, seed)
    rng = random.Random(seed ^ 0x9E3779B9)
    non_anchors = list(range(num_top, num_vertices))
    # Boosting an anchor also raises the degree of the non-anchor endpoints,
    # which can push a non-anchor back into the top h; iterate until the
    # staircase of anchor degrees sits stably above every non-anchor.
    for _ in range(8):
        non_anchor_max = max(
            (graph.degree(v) for v in non_anchors), default=0
        )
        satisfied = True
        required = non_anchor_max
        for rank in range(num_top - 1, -1, -1):
            required += degree_gap
            if graph.degree(rank) < required:
                satisfied = False
                rng.shuffle(non_anchors)
                for other in non_anchors:
                    if graph.degree(rank) >= required:
                        break
                    if not graph.has_edge(rank, other):
                        graph.add_edge(rank, other)
            required = max(required, graph.degree(rank))
        if satisfied:
            break
    # Verify the staircase was actually achievable: with too many anchors or
    # too large a gap an anchor runs out of non-anchor endpoints to attach to
    # and the separation silently degrades, which would make downstream
    # protocol failures hard to interpret.
    ordered_degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
    achieved = all(
        ordered_degrees[rank] - ordered_degrees[rank + 1] >= degree_gap
        for rank in range(num_top)
    )
    if not achieved:
        raise ParameterError(
            "could not plant the requested degree staircase; "
            "increase num_vertices or decrease num_top / degree_gap"
        )
    return graph
