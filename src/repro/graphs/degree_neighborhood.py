"""Random graph reconciliation via the degree-neighborhood scheme (Theorem 5.6).

For sparser graphs than the degree-ordering scheme can handle, a vertex's
signature is ``D_v``: the multiset of the degrees (at most ``max_degree``,
the paper's ``pn``) of its neighbors.  When all degree neighborhoods are
``(pn, 4d+1)``-disjoint (Definition 5.4; Theorem 5.5 shows this holds with
high probability for the stated range of ``p`` and ``d``), conforming
vertices have signatures within multiset distance ``2d`` and non-conforming
ones are at least ``2d+1`` apart, so Bob can again adopt Alice's labeling
after reconciling the *set of multisets* of signatures.

Costs roughly ``O(pn)`` times more communication than the degree-ordering
scheme (every edge change perturbs ~``2pn`` signatures by one element), which
is exactly the trade-off Theorem 5.6 describes.
"""

from __future__ import annotations

from collections import Counter

from repro.comm import ReconciliationResult, Transcript
from repro.core.setrecon import reconcile_known_d
from repro.core.setrecon.multiset import decode_multiset, encode_multiset
from repro.core.setsofsets import SetOfSets
from repro.core.setsofsets.cascading import reconcile_cascading
from repro.errors import ParameterError
from repro.graphs.graph import Graph
from repro.graphs.separation import (
    degree_neighborhood_signatures,
    multiset_difference_size,
)
from repro.hashing import derive_seed


def _encode_signature(signature: Counter, multiplicity_bound: int) -> frozenset[int]:
    """Encode a degree multiset as a set of (degree, count) pair keys."""
    return frozenset(encode_multiset(dict(signature), multiplicity_bound))


def _decode_signature(encoded: frozenset[int], multiplicity_bound: int) -> Counter:
    return Counter(decode_multiset(set(encoded), multiplicity_bound))


def signature_change_bound(difference_bound: int, max_degree: int) -> int:
    """Bound on encoded-element changes caused by ``difference_bound`` edge changes.

    Each edge change alters the degree of its two endpoints; every neighbor
    of an endpoint sees one degree value replaced in its signature (at most 4
    encoded ``(degree, count)`` pairs), and the endpoints themselves gain or
    lose one entry.  With endpoint degrees capped at roughly ``max_degree``
    this is at most ``8 * max_degree + 8`` encoded changes per edge change.
    """
    return max(1, difference_bound) * (8 * max(1, max_degree) + 8)


def reconcile_degree_neighborhood(
    alice: Graph,
    bob: Graph,
    difference_bound: int,
    max_degree: int,
    seed: int,
    *,
    signature_protocol=reconcile_cascading,
    signature_bound: int | None = None,
) -> ReconciliationResult:
    """One-round reconciliation with degree-neighborhood signatures (Theorem 5.6).

    Parameters
    ----------
    alice, bob:
        The two unlabeled graphs (equal vertex counts).
    difference_bound:
        Bound ``d`` on the number of differing edges.
    max_degree:
        The signature truncation threshold (the paper's ``pn``); both parties
        must use the same value.
    signature_bound:
        Optional override of the total encoded-change bound passed to the
        set-of-sets protocol (defaults to :func:`signature_change_bound`).
    """
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("graph reconciliation requires equal vertex counts")
    difference_bound = max(1, difference_bound)
    transcript = Transcript()
    multiplicity_bound = alice.num_vertices  # a degree value occurs at most n times
    if signature_bound is None:
        signature_bound = signature_change_bound(difference_bound, max_degree)

    # ---- Alice: signatures, canonical labeling by signature order, edges.
    alice_signatures = degree_neighborhood_signatures(alice, max_degree)
    alice_encoded = {
        vertex: _encode_signature(signature, multiplicity_bound)
        for vertex, signature in alice_signatures.items()
    }
    if len(set(alice_encoded.values())) != alice.num_vertices:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "alice-not-disjoint"}
        )
    alice_order = sorted(alice_encoded, key=lambda v: sorted(alice_encoded[v]))
    alice_labeling = {vertex: rank for rank, vertex in enumerate(alice_order)}
    alice_canonical = alice.relabel(
        [alice_labeling[v] for v in range(alice.num_vertices)]
    )
    alice_signature_set = SetOfSets(alice_encoded.values())

    # ---- Bob: his signatures.
    bob_signatures = degree_neighborhood_signatures(bob, max_degree)
    bob_encoded = {
        vertex: _encode_signature(signature, multiplicity_bound)
        for vertex, signature in bob_signatures.items()
    }
    bob_signature_set = SetOfSets(bob_encoded.values())

    pair_universe = (alice.num_vertices + 1) * (multiplicity_bound + 1) + multiplicity_bound + 1
    max_child = max(
        1, alice_signature_set.max_child_size, bob_signature_set.max_child_size
    )

    # ---- Message part (a): reconcile the signature multisets.
    bits_before_signatures = transcript.total_bits
    signature_result = signature_protocol(
        alice_signature_set,
        bob_signature_set,
        signature_bound,
        pair_universe,
        max_child,
        derive_seed(seed, "degree-neighborhood-signatures"),
        transcript=transcript,
    )
    if not signature_result.success:
        return ReconciliationResult(
            False,
            None,
            transcript,
            details={"failure": "signature-reconciliation", **signature_result.details},
        )

    # ---- Bob aligns with Alice's labeling via closest signatures.
    alice_children = signature_result.recovered.sorted_children()
    if len(alice_children) != alice.num_vertices:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "signature-count"}
        )
    alice_counters = [_decode_signature(child, multiplicity_bound) for child in alice_children]
    label_of_rank = {rank: rank for rank in range(len(alice_children))}
    bob_labeling: dict[int, int] = {}
    used: set[int] = set()
    for vertex in bob.vertices():
        bob_counter = bob_signatures[vertex]
        best_rank = None
        best_distance = None
        for rank, alice_counter in enumerate(alice_counters):
            distance = multiset_difference_size(bob_counter, alice_counter)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_rank = rank
        if best_rank is None or best_distance > 2 * difference_bound or best_rank in used:
            return ReconciliationResult(
                False, None, transcript, details={"failure": "conforming-match"}
            )
        used.add(best_rank)
        bob_labeling[vertex] = label_of_rank[best_rank]
    bob_canonical = bob.relabel([bob_labeling[v] for v in range(bob.num_vertices)])

    # ---- Message part (b): labeled-edge reconciliation.
    signature_bits = transcript.total_bits - bits_before_signatures
    edge_result = reconcile_known_d(
        alice_canonical.edge_keys(),
        bob_canonical.edge_keys(),
        difference_bound,
        alice_canonical.edge_key_universe,
        derive_seed(seed, "degree-neighborhood-edges"),
        transcript=transcript,
    )
    if not edge_result.success:
        return ReconciliationResult(
            False, None, transcript, details={"failure": "edge-reconciliation"}
        )
    recovered = Graph.from_edge_keys(alice.num_vertices, edge_result.recovered)
    return ReconciliationResult(
        True,
        recovered,
        transcript,
        details={
            "bob_canonical_labeling": bob_labeling,
            "max_degree": max_degree,
            "signature_bits": signature_bits,
            "edge_bits": transcript.total_bits - bits_before_signatures - signature_bits,
        },
    )
