"""Graph isomorphism: brute-force canonical forms and the fingerprint protocol.

Theorem 4.1 gives a folklore ``O(log q)``-bit protocol for unlabeled graph
isomorphism with unbounded computation: both parties canonicalise their
graphs, interpret the canonical adjacency bits as polynomial coefficients
over ``Z_q``, and compare a random evaluation (Schwartz-Zippel).  Canonical
forms are computed by brute force over vertex permutations, so this is only
feasible for small graphs; it exists here as the reference point for the
exhaustive reconciliation protocol (Theorem 4.3) and to demonstrate Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import permutations

from repro.comm import ReconciliationResult, Transcript
from repro.comm.sizing import bits_for_value
from repro.errors import ParameterError
from repro.field.prime import prime_at_least
from repro.graphs.graph import Graph

#: Brute-force canonicalisation enumerates n! permutations; keep n small.
MAX_BRUTE_FORCE_VERTICES = 9


def _adjacency_bits(graph: Graph, ordering: tuple[int, ...]) -> tuple[int, ...]:
    """Upper-triangle adjacency bits of the graph under a vertex ordering."""
    bits = []
    n = graph.num_vertices
    for i in range(n):
        for j in range(i + 1, n):
            bits.append(1 if graph.has_edge(ordering[i], ordering[j]) else 0)
    return tuple(bits)


def canonical_form_small(graph: Graph) -> tuple[int, ...]:
    """Lexicographically smallest adjacency bit string over all orderings.

    This realises the paper's "first graph in increasing lexicographical
    order which is isomorphic to G" for graphs small enough to enumerate.
    """
    n = graph.num_vertices
    if n > MAX_BRUTE_FORCE_VERTICES:
        raise ParameterError(
            f"brute-force canonicalisation is limited to {MAX_BRUTE_FORCE_VERTICES} vertices"
        )
    if n == 0:
        return ()
    return min(_adjacency_bits(graph, ordering) for ordering in permutations(range(n)))


def are_isomorphic_small(first: Graph, second: Graph) -> bool:
    """Exact isomorphism test for small graphs (shared canonical form)."""
    if first.num_vertices != second.num_vertices:
        return False
    return canonical_form_small(first) == canonical_form_small(second)


@dataclass(frozen=True)
class FingerprintMessage:
    """Alice's message in the Theorem 4.1 protocol: the point and the evaluation."""

    point: int
    evaluation: int
    prime: int

    @property
    def size_bits(self) -> int:
        return 2 * bits_for_value(self.prime - 1)


def _canonical_polynomial_evaluation(graph: Graph, point: int, prime: int) -> int:
    """Evaluate the canonical-form polynomial ``sum bits[i] * point^i`` in Z_q."""
    bits = canonical_form_small(graph)
    value = 0
    power = 1
    for bit in bits:
        if bit:
            value = (value + power) % prime
        power = (power * point) % prime
    return value


def isomorphism_fingerprint_protocol(
    alice: Graph,
    bob: Graph,
    seed: int,
    *,
    prime: int | None = None,
) -> ReconciliationResult:
    """The one-message isomorphism protocol of Theorem 4.1.

    ``recovered`` is the boolean verdict (True = isomorphic).  The failure
    probability is ``O(n^2 / q)``; the default prime is ``>= n^4`` so the
    verdict is wrong with probability at most ``O(1/n^2)``.
    """
    if alice.num_vertices != bob.num_vertices:
        raise ParameterError("isomorphism protocol requires equal vertex counts")
    n = alice.num_vertices
    if prime is None:
        prime = prime_at_least(max(17, n**4))
    transcript = Transcript()
    rng = random.Random(seed)
    point = rng.randrange(prime)
    message = FingerprintMessage(
        point, _canonical_polynomial_evaluation(alice, point, prime), prime
    )
    transcript.send("alice", "canonical fingerprint", message.size_bits, payload=message)
    bob_evaluation = _canonical_polynomial_evaluation(bob, message.point, prime)
    verdict = bob_evaluation == message.evaluation
    return ReconciliationResult(True, verdict, transcript, details={"prime": prime})


def one_edge_extensions(graph: Graph) -> list[Graph]:
    """All graphs obtained by adding exactly one missing edge."""
    extensions = []
    for u in range(graph.num_vertices):
        for v in range(u + 1, graph.num_vertices):
            if not graph.has_edge(u, v):
                extended = graph.copy()
                extended.add_edge(u, v)
                extensions.append(extended)
    return extensions


def merge_ambiguity_classes(first: Graph, second: Graph) -> list[tuple[int, ...]]:
    """Isomorphism classes reachable by adding one edge to *each* graph.

    Returns the distinct canonical forms ``C`` such that there exist single
    edges ``e1, e2`` with ``first + e1`` isomorphic to ``second + e2`` and of
    canonical form ``C``.  Figure 1's point is exactly that this list can
    contain more than one class (the "union" of two unlabeled graphs is not
    well defined) even when no single-sided edge addition makes the graphs
    isomorphic.
    """
    second_forms = {canonical_form_small(extended) for extended in one_edge_extensions(second)}
    classes = set()
    for extended in one_edge_extensions(first):
        form = canonical_form_small(extended)
        if form in second_forms:
            classes.add(form)
    return sorted(classes)


def single_sided_merge_possible(first: Graph, second: Graph) -> bool:
    """True if adding one edge to only one of the graphs makes them isomorphic."""
    second_form = canonical_form_small(second)
    if any(canonical_form_small(g) == second_form for g in one_edge_extensions(first)):
        return True
    first_form = canonical_form_small(first)
    return any(canonical_form_small(g) == first_form for g in one_edge_extensions(second))


def figure1_graphs() -> tuple[Graph, Graph]:
    """A pair of graphs reproducing the phenomenon illustrated by Figure 1.

    Adding a single edge to each graph can produce isomorphic results in more
    than one mutually non-isomorphic way, while no single-sided edge addition
    makes the graphs isomorphic -- i.e. the "union" of two unlabeled graphs
    is not well defined (verified by the test suite via
    :func:`merge_ambiguity_classes` and :func:`single_sided_merge_possible`).
    """
    # A triangle with a pendant edge plus an isolated vertex ("paw" + K1) ...
    paw = Graph(5, [(0, 1), (0, 2), (0, 3), (1, 2)])
    # ... and a "chair": a star on {0,1,2,3} with one extra edge hanging off a leaf.
    chair = Graph(5, [(0, 1), (0, 2), (0, 3), (1, 4)])
    return paw, chair
