"""Reconciling two document collections and classifying their documents.

The paper sketches the application: "we would expect most documents to be
exact duplicates, some to be near-duplicates, and some to be fresh,
non-duplicate documents.  We could use the approach of Theorem 3.5 to find
near-duplicate and non-duplicate documents."  Here the signature sets are
reconciled with a set-of-sets protocol, after which
:func:`classify_documents` labels each of Alice's documents as an exact
duplicate, a near duplicate, or fresh relative to Bob's collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.comm import ReconciliationResult
from repro.core.setsofsets.iblt_of_iblts import reconcile_iblt_of_iblts
from repro.documents.collection import DocumentCollection
from repro.errors import ParameterError
from repro.hashing import derive_seed


def reconcile_collections(
    alice: DocumentCollection,
    bob: DocumentCollection,
    shingle_difference_bound: int,
    seed: int,
    *,
    protocol: Callable[..., ReconciliationResult] | None = None,
    backend: str | None = None,
    **protocol_kwargs,
) -> ReconciliationResult:
    """One-way reconciliation of the signature sets of two collections.

    ``recovered`` is the :class:`~repro.core.setsofsets.SetOfSets` of Alice's
    document signatures, from which Bob learns exactly which signatures he is
    missing (he can then request the corresponding documents out of band).

    Parameters
    ----------
    shingle_difference_bound:
        Bound on the total number of differing shingle hashes across matched
        document pairs (the paper's ``d``).
    protocol:
        Set-of-sets protocol; defaults to the IBLT-of-IBLTs protocol of
        Theorem 3.5, which the paper singles out for this application.  Must
        follow the ``(alice, bob, d, u, seed, ...)`` convention of
        :func:`reconcile_iblt_of_iblts`.
    backend:
        IBLT cell-store backend forwarded to the protocol when set (see
        :mod:`repro.config`).
    """
    if backend is not None:
        protocol_kwargs = dict(protocol_kwargs, backend=backend)
    if (
        alice.shingle_size != bob.shingle_size
        or alice.seed != bob.seed
        or alice.hash_bits != bob.hash_bits
    ):
        raise ParameterError("collections must share shingling parameters")
    if protocol is None:
        protocol = reconcile_iblt_of_iblts
    return protocol(
        alice.to_sets_of_sets(),
        bob.to_sets_of_sets(),
        max(1, shingle_difference_bound),
        alice.universe_size,
        derive_seed(seed, "documents"),
        **protocol_kwargs,
    )


@dataclass
class DocumentClassification:
    """Outcome of comparing Alice's documents against Bob's collection."""

    exact_duplicates: list[int] = field(default_factory=list)
    near_duplicates: list[int] = field(default_factory=list)
    fresh: list[int] = field(default_factory=list)


def classify_documents(
    alice: DocumentCollection,
    bob: DocumentCollection,
    *,
    near_duplicate_threshold: float = 0.5,
) -> DocumentClassification:
    """Classify each of Alice's documents relative to Bob's collection.

    A document is an *exact duplicate* if some Bob document has an identical
    signature, a *near duplicate* if the best Jaccard similarity between
    signatures is at least ``near_duplicate_threshold``, and *fresh*
    otherwise.  Indices refer to ``alice.documents``.
    """
    if not 0.0 < near_duplicate_threshold <= 1.0:
        raise ParameterError("near_duplicate_threshold must be in (0, 1]")
    bob_signatures = bob.signatures
    bob_exact = set(bob_signatures)
    result = DocumentClassification()
    for index, signature in enumerate(alice.signatures):
        if signature in bob_exact:
            result.exact_duplicates.append(index)
            continue
        best = 0.0
        for other in bob_signatures:
            union = len(signature | other)
            if union == 0:
                continue
            best = max(best, len(signature & other) / union)
        if best >= near_duplicate_threshold:
            result.near_duplicates.append(index)
        else:
            result.fresh.append(index)
    return result
