"""Document-collection reconciliation via shingling (Section 1 application).

A document is summarised by the set of hashes of its ``k``-word shingles
(Broder's resemblance technique, reference [9] of the paper); a collection of
documents is then a set of sets.  When two collections share mostly-identical
documents with a few edited ones, the shingle sets differ in only a few
elements, so set-of-sets reconciliation transfers the collection difference
cheaply and identifies which documents are exact duplicates, near duplicates,
or entirely fresh.
"""

from repro.documents.shingle import shingle_hashes, document_signature
from repro.documents.collection import DocumentCollection
from repro.documents.reconcile import reconcile_collections, classify_documents

__all__ = [
    "shingle_hashes",
    "document_signature",
    "DocumentCollection",
    "reconcile_collections",
    "classify_documents",
]
