"""A collection of documents and its set-of-sets representation."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.setsofsets import SetOfSets
from repro.documents.shingle import document_signature
from repro.errors import ParameterError


class DocumentCollection:
    """A collection of text documents with shared shingling parameters.

    Parameters
    ----------
    documents:
        The document texts.
    shingle_size:
        Number of words per shingle (both parties must agree).
    seed:
        Shared seed for the shingle hashes.
    signature_size:
        Optional cap on the number of shingle hashes kept per document.
    hash_bits:
        Width of shingle hashes (defines the element universe ``2**hash_bits``).
    """

    def __init__(
        self,
        documents: Iterable[str],
        shingle_size: int = 3,
        seed: int = 0,
        *,
        signature_size: int | None = None,
        hash_bits: int = 48,
    ) -> None:
        if hash_bits <= 0:
            raise ParameterError("hash_bits must be positive")
        self.shingle_size = shingle_size
        self.seed = seed
        self.signature_size = signature_size
        self.hash_bits = hash_bits
        self._documents = list(documents)
        self._signatures = [
            document_signature(
                text,
                shingle_size,
                seed,
                signature_size=signature_size,
                hash_bits=hash_bits,
            )
            for text in self._documents
        ]

    # -- accessors -------------------------------------------------------------------

    @property
    def documents(self) -> list[str]:
        """The document texts."""
        return list(self._documents)

    @property
    def signatures(self) -> list[frozenset[int]]:
        """Per-document shingle signatures, parallel to :attr:`documents`."""
        return list(self._signatures)

    @property
    def universe_size(self) -> int:
        """Size of the shingle-hash universe."""
        return 1 << self.hash_bits

    @property
    def max_signature_size(self) -> int:
        """Largest signature (the paper's ``h``)."""
        return max((len(sig) for sig in self._signatures), default=0)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[str]:
        return iter(self._documents)

    # -- conversions -----------------------------------------------------------------

    def to_sets_of_sets(self) -> SetOfSets:
        """The set of document signatures (duplicates collapse, as in a set)."""
        return SetOfSets(sig for sig in self._signatures if sig)

    def signature_of(self, text: str) -> frozenset[int]:
        """Signature of an arbitrary document under this collection's parameters."""
        return document_signature(
            text,
            self.shingle_size,
            self.seed,
            signature_size=self.signature_size,
            hash_bits=self.hash_bits,
        )
