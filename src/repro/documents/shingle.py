"""Shingling: turning documents into sets of hashed word windows."""

from __future__ import annotations

import re

from repro.errors import ParameterError
from repro.hashing import SeededHasher, derive_seed

_WORD_PATTERN = re.compile(r"[\w']+")


def tokenize(text: str) -> list[str]:
    """Lower-cased word tokens of a document."""
    return [token.lower() for token in _WORD_PATTERN.findall(text)]


def shingle_hashes(
    text: str, shingle_size: int, seed: int, hash_bits: int = 48
) -> set[int]:
    """Hashes of all ``shingle_size``-word windows of the document.

    Documents shorter than one shingle are hashed as a single (short) window
    so every non-empty document has a non-empty representation.
    """
    if shingle_size <= 0:
        raise ParameterError("shingle_size must be positive")
    tokens = tokenize(text)
    hasher = SeededHasher(derive_seed(seed, "shingle"), hash_bits)
    if not tokens:
        return set()
    if len(tokens) < shingle_size:
        return {hasher.hash_bytes(" ".join(tokens).encode("utf-8"))}
    hashes = set()
    for start in range(len(tokens) - shingle_size + 1):
        window = " ".join(tokens[start : start + shingle_size])
        hashes.add(hasher.hash_bytes(window.encode("utf-8")))
    return hashes


def document_signature(
    text: str,
    shingle_size: int,
    seed: int,
    *,
    signature_size: int | None = None,
    hash_bits: int = 48,
) -> frozenset[int]:
    """The document's signature: its shingle hashes, optionally subsampled.

    Following Broder, ``signature_size`` keeps only the numerically smallest
    hashes (min-wise subsampling), trading a little sensitivity for a much
    smaller child set; ``None`` keeps every shingle.
    """
    hashes = shingle_hashes(text, shingle_size, seed, hash_bits)
    if signature_size is None or len(hashes) <= signature_size:
        return frozenset(hashes)
    if signature_size <= 0:
        raise ParameterError("signature_size must be positive")
    return frozenset(sorted(hashes)[:signature_size])
