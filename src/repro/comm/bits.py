"""MSB-first bit packing used by the wire-serialization layer.

Protocols charge communication in *bits* (:mod:`repro.comm.sizing`); the
wire codecs of :mod:`repro.protocols.wire` must therefore pack payloads at
bit granularity, otherwise per-field byte rounding would make real encodings
exceed the charged sizes.  :class:`BitWriter` and :class:`BitReader` provide
the minimal MSB-first bit stream both sides share.

A stream is always padded with zero bits up to a byte boundary.  Codecs that
end with a single variable-width integer field exploit this: the field is
written in exactly ``bits_for_value(value)`` bits (so its first bit is 1
unless the value is 0) and read back with :meth:`BitReader.read_tail_int`,
which consumes every remaining bit -- the zero padding is absorbed because it
can never flip the value.
"""

from __future__ import annotations

from repro.errors import ParameterError


class BitWriter:
    """Accumulates an MSB-first bit stream and renders it to bytes."""

    def __init__(self) -> None:
        self._acc = 0
        self._bits = 0

    def write(self, value: int, bits: int) -> None:
        """Append ``value`` as a ``bits``-wide big-endian field."""
        if bits < 0:
            raise ParameterError("bits must be non-negative")
        if value < 0 or (bits < value.bit_length()):
            raise ParameterError(f"value {value} does not fit in {bits} bits")
        self._acc = (self._acc << bits) | value
        self._bits += bits

    def write_signed(self, value: int, bits: int) -> None:
        """Append ``value`` in two's complement."""
        if bits <= 0:
            raise ParameterError("bits must be positive")
        half = 1 << (bits - 1)
        if not -half <= value < half:
            raise ParameterError(f"value {value} does not fit in {bits} signed bits")
        self.write(value % (1 << bits), bits)

    def write_tail(self, value: int) -> None:
        """Append a variable-width integer as the *final* field of the stream.

        The value is written in ``bits_for_value(value)`` bits, left-padded
        with zeros up to the byte boundary the stream will end on.  The byte
        length is identical to writing the bare ``bits_for_value(value)``
        bits (the padding lands in the final partial byte either way), but
        the left padding makes :meth:`BitReader.read_tail_int` unambiguous --
        right padding would multiply the value by a power of two.
        """
        if value < 0:
            raise ParameterError("tail values must be non-negative")
        bits = max(1, value.bit_length())
        pad = (-(self._bits + bits)) % 8
        self.write(value, bits + pad)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (before byte padding)."""
        return self._bits

    def getvalue(self) -> bytes:
        """The stream as bytes, zero-padded up to a byte boundary."""
        pad = (-self._bits) % 8
        total = self._bits + pad
        return (self._acc << pad).to_bytes(total // 8, "big")


class BitReader:
    """Reads MSB-first bit fields out of a byte string."""

    def __init__(self, data: bytes) -> None:
        self._acc = int.from_bytes(data, "big")
        self._total = len(data) * 8
        self._pos = 0

    @property
    def remaining_bits(self) -> int:
        """Bits left in the stream (including any trailing byte padding)."""
        return self._total - self._pos

    def read(self, bits: int) -> int:
        """Read a ``bits``-wide big-endian field."""
        if bits < 0:
            raise ParameterError("bits must be non-negative")
        if bits > self.remaining_bits:
            raise ParameterError("bit stream exhausted")
        self._pos += bits
        return (self._acc >> (self._total - self._pos)) & ((1 << bits) - 1)

    def read_signed(self, bits: int) -> int:
        """Read a two's complement field."""
        if bits <= 0:
            raise ParameterError("bits must be positive")
        raw = self.read(bits)
        half = 1 << (bits - 1)
        return raw - (1 << bits) if raw >= half else raw

    def read_tail_int(self) -> int:
        """Consume every remaining bit and return it as one integer.

        Inverse of :meth:`BitWriter.write_tail`: the final field was written
        left-padded up to the byte boundary, so the remaining bits *are* the
        value.  Only valid for the final field of a stream.
        """
        remaining = self.remaining_bits
        self._pos = self._total
        return self._acc & ((1 << remaining) - 1) if remaining else 0
