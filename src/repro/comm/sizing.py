"""Helpers for computing serialized payload sizes in bits.

Protocols account communication analytically: a payload's cost is the number
of bits its canonical serialization would occupy.  These helpers centralise
the arithmetic so that every protocol charges identically for the same kind
of payload.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

#: The word size ``w`` of the paper's word-RAM model, used where a payload is
#: naturally "a constant number of words" (counters, field elements, seeds).
WORD_BITS = 64


def bits_for_value(max_value: int) -> int:
    """Bits needed to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ParameterError("max_value must be non-negative")
    return max(1, max_value.bit_length())


def bits_for_count(count: int, bits_each: int) -> int:
    """Total bits for ``count`` items of ``bits_each`` bits."""
    if count < 0 or bits_each < 0:
        raise ParameterError("count and bits_each must be non-negative")
    return count * bits_each


def bits_for_elements(count: int, universe_size: int) -> int:
    """Bits for ``count`` raw elements drawn from a universe of ``universe_size``.

    This is the ``O(d log u)`` term appearing throughout the paper's bounds.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    return bits_for_count(count, bits_for_value(universe_size - 1))


def bits_for_field_elements(count: int, modulus: int) -> int:
    """Bits for ``count`` elements of GF(modulus)."""
    return bits_for_count(count, bits_for_value(modulus - 1))


def bits_for_naive_child_set(universe_size: int, max_child_size: int) -> int:
    """Width of a child set treated as a single item (naive protocol).

    Theorem 3.3 charges ``O(min(h log u, u))`` bits per differing child set:
    a child set of at most ``h`` elements can be sent either as a packed
    element list or as a ``u``-bit characteristic bitmap, whichever is
    smaller.  The packed list actually occupies ``h * (ceil(log2 u) + 1)``
    bits -- each slot carries a presence bit on top of the element, so sets
    of different sizes stay distinct -- and this function charges exactly
    what :class:`repro.core.setsofsets.encoding.ExplicitChildScheme` packs
    (``ExplicitChildScheme(u, h).key_bits``), so the naive protocol's
    analytic accounting and its wire format agree bit for bit.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if max_child_size < 0:
        raise ParameterError("max_child_size must be non-negative")
    if max_child_size == 0:
        return 1
    explicit = max_child_size * (bits_for_value(universe_size - 1) + 1)
    bitmap = universe_size
    return min(explicit, bitmap)


def ceil_log2(value: int) -> int:
    """``ceil(log2(value))`` with ``ceil_log2(1) == 0``."""
    if value <= 0:
        raise ParameterError("value must be positive")
    return max(0, math.ceil(math.log2(value)))
