"""Message transcripts with bit and round accounting.

A :class:`Transcript` is created per protocol execution.  Each call to
:meth:`Transcript.send` records one message; the round counter increases
whenever the direction of communication flips (the paper's convention: a one
round protocol is a single message from Alice to Bob, the four round protocol
of Theorem 3.10 alternates Bob/Alice/Bob/Alice... four direction switches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParameterError


@dataclass(frozen=True)
class Message:
    """One transmitted message.

    Attributes
    ----------
    sender:
        Conventionally ``"alice"`` or ``"bob"``.
    round_index:
        1-based round the message belongs to.
    label:
        Human-readable description of the payload (shown in benchmark
        breakdowns, e.g. ``"parent IBLT"`` or ``"difference estimators"``).
    size_bits:
        Serialized size charged for the message.
    payload:
        The in-memory payload object handed to the receiving party.  Not
        serialized (the simulation passes Python objects), but its size was.
    """

    sender: str
    round_index: int
    label: str
    size_bits: int
    payload: Any = None


@dataclass
class Transcript:
    """Accumulates the messages exchanged during one protocol execution."""

    messages: list[Message] = field(default_factory=list)

    def send(self, sender: str, label: str, size_bits: int, payload: Any = None) -> Message:
        """Record a message from ``sender`` and return it."""
        if size_bits < 0:
            raise ParameterError("size_bits must be non-negative")
        if not sender:
            raise ParameterError("sender must be a non-empty string")
        if not label:
            raise ParameterError("label must be a non-empty string")
        if self.messages and self.messages[-1].sender == sender:
            round_index = self.messages[-1].round_index
        else:
            round_index = (self.messages[-1].round_index + 1) if self.messages else 1
        message = Message(sender, round_index, label, size_bits, payload)
        self.messages.append(message)
        return message

    @property
    def total_bits(self) -> int:
        """Total bits across every message."""
        return sum(message.size_bits for message in self.messages)

    @property
    def num_rounds(self) -> int:
        """Number of rounds used (0 if nothing was sent)."""
        return self.messages[-1].round_index if self.messages else 0

    def bits_by_sender(self) -> dict[str, int]:
        """Total bits sent per party."""
        totals: dict[str, int] = {}
        for message in self.messages:
            totals[message.sender] = totals.get(message.sender, 0) + message.size_bits
        return totals

    def bits_by_label(self) -> dict[str, int]:
        """Total bits per payload label (for benchmark breakdowns)."""
        totals: dict[str, int] = {}
        for message in self.messages:
            totals[message.label] = totals.get(message.label, 0) + message.size_bits
        return totals

    def by_sender(self) -> dict[str, list[Message]]:
        """The messages grouped by sender, in transmission order."""
        grouped: dict[str, list[Message]] = {}
        for message in self.messages:
            grouped.setdefault(message.sender, []).append(message)
        return grouped

    def bits_by_round(self) -> dict[int, int]:
        """Total bits per round (the per-round breakdown of ``total_bits``)."""
        totals: dict[int, int] = {}
        for message in self.messages:
            totals[message.round_index] = (
                totals.get(message.round_index, 0) + message.size_bits
            )
        return totals

    def round_summary(self) -> list[dict[str, object]]:
        """One row per round -- ``{round, sender, bits, messages}`` -- ready for
        :func:`repro.bench.reporting.format_table` and the session layer's
        reporting hooks."""
        rows: list[dict[str, object]] = []
        for message in self.messages:
            if rows and rows[-1]["round"] == message.round_index:
                rows[-1]["bits"] = int(rows[-1]["bits"]) + message.size_bits
                rows[-1]["messages"] = int(rows[-1]["messages"]) + 1
            else:
                rows.append(
                    {
                        "round": message.round_index,
                        "sender": message.sender,
                        "bits": message.size_bits,
                        "messages": 1,
                    }
                )
        return rows

    def extend(self, other: "Transcript") -> None:
        """Append another transcript's messages (re-numbering rounds)."""
        for message in other.messages:
            self.send(message.sender, message.label, message.size_bits, message.payload)

    def __len__(self) -> int:
        return len(self.messages)
