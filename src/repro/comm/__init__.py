"""Instrumented communication layer.

Every protocol in this library runs both parties in-process and exchanges
messages through a :class:`~repro.comm.transcript.Transcript`, which records
who sent what, how many bits it costs on the wire, and how many communication
rounds were used (the paper counts a "round" as one direction switch; a one
round protocol is a single Alice-to-Bob message).

The recorded bit counts are the quantities that the paper's communication
bounds (Theorems 3.3-3.10, 5.2, 5.6, 6.1) talk about, and they are what the
benchmark harness reports.
"""

from repro.comm.transcript import Message, Transcript
from repro.comm.result import ReconciliationResult
from repro.comm.sizing import WORD_BITS, bits_for_count, bits_for_elements

__all__ = [
    "Message",
    "Transcript",
    "ReconciliationResult",
    "WORD_BITS",
    "bits_for_count",
    "bits_for_elements",
]
