"""Common result object returned by every reconciliation protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.comm.transcript import Transcript


@dataclass
class ReconciliationResult:
    """Outcome of running a reconciliation protocol.

    Attributes
    ----------
    success:
        True if the receiving party verifiably recovered the sender's data.
        Probabilistic failures (an IBLT that did not peel, a signature that
        could not be matched) set this to False instead of raising.
    recovered:
        The reconstructed object (a set, a set of sets, a graph, ...);
        ``None`` when ``success`` is False and nothing useful was recovered.
    transcript:
        The full message transcript with per-message bit accounting.
    attempts:
        Number of protocol attempts used (greater than 1 for the repeated
        doubling variants of Corollaries 3.6 and 3.8).
    details:
        Free-form protocol-specific diagnostics (e.g. the difference bound
        that finally succeeded, per-phase timings).
    """

    success: bool
    recovered: Any
    transcript: Transcript
    attempts: int = 1
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Total communication in bits."""
        return self.transcript.total_bits

    @property
    def num_rounds(self) -> int:
        """Number of communication rounds."""
        return self.transcript.num_rounds

    def __bool__(self) -> bool:
        return self.success
