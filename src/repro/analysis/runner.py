"""File discovery and pass orchestration."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.allowlist import exempt
from repro.analysis.base import AnalysisPass, Finding, SourceFile
from repro.analysis.passes import (
    AsyncioPass,
    DeterminismPass,
    ExceptionHygienePass,
    ProtocolPartyPass,
    RegistryDocsPass,
    TypingCompletenessPass,
    UnusedImportPass,
)

#: Directories never descended into (tool caches, VCS state, build output).
SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".hypothesis",
        ".pytest_cache",
        ".benchmarks",
        ".mypy_cache",
        ".ruff_cache",
        ".venv",
        "venv",
        "build",
        "dist",
        ".eggs",
        ".claude",
    }
)


def all_passes() -> list[AnalysisPass]:
    """One instance of every pass family, in reporting order."""
    return [
        ProtocolPartyPass(),
        AsyncioPass(),
        DeterminismPass(),
        RegistryDocsPass(),
        ExceptionHygienePass(),
        UnusedImportPass(),
        TypingCompletenessPass(),
    ]


def find_root(start: Path | None = None) -> Path:
    """The repo root: the nearest ancestor holding pyproject.toml or src/repro.

    Falls back to the package's own checkout when the working directory is
    unrelated (running ``python -m repro.analysis`` from anywhere).
    """
    candidates: list[Path] = []
    if start is not None:
        candidates.append(start.resolve())
    candidates.append(Path.cwd())
    # src/repro/analysis/runner.py -> repo root is four levels up.
    candidates.append(Path(__file__).resolve().parents[3])
    for candidate in candidates:
        for ancestor in (candidate, *candidate.parents):
            if (ancestor / "src" / "repro").is_dir() or (
                ancestor / "pyproject.toml"
            ).is_file():
                return ancestor
    return Path.cwd()


def discover_files(root: Path, subpaths: Sequence[str] = ()) -> list[SourceFile]:
    """Parse every analyzable ``.py`` file under ``root`` (or ``subpaths``)."""
    bases = [root / sub for sub in subpaths] if subpaths else [root]
    seen: set[Path] = set()
    sources: list[SourceFile] = []
    for base in bases:
        if base.is_file():
            paths: Iterable[Path] = [base]
        else:
            paths = sorted(base.rglob("*.py"))
        for path in paths:
            resolved = path.resolve()
            if resolved in seen:
                continue
            relative = resolved.relative_to(root.resolve())
            if any(part in SKIP_DIRS for part in relative.parts):
                continue
            seen.add(resolved)
            sources.append(SourceFile.load(resolved, root.resolve()))
    return sources


def analyze(
    root: Path,
    sources: Sequence[SourceFile] | None = None,
    passes: Sequence[AnalysisPass] | None = None,
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the passes and return unsuppressed findings, sorted by location."""
    if sources is None:
        sources = discover_files(root)
    if passes is None:
        passes = all_passes()
    wanted = set(select) if select else None
    by_path = {source.relpath: source for source in sources}
    findings: list[Finding] = []
    for analysis_pass in passes:
        if wanted is not None and not (
            analysis_pass.name in wanted or set(analysis_pass.rules) & wanted
        ):
            continue
        raw: list[Finding] = []
        for source in sources:
            if analysis_pass.interested_in(source):
                raw.extend(analysis_pass.check_file(source))
        raw.extend(analysis_pass.check_project(root, sources))
        for finding in raw:
            if wanted is not None and finding.rule not in wanted and (
                analysis_pass.name not in wanted
            ):
                continue
            if exempt(finding.path, finding.rule):
                continue
            source = by_path.get(finding.path)
            if source is not None and source.allowed(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings
