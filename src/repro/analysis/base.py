"""Framework core: findings, source files, pragmas, and the pass base class.

A *pass* inspects parsed source files and emits :class:`Finding`\\ s, each
tagged with a stable rule id (``P101``, ``A201``, ...).  Suppression happens
in one of two audited ways, both carrying a visible reason:

* an inline pragma on the flagged line (or the line above it)::

      table = something()  # lint: allow[D305] XOR-fold; order cannot matter

* an entry in :data:`repro.analysis.allowlist.ALLOWLIST` (for whole files
  whose job is the exempted behavior, e.g. seeded instance generators).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Inline suppression pragma: ``# lint: allow[D301] optional reason``.
_PRAGMA = re.compile(r"lint:\s*allow\[([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class SourceFile:
    """A parsed source file plus the lookups passes need."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _pragmas: dict[int, frozenset[str]] | None = None

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        rel = path.relative_to(root).as_posix()
        return cls(path=path, relpath=rel, text=text, tree=tree, lines=text.splitlines())

    def pragmas(self) -> dict[int, frozenset[str]]:
        """``line number -> rule ids`` allowed by inline pragmas."""
        if self._pragmas is None:
            found: dict[int, frozenset[str]] = {}
            for number, line in enumerate(self.lines, start=1):
                match = _PRAGMA.search(line)
                if match:
                    rules = frozenset(
                        rule.strip() for rule in match.group(1).split(",")
                    )
                    found[number] = rules
            self._pragmas = found
        return self._pragmas

    def allowed(self, rule: str, line: int) -> bool:
        """Whether an inline pragma suppresses ``rule`` at ``line``.

        A pragma applies to its own line and to the line below it, so long
        statements can carry the pragma on a lead-in comment line.
        """
        pragmas = self.pragmas()
        for candidate in (line, line - 1):
            rules = pragmas.get(candidate)
            if rules and rule in rules:
                return True
        return False


class AnalysisPass:
    """Base class for one pass family.

    Per-file passes override :meth:`check_file`; whole-project passes (the
    registry/docs consistency checks) override :meth:`check_project`.  The
    runner filters each file through :meth:`interested_in` and drops findings
    suppressed by pragmas or the allowlist.
    """

    #: Short machine name (used by ``--select``).
    name: str = ""
    #: ``rule id -> one-line description`` for ``--list-rules``.
    rules: dict[str, str] = {}

    def interested_in(self, source: SourceFile) -> bool:
        return True

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, root: Path, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:
        return iter(())


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree``, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The dotted callee name of ``call``, else ``None``."""
    return dotted_name(call.func)


def walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``func``'s own body, not descending into nested defs.

    The root's arguments/decorators are excluded too: only what executes
    *when the function runs* is visited.
    """
    stack: list[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def matches_any(relpath: str, suffixes: Iterable[str]) -> bool:
    """Whether ``relpath`` lives under any of the given path prefixes."""
    return any(relpath.startswith(prefix) for prefix in suffixes)
