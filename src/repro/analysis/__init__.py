"""Domain-aware static analysis for the reconciliation codebase.

The test suite enforces the repo's core guarantee -- byte-identical
transcripts across backend tiers, field kernels and transports --
*dynamically*; this package enforces the invariants that make those tests
meaningful *statically*, at lint time:

* **Protocol parties** (:mod:`repro.analysis.passes.protocol`): every party
  generator yields only ``Send``/``Receive``/``yield from``, every ``Send``
  charges ``size_bits`` and names a wire codec, and each alice/bob pair is
  conversation-balanced.
* **Asyncio discipline** (:mod:`repro.analysis.passes.asynclint`): no
  blocking calls inside ``async def`` bodies in the service/store layers, no
  synchronous locks held across ``await``, no fire-and-forget tasks.
* **Determinism** (:mod:`repro.analysis.passes.determinism`): no unseeded
  randomness, wall-clock reads or hash-order-dependent iteration in the
  wire-identity-critical packages.
* **Registry/doc consistency** (:mod:`repro.analysis.passes.registry_docs`):
  the protocol/backend/kernel registries, the docs tables, and the
  cross-transport determinism coverage list cannot drift apart.
* **Exception hygiene** (:mod:`repro.analysis.passes.exceptions`): broad
  ``except`` handlers must re-raise, log, or carry an audited pragma.
* **Unused imports** (:mod:`repro.analysis.passes.imports`) and **typing
  completeness** (:mod:`repro.analysis.passes.annotations`): the strict-typed
  packages stay fully annotated even where mypy is not installed.

Run ``python -m repro.analysis`` from the repo root (``--json`` for CI).
Audited violations are suppressed with an inline pragma::

    rng = random.Random()  # lint: allow[D301] reason for the exemption

or with an entry in :mod:`repro.analysis.allowlist`.
"""

from __future__ import annotations

from repro.analysis.base import AnalysisPass, Finding, SourceFile
from repro.analysis.runner import all_passes, analyze, discover_files, find_root

__all__ = [
    "AnalysisPass",
    "Finding",
    "SourceFile",
    "all_passes",
    "analyze",
    "discover_files",
    "find_root",
]
