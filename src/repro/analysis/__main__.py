"""``python -m repro.analysis`` -- run the domain-aware static checks.

Exit status is 0 when the tree is clean and 1 when any finding survives the
pragmas and the allowlist, so the command slots directly into CI.  ``--json``
emits a machine-readable report instead of the human listing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.runner import all_passes, analyze, discover_files, find_root


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware static analysis for the reconciliation repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="subpaths (relative to the repo root) to restrict the scan to; "
        "default: the whole tree",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report (for CI) instead of the human listing",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated pass names or rule ids to run "
        "(e.g. 'protocol,D301')",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every pass and rule, then exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for analysis_pass in all_passes():
            print(f"{analysis_pass.name}:")
            for rule, description in sorted(analysis_pass.rules.items()):
                print(f"  {rule}  {description}")
        return 0
    root = find_root(args.root)
    sources = discover_files(root, tuple(args.paths))
    select = (
        [token.strip() for token in args.select.split(",") if token.strip()]
        if args.select
        else None
    )
    findings = analyze(root, sources=sources, select=select)
    if args.json:
        report = {
            "root": str(root),
            "files_scanned": len(sources),
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"repro.analysis: {len(findings)} finding(s) in "
            f"{len(sources)} file(s)"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
