"""Audited file-level exemptions.

Each entry names a file (path relative to the repo root), the rule it is
exempt from, and the reason the exemption is sound.  Entries are reviewed
like code: an exemption without a convincing reason should not survive
review.  Line-level exemptions belong in inline ``# lint: allow[RULE]``
pragmas next to the code they excuse, not here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Exemption:
    """One audited file-level exemption."""

    relpath: str
    rule: str
    reason: str


#: The audited exemptions.  Keep this list short and the reasons honest.
ALLOWLIST: tuple[Exemption, ...] = (
    Exemption(
        "src/repro/graphs/random_graphs.py",
        "D301",
        "seeded instance generation only: every random.Random here is "
        "constructed from a caller-supplied seed, and the generated graphs "
        "are protocol *inputs*, not wire content",
    ),
    Exemption(
        "src/repro/graphs/isomorphism.py",
        "D301",
        "seeded random restarts in the reference isomorphism search; "
        "verification-side search, never serialized",
    ),
    Exemption(
        "src/repro/field/roots.py",
        "D301",
        "Cantor-Zassenhaus splits draw from a random.Random(0x5EED) "
        "instance seeded at a fixed constant (or a caller-supplied rng); "
        "root order is re-sorted before anything reaches a message",
    ),
)


def exempt(relpath: str, rule: str) -> bool:
    """Whether the allowlist exempts ``relpath`` from ``rule``."""
    return any(
        entry.relpath == relpath and entry.rule == rule for entry in ALLOWLIST
    )
