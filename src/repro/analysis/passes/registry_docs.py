"""R6xx: registry / documentation / test-coverage consistency.

The three registries (protocols, cell-store backends, field kernels) are the
source of truth for what the library serves.  Everything that *describes*
them -- the README protocol table, the docs pages, and the cross-transport
determinism coverage list in the test suite -- must agree, or a freshly
registered protocol could ship unserved, undocumented, and untested without
any test noticing.

* ``R601`` -- a registered protocol's generated table row is missing from
  the README protocol table.
* ``R602`` -- a registered protocol is not named in docs/protocols.md.
* ``R603`` -- a registered protocol has no instance in
  ``tests/protocols/protocol_fixtures.py`` (the list that feeds the
  cross-transport determinism suite); an uncovered protocol would escape
  the byte-identity tests entirely.
* ``R604`` -- a registered cell backend / field kernel is not documented in
  docs/backends.md / docs/field-kernels.md.
* ``R605`` -- incoherent registry metadata (``supports_unknown_d`` without
  ``rounds_unknown`` or vice versa, an unknown ``input_kind``, or empty
  summary/reference).
* ``R606`` -- a docs page with no row in the README documentation index.

Unlike the AST passes this one *imports* the registries: the set of
registered names is runtime state by design (registration is open), and the
import is exactly what ``python -m repro.analysis`` already paid for.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.base import AnalysisPass, Finding, SourceFile

#: ``input_kind`` values the service/docs layers know how to describe.
KNOWN_INPUT_KINDS = frozenset(
    {"set", "set_of_sets", "graph", "forest", "table", "documents", "kv"}
)

_FIXTURES = "tests/protocols/protocol_fixtures.py"


def _fixture_instance_names(path: Path) -> set[str] | None:
    """Keys assigned as ``instances["name"] = ...`` in the fixtures module."""
    if not path.exists():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"))
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "instances"
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                names.add(target.slice.value)
    return names


class RegistryDocsPass(AnalysisPass):
    name = "registry"
    rules = {
        "R601": "registered protocol missing from the README protocol table",
        "R602": "registered protocol not named in docs/protocols.md",
        "R603": "registered protocol has no cross-transport determinism "
        "fixture instance",
        "R604": "registered backend/kernel missing from its docs table",
        "R605": "incoherent protocol registry metadata",
        "R606": "docs page missing from the README documentation index",
    }

    def check_project(
        self, root: Path, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:
        from repro.config import cell_backend_names, field_kernel_names
        from repro.protocols import registry

        readme = self._read(root / "README.md")
        protocols_doc = self._read(root / "docs" / "protocols.md")
        backends_doc = self._read(root / "docs" / "backends.md")
        kernels_doc = self._read(root / "docs" / "field-kernels.md")
        fixture_names = _fixture_instance_names(root / _FIXTURES)

        registry_py = "src/repro/protocols/registry.py"
        table_rows = {
            line.split("|")[1].strip().strip("`"): line
            for line in registry.registry_table_markdown().strip().splitlines()
            if line.startswith("| `")
        }
        for spec in registry.specs():
            tag = f"`{spec.name}`"
            row = table_rows.get(spec.name)
            if readme is not None and (row is None or row not in readme):
                yield Finding(
                    "R601",
                    f"protocol {spec.name!r}: its generated registry table "
                    "row is missing from (or stale in) the README protocol "
                    "table",
                    "README.md",
                    1,
                )
            if protocols_doc is not None and tag not in protocols_doc:
                yield Finding(
                    "R602",
                    f"protocol {spec.name!r} is not named in docs/protocols.md",
                    "docs/protocols.md",
                    1,
                )
            if fixture_names is not None and spec.name not in fixture_names:
                yield Finding(
                    "R603",
                    f"protocol {spec.name!r} has no instance in {_FIXTURES}; "
                    "the cross-transport determinism suite will not cover it",
                    _FIXTURES,
                    1,
                )
            yield from self._check_metadata(spec, registry_py)

        for backend in cell_backend_names():
            if backends_doc is not None and f"`{backend}`" not in backends_doc:
                yield Finding(
                    "R604",
                    f"cell backend {backend!r} is not documented in "
                    "docs/backends.md",
                    "docs/backends.md",
                    1,
                )
        for kernel in field_kernel_names():
            if kernels_doc is not None and f"`{kernel}`" not in kernels_doc:
                yield Finding(
                    "R604",
                    f"field kernel {kernel!r} is not documented in "
                    "docs/field-kernels.md",
                    "docs/field-kernels.md",
                    1,
                )

        if readme is not None:
            docs_dir = root / "docs"
            if docs_dir.is_dir():
                for page in sorted(docs_dir.glob("*.md")):
                    if f"docs/{page.name}" not in readme:
                        yield Finding(
                            "R606",
                            f"docs/{page.name} has no row in the README "
                            "documentation index",
                            "README.md",
                            1,
                        )

    def _check_metadata(self, spec: object, registry_py: str) -> Iterator[Finding]:
        name = getattr(spec, "name", "")
        problems: list[str] = []
        supports = bool(getattr(spec, "supports_unknown_d", False))
        rounds_unknown = getattr(spec, "rounds_unknown", None)
        if supports != (rounds_unknown is not None):
            problems.append(
                "supports_unknown_d and rounds_unknown disagree "
                f"(supports_unknown_d={supports}, rounds_unknown={rounds_unknown!r})"
            )
        input_kind = getattr(spec, "input_kind", "")
        if input_kind not in KNOWN_INPUT_KINDS:
            problems.append(f"unknown input_kind {input_kind!r}")
        if not getattr(spec, "summary", ""):
            problems.append("empty summary")
        if not getattr(spec, "reference", ""):
            problems.append("empty reference")
        for problem in problems:
            yield Finding(
                "R605", f"protocol {name!r}: {problem}", registry_py, 1
            )

    @staticmethod
    def _read(path: Path) -> str | None:
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8")
