"""E4xx: exception hygiene.

* ``E401`` -- a broad handler (``except Exception`` / ``except BaseException``
  / bare ``except``) that neither re-raises nor logs.  Swallowing arbitrary
  exceptions hides real bugs behind "handled" paths; the repo's error seam
  (:mod:`repro.errors`) gives every expected failure a narrow type, so a
  broad catch is only legitimate when it re-raises (possibly wrapped),
  records the failure through a logger, or carries an audited
  ``# lint: allow[E401]`` pragma (e.g. dependency probing in
  :mod:`repro.jit`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import AnalysisPass, Finding, SourceFile, call_name

_BROAD = frozenset({"Exception", "BaseException"})

#: Logger call prefixes that count as "the failure was recorded".
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BROAD
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD for el in handler.type.elts
        )
    return False


def _reraises_or_logs(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                parts = name.split(".")
                if parts[-1] in _LOG_METHODS and any(
                    "log" in part.lower() for part in parts[:-1]
                ):
                    return True
    return False


class ExceptionHygienePass(AnalysisPass):
    name = "exceptions"
    rules = {
        "E401": "broad except handler must re-raise, log, or carry an "
        "audited pragma",
    }

    def interested_in(self, source: SourceFile) -> bool:
        return source.relpath.startswith("src/repro/")

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _reraises_or_logs(node):
                caught = (
                    ast.unparse(node.type) if node.type is not None else "everything"
                )
                yield Finding(
                    "E401",
                    f"broad 'except {caught}' neither re-raises nor logs; "
                    "narrow it to the error types this code actually handles",
                    source.relpath,
                    node.lineno,
                    node.col_offset,
                )
