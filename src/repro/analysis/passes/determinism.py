"""D3xx: determinism in the wire-identity-critical packages.

The repo's headline guarantee is that transcripts are byte-identical across
backends, kernels, and transports.  Everything that feeds a wire byte must
therefore derive from the protocol seed via :func:`repro.hashing.derive_seed`
and the splitmix64 core -- never from process-global randomness, the clock,
or the interpreter's randomized string hashing.

* ``D301`` -- stdlib ``random`` call.  Even *seeded* ``random.Random``
  instances are confined to the audited allowlist files: wire-critical code
  draws randomness from the seeded hash machinery so that two processes
  (possibly different Python builds) agree bit for bit.
* ``D302`` -- wall-clock read (``time.time``, ``perf_counter``,
  ``datetime.now``, ...).  Timing belongs in the bench/metrics layers.
* ``D303`` -- builtin ``hash()`` outside a ``__hash__`` method.  String and
  bytes hashes are salted per process (PYTHONHASHSEED), so any wire content
  derived from ``hash()`` breaks cross-process determinism.
* ``D304`` -- OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets``).
* ``D305`` -- iteration over a freshly-constructed set or set literal.
  Set iteration order depends on the (salted) element hashes; iterating one
  directly into wire content is order-nondeterministic across processes.
  Sort first, or fold with an order-insensitive operation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import AnalysisPass, Finding, SourceFile, call_name

#: Packages whose output reaches the wire (directly or via charged sizing).
WIRE_CRITICAL_PATHS = (
    "src/repro/iblt/",
    "src/repro/field/",
    "src/repro/hashing/",
    "src/repro/comm/",
    "src/repro/protocols/",
    "src/repro/estimator/",
    "src/repro/core/",
    "src/repro/graphs/",
    "src/repro/store/",
    "src/repro/db/",
    "src/repro/documents/",
    "src/repro/cluster/",
)

#: Wall-clock and timer reads.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: OS-entropy sources.
ENTROPY_CALLS = frozenset(
    {"os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
     "secrets.token_hex", "secrets.randbits", "secrets.choice"}
)


def _is_fresh_set(expr: ast.expr) -> bool:
    """Whether ``expr`` builds a set right where it is iterated."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in {"set", "frozenset"}
    return False


class DeterminismPass(AnalysisPass):
    name = "determinism"
    rules = {
        "D301": "stdlib random call in wire-critical code (audited files "
        "are allowlisted)",
        "D302": "wall-clock read in wire-critical code",
        "D303": "builtin hash() outside __hash__ is PYTHONHASHSEED-dependent",
        "D304": "OS entropy source in wire-critical code",
        "D305": "iteration over a freshly-built set is hash-order-dependent",
    }

    def interested_in(self, source: SourceFile) -> bool:
        return any(source.relpath.startswith(p) for p in WIRE_CRITICAL_PATHS)

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        hash_methods = {
            id(stmt)
            for node in ast.walk(source.tree)
            if isinstance(node, ast.FunctionDef) and node.name == "__hash__"
            for stmt in ast.walk(node)
        }
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, hash_methods)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_fresh_set(node.iter):
                    yield self._finding(
                        "D305",
                        "iterating a freshly-built set; order is salted per "
                        "process",
                        source,
                        node.iter,
                    )
            elif isinstance(node, ast.comprehension):
                if _is_fresh_set(node.iter):
                    yield self._finding(
                        "D305",
                        "comprehension over a freshly-built set; order is "
                        "salted per process",
                        source,
                        node.iter,
                    )

    def _check_call(
        self, source: SourceFile, node: ast.Call, hash_methods: set[int]
    ) -> Iterator[Finding]:
        name = call_name(node)
        if name is None:
            return
        if name == "random" or name.startswith("random."):
            yield self._finding(
                "D301",
                f"{name}() -- derive randomness from the protocol seed via "
                "repro.hashing instead",
                source,
                node,
            )
        elif name in CLOCK_CALLS:
            yield self._finding(
                "D302",
                f"{name}() -- wire-critical code must not read the clock",
                source,
                node,
            )
        elif name == "hash" and id(node) not in hash_methods:
            yield self._finding(
                "D303",
                "builtin hash() is salted per process (PYTHONHASHSEED); use "
                "the seeded hash machinery",
                source,
                node,
            )
        elif name in ENTROPY_CALLS:
            yield self._finding(
                "D304",
                f"{name}() -- OS entropy can never be reproduced by the peer",
                source,
                node,
            )

    @staticmethod
    def _finding(
        rule: str, message: str, source: SourceFile, node: ast.expr | ast.Call
    ) -> Finding:
        return Finding(rule, message, source.relpath, node.lineno, node.col_offset)
