"""P1xx: the protocol-party linter.

Walks every generator in the party modules (``repro/protocols/parties/`` and
``repro/store/parties.py``) and enforces the session contract:

* ``P101`` -- a party generator may yield only ``Send(...)``, ``Receive(...)``
  or ``yield from`` another party generator.  Anything else would reach
  :func:`repro.protocols.session.run_session` as an unknown command.
* ``P102`` -- every ``Send`` must charge an explicit ``size_bits``
  expression; an uncharged message would silently corrupt the transcript's
  bit accounting (the quantity the whole benchmark suite measures).
* ``P103`` -- every ``Send`` must name a wire codec.  ``codec=None``
  restricts the protocol to the in-memory transport and breaks the
  cross-transport determinism guarantee for every protocol built on it.
* ``P104`` -- every ``Receive`` must name the codec it expects, for the same
  reason.
* ``P105`` -- alice/bob generator pairs must be conversation-balanced: the
  number of ``Send`` sites on one side must equal the number of ``Receive``
  sites on the other (after transitively resolving ``yield from`` chains),
  and both sides must delegate to unresolvable sub-parties (generators
  received as parameters) the same number of times.  An unbalanced pair
  deadlocks or drops a message at session time.

Balance is *structural* (yield sites, not dynamic executions): the repo's
parties mirror their control flow on both sides -- a retry loop on one side
has a matching loop on the other -- so matching site counts is exactly the
invariant that keeps a new branch on one side from deadlocking the other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.base import AnalysisPass, Finding, SourceFile, walk_own_body

#: Party modules: every generator here is held to the session contract.
PARTY_PATHS = (
    "src/repro/protocols/parties/",
    "src/repro/store/parties.py",
    "src/repro/cluster/parties.py",
)

#: Names of the session commands a party may yield.
_COMMANDS = frozenset({"Send", "Receive"})


@dataclass
class _GeneratorSummary:
    """Static conversation summary of one generator function."""

    qualname: str
    source: SourceFile
    node: ast.FunctionDef
    sends: list[ast.Call] = field(default_factory=list)
    receives: list[ast.Call] = field(default_factory=list)
    #: Simple callee names of ``yield from <name>(...)`` sites.
    delegations: list[str] = field(default_factory=list)
    #: ``yield from`` sites whose target is not a statically known name
    #: (e.g. a generator passed in as a parameter).
    opaque: int = 0
    bad_yields: list[ast.expr | ast.stmt] = field(default_factory=list)


@dataclass
class _Resolved:
    """Transitively resolved conversation counts."""

    sends: int = 0
    receives: int = 0
    opaque: int = 0


def _command_name(value: ast.expr) -> str | None:
    """``Send``/``Receive`` when ``value`` calls one of them, else ``None``."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _COMMANDS:
            return value.func.id
    return None


def _delegation_target(value: ast.expr) -> str | None:
    """The simple callee name of a ``yield from target(...)`` expression."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id
    if isinstance(value, ast.Name):
        return value.id
    return None


def _summarize(
    qualname: str, source: SourceFile, func: ast.FunctionDef
) -> _GeneratorSummary | None:
    """Summarize ``func``'s yields; ``None`` when it is not a generator."""
    summary = _GeneratorSummary(qualname, source, func)
    is_generator = False
    for node in walk_own_body(func):
        if isinstance(node, ast.YieldFrom):
            is_generator = True
            target = _delegation_target(node.value)
            if target is None:
                summary.opaque += 1
            else:
                summary.delegations.append(target)
        elif isinstance(node, ast.Yield):
            is_generator = True
            if node.value is None:
                summary.bad_yields.append(node)
                continue
            command = _command_name(node.value)
            if command == "Send":
                summary.sends.append(node.value)
            elif command == "Receive":
                summary.receives.append(node.value)
            else:
                summary.bad_yields.append(node.value)
    return summary if is_generator else None


def _call_has_argument(call: ast.Call, position: int, keyword: str) -> bool:
    """Whether ``call`` passes the argument, positionally or by keyword.

    An explicit ``keyword=None`` does not count: passing ``codec=None`` is
    the same contract violation as omitting it.  A ``**kwargs`` splat counts
    as provided (the checker cannot see inside it).
    """
    if len(call.args) > position:
        provided = call.args[position]
    else:
        matches = [kw.value for kw in call.keywords if kw.arg == keyword]
        if not matches:
            return any(kw.arg is None for kw in call.keywords)
        provided = matches[0]
    return not (isinstance(provided, ast.Constant) and provided.value is None)


def _swap_role(qualname: str) -> str | None:
    """The partner generator's qualname, or ``None`` for non-party names."""
    if "alice" in qualname:
        return qualname.replace("alice", "bob")
    if "bob" in qualname:
        return qualname.replace("bob", "alice")
    return None


def _functions_with_qualnames(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef]]:
    """``(qualname, node)`` for every function definition, including nested."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                if isinstance(child, ast.FunctionDef):
                    yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    return visit(tree, "")


class ProtocolPartyPass(AnalysisPass):
    name = "protocol"
    rules = {
        "P101": "party generators may only yield Send/Receive or delegate "
        "with 'yield from'",
        "P102": "Send must charge an explicit size_bits expression",
        "P103": "Send must name a wire codec (codec=None breaks serializing "
        "transports)",
        "P104": "Receive must name the codec it expects",
        "P105": "alice/bob pair is not conversation-balanced",
    }

    def interested_in(self, source: SourceFile) -> bool:
        return any(source.relpath.startswith(p) for p in PARTY_PATHS)

    def check_project(
        self, root: Path, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:
        party_files = [s for s in sources if self.interested_in(s)]
        summaries: list[_GeneratorSummary] = []
        # Delegation targets resolve through top-level names: parties compose
        # across modules (`yield from ibf_alice_known(...)` inside a graph
        # party) and top-level party names are globally unique.  A name
        # defined at top level in two party modules would be ambiguous, so
        # it is dropped from the table (treated as opaque).
        top_level: dict[str, _GeneratorSummary | None] = {}
        for source in party_files:
            for qualname, func in _functions_with_qualnames(source.tree):
                summary = _summarize(qualname, source, func)
                if summary is None:
                    continue
                summaries.append(summary)
                if "." not in qualname:
                    top_level[qualname] = (
                        None if qualname in top_level else summary
                    )
        for summary in summaries:
            yield from self._check_yield_shapes(summary)
        yield from self._check_balance(summaries, top_level)

    # -- per-site rules ---------------------------------------------------------

    def _check_yield_shapes(self, summary: _GeneratorSummary) -> Iterator[Finding]:
        relpath = summary.source.relpath
        for bad in summary.bad_yields:
            rendered = "a bare yield" if isinstance(bad, ast.Yield) else ast.unparse(bad)
            yield Finding(
                "P101",
                f"{summary.qualname} yields {rendered}; party generators may "
                "only yield Send/Receive",
                relpath,
                bad.lineno,
                bad.col_offset,
            )
        for send in summary.sends:
            if not _call_has_argument(send, 1, "size_bits"):
                yield Finding(
                    "P102",
                    f"Send in {summary.qualname} charges no size_bits",
                    relpath,
                    send.lineno,
                    send.col_offset,
                )
            if not _call_has_argument(send, 3, "codec"):
                yield Finding(
                    "P103",
                    f"Send in {summary.qualname} names no wire codec",
                    relpath,
                    send.lineno,
                    send.col_offset,
                )
        for receive in summary.receives:
            if not _call_has_argument(receive, 0, "codec"):
                yield Finding(
                    "P104",
                    f"Receive in {summary.qualname} names no codec",
                    relpath,
                    receive.lineno,
                    receive.col_offset,
                )

    # -- conversation balance ---------------------------------------------------

    def _resolve(
        self,
        summary: _GeneratorSummary,
        top_level: dict[str, _GeneratorSummary | None],
        stack: frozenset[str],
    ) -> _Resolved:
        resolved = _Resolved(
            sends=len(summary.sends),
            receives=len(summary.receives),
            opaque=summary.opaque,
        )
        for target in summary.delegations:
            sub = top_level.get(target)
            if sub is None or sub.qualname in stack:
                resolved.opaque += 1
                continue
            nested = self._resolve(sub, top_level, stack | {summary.qualname})
            resolved.sends += nested.sends
            resolved.receives += nested.receives
            resolved.opaque += nested.opaque
        return resolved

    def _check_balance(
        self,
        summaries: list[_GeneratorSummary],
        top_level: dict[str, _GeneratorSummary | None],
    ) -> Iterator[Finding]:
        by_key = {
            (summary.source.relpath, summary.qualname): summary
            for summary in summaries
        }
        for (relpath, qualname), summary in by_key.items():
            if "bob" in qualname:
                continue  # report each pair once, from the alice side
            partner_name = _swap_role(qualname)
            if partner_name is None or partner_name == qualname:
                continue
            partner = by_key.get((relpath, partner_name))
            if partner is None:
                continue
            mine = self._resolve(summary, top_level, frozenset({qualname}))
            theirs = self._resolve(partner, top_level, frozenset({partner_name}))
            problems: list[str] = []
            if mine.sends != theirs.receives:
                problems.append(
                    f"{qualname} has {mine.sends} Send site(s) but "
                    f"{partner_name} has {theirs.receives} Receive site(s)"
                )
            if mine.receives != theirs.sends:
                problems.append(
                    f"{qualname} has {mine.receives} Receive site(s) but "
                    f"{partner_name} has {theirs.sends} Send site(s)"
                )
            if mine.opaque != theirs.opaque:
                problems.append(
                    f"{qualname} delegates to {mine.opaque} opaque "
                    f"sub-parties, {partner_name} to {theirs.opaque}"
                )
            if problems:
                yield Finding(
                    "P105",
                    "; ".join(problems),
                    relpath,
                    summary.node.lineno,
                    summary.node.col_offset,
                )
