"""T7xx: typing completeness for the strict-typed packages.

``pyproject.toml`` gates ``repro.protocols``, ``repro.comm``,
``repro.service``, ``repro.store``, ``repro.config`` and this analysis
package behind ``mypy --strict`` in CI.  mypy cannot run in every
environment this repo targets (offline images without the toolchain), so
this pass enforces the *completeness* half of strictness -- every function
fully annotated -- on the stdlib AST, everywhere:

* ``T701`` -- a function in a strict-typed package with unannotated
  parameters or no return annotation.  This is exactly mypy's
  ``disallow_untyped_defs``/``disallow_incomplete_defs`` surface, so a tree
  that passes this pass cannot regress the CI gate by *omission* (only by a
  semantic type error, which only mypy can see).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import AnalysisPass, Finding, SourceFile

#: Packages (and modules) under the mypy --strict gate.
STRICT_TYPED_PATHS = (
    "src/repro/protocols/",
    "src/repro/comm/",
    "src/repro/service/",
    "src/repro/store/",
    "src/repro/cluster/",
    "src/repro/config.py",
    "src/repro/analysis/",
)


def _missing_annotations(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    positional = args.posonlyargs + args.args
    missing: list[str] = []
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in {"self", "cls"}:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    missing.extend(arg.arg for arg in args.kwonlyargs if arg.annotation is None)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if func.returns is None:
        missing.append("return")
    return missing


class TypingCompletenessPass(AnalysisPass):
    name = "typing"
    rules = {
        "T701": "function in a strict-typed package must be fully annotated",
    }

    def interested_in(self, source: SourceFile) -> bool:
        return any(source.relpath.startswith(p) for p in STRICT_TYPED_PATHS)

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(node)
            if missing:
                yield Finding(
                    "T701",
                    f"{node.name}() is missing annotations for: "
                    + ", ".join(missing),
                    source.relpath,
                    node.lineno,
                    node.col_offset,
                )
