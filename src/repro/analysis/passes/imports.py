"""I5xx: unused imports.

* ``I501`` -- a module-level import that no code in the module references.
  ``__init__.py`` files are exempt (re-export surface), as is anything named
  in ``__all__`` and explicit ``import name as name`` re-exports (the PEP
  484 convention).

This is the dependency-hygiene slice of ruff's ``F401`` implemented on the
stdlib AST, so the gate also runs in environments where ruff cannot be
installed (the check in CI runs both; they must agree).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import AnalysisPass, Finding, SourceFile


def _binding_name(alias: ast.alias) -> str:
    if alias.asname is not None:
        return alias.asname
    return alias.name.split(".")[0]


def _names_in_annotation(annotation: ast.expr | None, used: set[str]) -> None:
    """Record names in an annotation, including quoted string annotations."""
    if annotation is None:
        return
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return
        for node in ast.walk(parsed):
            if isinstance(node, ast.Name):
                used.add(node.id)
        return
    for node in ast.walk(annotation):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            _names_in_annotation(node, used)


def _collect_used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                _names_in_annotation(arg.annotation, used)
            _names_in_annotation(node.returns, used)
        elif isinstance(node, ast.AnnAssign):
            _names_in_annotation(node.annotation, used)
    return used


def _declared_all(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for el in value.elts:
                if isinstance(el, ast.Constant) and isinstance(el.value, str):
                    names.add(el.value)
    return names


def _availability_probe_imports(tree: ast.Module) -> set[int]:
    """Imports inside ``try: import x / except ImportError`` probe blocks.

    The optional-dependency probe idiom imports a module purely to learn
    whether it is installed; the bound name is legitimately unused.
    """
    probe_ids: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        catches_import_error = False
        for handler in node.handlers:
            types = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for t in types:
                if isinstance(t, ast.Name) and t.id in {
                    "ImportError",
                    "ModuleNotFoundError",
                    "Exception",
                }:
                    catches_import_error = True
        if not catches_import_error:
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                probe_ids.add(id(stmt))
    return probe_ids


class UnusedImportPass(AnalysisPass):
    name = "imports"
    rules = {
        "I501": "imported name is never used (and not re-exported)",
    }

    def interested_in(self, source: SourceFile) -> bool:
        return source.relpath.startswith("src/repro/") and not source.relpath.endswith(
            "__init__.py"
        )

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        used = _collect_used_names(source.tree)
        exported = _declared_all(source.tree)
        probes = _availability_probe_imports(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if id(node) in probes:
                continue  # availability probe: the import *is* the use
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname is not None and alias.asname == alias.name:
                    continue  # explicit `import name as name` re-export
                bound = _binding_name(alias)
                if bound in used or bound in exported:
                    continue
                yield Finding(
                    "I501",
                    f"imported name {bound!r} is never used",
                    source.relpath,
                    node.lineno,
                    node.col_offset,
                )
