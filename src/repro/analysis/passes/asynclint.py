"""A2xx: asyncio discipline in the service and store layers.

The sync server multiplexes every session on one event loop; a single
blocking call inside a coroutine stalls *every* concurrent session, and a
synchronous lock held across an ``await`` can deadlock the loop outright.

* ``A201`` -- blocking call (``time.sleep``, synchronous socket/file I/O,
  ``subprocess``/``os.system``) inside an ``async def`` body.
* ``A202`` -- synchronous ``with <...lock...>:`` held across an ``await``.
  The store's ``threading.Lock`` protects its entries from the blocking
  client helpers; awaiting while holding it would block the loop on the
  next contender.  (Asyncio locks use ``async with`` and are exempt.)
* ``A203`` -- fire-and-forget task: the result of ``asyncio.create_task`` /
  ``ensure_future`` discarded without being stored or awaited.  The event
  loop keeps only a weak reference; a dropped task can be garbage-collected
  mid-flight and its exceptions are silently lost.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import (
    AnalysisPass,
    Finding,
    SourceFile,
    call_name,
    walk_own_body,
)

#: Layers that run on (or next to) the event loop.
ASYNC_PATHS = ("src/repro/service/", "src/repro/store/", "src/repro/cluster/")

#: Dotted callee names that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.waitpid",
        "os.popen",
        "urllib.request.urlopen",
        "input",
        "open",
    }
)

#: Task factories whose return value must not be dropped.
TASK_FACTORIES = frozenset(
    {"asyncio.create_task", "asyncio.ensure_future", "loop.create_task"}
)


def _looks_like_lock(expr: ast.expr) -> bool:
    """Whether a ``with`` context expression names a lock."""
    node: ast.expr | None = expr
    if isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, ast.Attribute):
        if "lock" in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and "lock" in node.id.lower()


class AsyncioPass(AnalysisPass):
    name = "asyncio"
    rules = {
        "A201": "blocking call inside an async def body stalls every "
        "session on the event loop",
        "A202": "synchronous lock held across an await",
        "A203": "fire-and-forget task: store or await the result of "
        "create_task/ensure_future",
    }

    def interested_in(self, source: SourceFile) -> bool:
        return any(source.relpath.startswith(p) for p in ASYNC_PATHS)

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(source, node)

    def _check_coroutine(
        self, source: SourceFile, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in walk_own_body(func):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in BLOCKING_CALLS:
                    yield Finding(
                        "A201",
                        f"blocking call {name}() inside async def {func.name}",
                        source.relpath,
                        node.lineno,
                        node.col_offset,
                    )
            elif isinstance(node, ast.With):
                held_lock = any(
                    _looks_like_lock(item.context_expr) for item in node.items
                )
                if held_lock and any(
                    isinstance(inner, ast.Await)
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                ):
                    yield Finding(
                        "A202",
                        f"async def {func.name} awaits while holding a "
                        "synchronous lock",
                        source.relpath,
                        node.lineno,
                        node.col_offset,
                    )
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                name = call_name(node.value)
                if name in TASK_FACTORIES:
                    yield Finding(
                        "A203",
                        f"result of {name}() is discarded in async def "
                        f"{func.name}; the loop holds only a weak reference",
                        source.relpath,
                        node.lineno,
                        node.col_offset,
                    )
