"""The repo-specific pass families."""

from __future__ import annotations

from repro.analysis.passes.annotations import TypingCompletenessPass
from repro.analysis.passes.asynclint import AsyncioPass
from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.exceptions import ExceptionHygienePass
from repro.analysis.passes.imports import UnusedImportPass
from repro.analysis.passes.protocol import ProtocolPartyPass
from repro.analysis.passes.registry_docs import RegistryDocsPass

__all__ = [
    "AsyncioPass",
    "DeterminismPass",
    "ExceptionHygienePass",
    "ProtocolPartyPass",
    "RegistryDocsPass",
    "TypingCompletenessPass",
    "UnusedImportPass",
]
