"""Optional numba JIT seam: availability probe shared by the compiled tier.

The compiled backend tier (:class:`repro.iblt.backends_numba.NumbaCellStore`,
:class:`repro.field.kernels_numba.NumbaFieldKernel`) compiles its inner loops
with `numba <https://numba.pydata.org>`_ when it is importable.  numba is an
*optional* accelerator exactly like NumPy: nothing in the library requires
it, and the registries in :mod:`repro.config` fall back along the chain
``numba -> numpy -> python`` when it (or NumPy, which numba needs) is
missing.  This module is the one place that probes for it, mirroring
``repro.hashing.mix.HAS_NUMPY``.

Importing numba is noticeably slower than importing NumPy, so the probe is
deliberately lazy: :func:`numba_available` only attempts the import the
first time a caller (typically a registry ``available()`` classmethod) asks,
and remembers the answer for the rest of the process.
"""

from __future__ import annotations

_PROBED: bool | None = None


def numba_available() -> bool:
    """True when numba is importable (probed once, then cached)."""
    global _PROBED
    if _PROBED is None:
        try:
            import numba  # noqa: F401

            _PROBED = True
        except Exception:  # pragma: no cover; lint: allow[E401] import probe
            _PROBED = False
    return _PROBED


def get_njit():
    """Return ``numba.njit`` (raises ``ImportError`` when numba is missing).

    Callers must gate on :func:`numba_available` first; the compiled tier
    only reaches this from code paths its ``available()`` probe has already
    approved.
    """
    from numba import njit

    return njit
