"""A binary relational table with labeled columns and unlabeled rows."""

from __future__ import annotations

from typing import Iterable, Sequence

try:  # only the dense to_matrix/from_matrix conveniences need NumPy
    import numpy as np
except ImportError:  # pragma: no cover - exercised on NumPy-free installs
    np = None

from repro.core.setsofsets import SetOfSets
from repro.errors import ParameterError


class BinaryTable:
    """A set of distinct binary rows over a fixed list of named columns.

    Rows are unlabeled (the table is a *set* of rows), matching the paper's
    database application.  Two tables over the same columns can be compared
    bit-by-bit, and a table converts losslessly to the
    :class:`~repro.core.setsofsets.SetOfSets` representation used by the
    reconciliation protocols.
    """

    __slots__ = ("_columns", "_rows")

    def __init__(self, columns: Sequence[str], rows: Iterable[Iterable[int]] = ()) -> None:
        if len(set(columns)) != len(columns):
            raise ParameterError("column names must be unique")
        self._columns = tuple(columns)
        self._rows: set[frozenset[int]] = set()
        for row in rows:
            self.add_row(row)

    # -- schema ---------------------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """The column names."""
        return self._columns

    @property
    def num_columns(self) -> int:
        """Number of columns (the element universe size ``u``)."""
        return len(self._columns)

    @property
    def num_rows(self) -> int:
        """Number of distinct rows (the paper's ``s``)."""
        return len(self._rows)

    def column_index(self, name: str) -> int:
        """Index of a column by name."""
        try:
            return self._columns.index(name)
        except ValueError as exc:
            raise ParameterError(f"unknown column {name!r}") from exc

    # -- rows -----------------------------------------------------------------------

    def add_row(self, ones: Iterable[int]) -> None:
        """Add a row given the indices of its 1-valued columns."""
        row = frozenset(ones)
        for column in row:
            if not 0 <= column < self.num_columns:
                raise ParameterError(f"column index {column} out of range")
        self._rows.add(row)

    def remove_row(self, ones: Iterable[int]) -> None:
        """Remove a row (no-op if absent)."""
        self._rows.discard(frozenset(ones))

    def rows(self) -> frozenset[frozenset[int]]:
        """The rows as sets of 1-column indices."""
        return frozenset(self._rows)

    def flip_bit(self, row: Iterable[int], column: int) -> frozenset[int]:
        """Flip one bit of one row in place; returns the updated row.

        This is the paper's unit of difference ("a total of d bits have been
        flipped").  The old row is removed and the modified row inserted.
        """
        old = frozenset(row)
        if old not in self._rows:
            raise ParameterError("row not present in the table")
        if not 0 <= column < self.num_columns:
            raise ParameterError(f"column index {column} out of range")
        new = old ^ frozenset({column})
        self._rows.discard(old)
        self._rows.add(new)
        return new

    # -- conversions -----------------------------------------------------------------

    def to_sets_of_sets(self) -> SetOfSets:
        """The set-of-sets view used by the reconciliation protocols."""
        return SetOfSets(self._rows)

    @classmethod
    def from_sets_of_sets(cls, columns: Sequence[str], parent: SetOfSets) -> "BinaryTable":
        """Rebuild a table from a reconciled set of sets."""
        return cls(columns, parent.children)

    def to_matrix(self) -> "np.ndarray":
        """Dense 0/1 matrix (rows in canonical order) -- convenient for tests."""
        if np is None:
            raise RuntimeError("BinaryTable.to_matrix requires NumPy")
        ordered = sorted(self._rows, key=sorted)
        matrix = np.zeros((len(ordered), self.num_columns), dtype=np.uint8)
        for row_index, row in enumerate(ordered):
            for column in row:
                matrix[row_index, column] = 1
        return matrix

    @classmethod
    def from_matrix(cls, columns: Sequence[str], matrix: "np.ndarray") -> "BinaryTable":
        """Build a table from a dense 0/1 matrix."""
        if np is None:
            raise RuntimeError("BinaryTable.from_matrix requires NumPy")
        if matrix.ndim != 2 or matrix.shape[1] != len(columns):
            raise ParameterError("matrix shape does not match the column list")
        rows = (set(np.nonzero(matrix[i])[0].tolist()) for i in range(matrix.shape[0]))
        return cls(columns, rows)

    # -- comparisons -----------------------------------------------------------------

    def bit_difference(self, other: "BinaryTable") -> int:
        """Minimum number of bit flips separating the two tables.

        Computed as the minimum-cost matching between row sets (rows are
        unlabeled), i.e. exactly the paper's ``d``.
        """
        from repro.core.setsofsets import minimum_matching_difference

        if other.columns != self.columns:
            raise ParameterError("tables must share the same columns")
        return minimum_matching_difference(self.to_sets_of_sets(), other.to_sets_of_sets())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryTable):
            return NotImplemented
        return self._columns == other._columns and self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryTable(columns={self.num_columns}, rows={self.num_rows})"
