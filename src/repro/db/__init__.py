"""Binary relational database reconciliation (Section 1 application).

A relational table of binary data whose columns are labeled but whose rows
are not is exactly a set of sets: each row is the set of columns in which it
has a 1.  "Reconciling two databases in which a total of d bits have been
flipped corresponds exactly to our sets of sets problem."  This package
provides the table type, conversion to/from the set-of-sets representation,
and an end-to-end reconciliation entry point.
"""

from repro.db.table import BinaryTable
from repro.db.reconcile import reconcile_tables

__all__ = ["BinaryTable", "reconcile_tables"]
