"""End-to-end reconciliation of binary relational tables."""

from __future__ import annotations

from typing import Callable

from repro.comm import ReconciliationResult
from repro.core.setsofsets.cascading import reconcile_cascading
from repro.core.setsofsets.naive import reconcile_naive
from repro.db.table import BinaryTable
from repro.errors import ParameterError
from repro.hashing import derive_seed


def reconcile_tables(
    alice: BinaryTable,
    bob: BinaryTable,
    flipped_bits_bound: int,
    seed: int,
    *,
    protocol: str | Callable[..., ReconciliationResult] = "cascading",
    backend: str | None = None,
    **protocol_kwargs,
) -> ReconciliationResult:
    """One-way reconciliation of two binary tables (Bob recovers Alice's).

    Parameters
    ----------
    alice, bob:
        Tables over the same column list.
    flipped_bits_bound:
        Upper bound ``d`` on the number of flipped bits separating the tables
        under the minimum-difference row matching.
    seed:
        Shared seed.
    protocol:
        Which set-of-sets protocol to use: ``"cascading"`` (Theorem 3.7,
        default), ``"naive"`` (Theorem 3.3), or any callable following the
        ``(alice, bob, d, u, h, seed, ...)`` convention.
    backend:
        IBLT cell-store backend forwarded to the protocol when set (see
        :mod:`repro.config`).

    Returns
    -------
    ReconciliationResult
        ``recovered`` is a :class:`BinaryTable` equal to Alice's.
    """
    if alice.columns != bob.columns:
        raise ParameterError("tables must share the same columns")
    if backend is not None:
        protocol_kwargs = dict(protocol_kwargs, backend=backend)
    universe = alice.num_columns
    max_child = max(
        1,
        alice.to_sets_of_sets().max_child_size,
        bob.to_sets_of_sets().max_child_size,
    )
    if protocol == "cascading":
        protocol_fn: Callable[..., ReconciliationResult] = reconcile_cascading
    elif protocol == "naive":
        def protocol_fn(a, b, d, u, h, s, **kw):
            return reconcile_naive(a, b, max(1, d), u, h, s, **kw)
    elif callable(protocol):
        protocol_fn = protocol
    else:
        raise ParameterError(f"unknown protocol {protocol!r}")

    result = protocol_fn(
        alice.to_sets_of_sets(),
        bob.to_sets_of_sets(),
        max(1, flipped_bits_bound),
        universe,
        max_child,
        derive_seed(seed, "db"),
        **protocol_kwargs,
    )
    if result.success:
        result.recovered = BinaryTable.from_sets_of_sets(alice.columns, result.recovered)
    return result
