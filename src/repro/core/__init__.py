"""Core reconciliation protocols.

* :mod:`repro.core.setrecon` -- classic (single) set reconciliation: the IBLT
  protocol of Corollaries 2.2/3.2, the characteristic-polynomial protocol of
  Theorem 2.3, and the multiset variants of Section 3.4.
* :mod:`repro.core.setsofsets` -- the paper's contribution: reconciliation of
  sets of sets (naive, IBLT-of-IBLTs, cascading, and multi-round protocols).
"""

from repro.core import setrecon, setsofsets

__all__ = ["setrecon", "setsofsets"]
