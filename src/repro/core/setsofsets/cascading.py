"""The cascading IBLTs-of-IBLTs protocol (Algorithm 2, Theorem 3.7, Cor 3.8).

The flat IBLT-of-IBLTs protocol pays ``O(d)`` cells for *every* differing
child even though the total number of element changes across all children is
only ``d``.  Algorithm 2 fixes this with a cascade of levels
``i = 1 .. t = log2(min(d, h))``: level ``i`` uses child IBLTs of ``O(2^i)``
cells inside a parent IBLT of ``O(d / 2^i)`` cells.  Children with small
differences are recovered at the cheap early levels and *removed* from later
levels, so only the few children with large differences reach the expensive
levels.  When ``d >= h`` a final table ``T*`` of ``O(d/h)`` cells carries
explicit encodings of the children too different to pair up at all.

Communication: ``O(d log(min(d,h)) log u + d log s)`` bits, one round.
"""

from __future__ import annotations

import math

from repro.comm import ReconciliationResult, Transcript, WORD_BITS
from repro.core.setrecon.difference import apply_difference, max_element_bits
from repro.core.setsofsets.encoding import (
    ChildEncodingScheme,
    ChildTableCache,
    ExplicitChildScheme,
    parent_hash,
)
from repro.core.setsofsets.types import SetOfSets
from repro.errors import ParameterError
from repro.field.kernels import use_kernel
from repro.hashing import derive_seed
from repro.iblt import IBLT, IBLTParameters


def _level_child_scheme(
    level: int, universe_size: int, seed: int, child_hash_bits: int
) -> ChildEncodingScheme:
    """Child encoding scheme for cascade level ``level`` (child IBLTs of O(2^level) cells)."""
    child_params = IBLTParameters.for_difference(
        2**level,
        max_element_bits(universe_size),
        derive_seed(seed, "cascade-child", level),
        num_hashes=3,
        checksum_bits=24,
        count_bits=16,
    )
    return ChildEncodingScheme(
        child_params, child_hash_bits, derive_seed(seed, "child-hash")
    )


def _parent_capacity(level: int, difference_bound: int, d_hat: int, slack: float) -> int:
    """Capacity (in keys) of the level-``level`` parent table.

    Level 1 may see every differing child encoding from both sides (up to
    ``2 * d_hat``); level ``i >= 2`` sees at most about ``d / 2^{i-1}``
    unrecovered children by the budget argument in the proof of Theorem 3.7
    (we apply a small constant ``slack`` on top).
    """
    if level == 1:
        return max(2, min(2 * d_hat, 2 * difference_bound))
    budget = int(math.ceil(slack * difference_bound / (2 ** (level - 1))))
    return max(2, min(2 * d_hat, budget))


def _recover_against(
    scheme: ChildEncodingScheme,
    alice_key: int,
    candidates: list[frozenset[int]],
    candidate_tables: ChildTableCache,
    backend: str | None = None,
) -> frozenset[int] | None:
    """Decode one of Alice's child encodings against candidate children.

    Candidate tables come from the per-level cache, so each candidate's
    table is built once per level rather than once per (key, candidate).
    """
    alice_table, alice_hash = scheme.decode(alice_key, backend=backend)
    for candidate in candidates:
        decode = alice_table.subtract(candidate_tables.get(candidate)).try_decode()
        if not decode.success:
            continue
        recovered = frozenset(
            apply_difference(candidate, decode.positive, decode.negative)
        )
        if scheme.hash_of(recovered) == alice_hash:
            return recovered
    return None


def reconcile_cascading(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    differing_children_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    level_slack: float = 3.0,
    transcript: Transcript | None = None,
) -> ReconciliationResult:
    """One-round cascading protocol for known ``d`` (Algorithm 2 / Theorem 3.7).

    Parameters
    ----------
    alice, bob:
        The two parent sets.
    difference_bound:
        Upper bound ``d`` on the total number of element changes.
    universe_size, max_child_size:
        Shared ``u`` and ``h``.
    seed:
        Shared seed.
    differing_children_bound:
        Bound ``d_hat`` on differing child sets; defaults to
        ``min(difference_bound, s)`` with ``s`` the larger parent size.
    backend:
        Cell-store backend for every table built here (the wide-keyed parent
        tables fall back to the pure-Python store; see :mod:`repro.config`).
    field_kernel:
        Scoped GF(p) kernel selection (see :mod:`repro.field.kernels`),
        matching the other set-of-sets entry points.  The cascade itself is
        pure-IBLT, so this only affects field arithmetic performed by custom
        encoding schemes or estimators running under this call.
    level_slack:
        Multiplier applied to the per-level capacity budget (the proof's 9/4
        constant rounded up).
    """
    if difference_bound < 0:
        raise ParameterError("difference_bound must be non-negative")
    if max_child_size <= 0:
        raise ParameterError("max_child_size must be positive")
    transcript = transcript if transcript is not None else Transcript()
    with use_kernel(field_kernel):
        return _reconcile_cascading_body(
            alice,
            bob,
            difference_bound,
            universe_size,
            max_child_size,
            seed,
            differing_children_bound,
            child_hash_bits,
            num_hashes,
            backend,
            level_slack,
            transcript,
        )


def _reconcile_cascading_body(
    alice: SetOfSets,
    bob: SetOfSets,
    difference_bound: int,
    universe_size: int,
    max_child_size: int,
    seed: int,
    differing_children_bound: int | None,
    child_hash_bits: int,
    num_hashes: int,
    backend: str | None,
    level_slack: float,
    transcript: Transcript,
) -> ReconciliationResult:
    difference_bound = max(1, difference_bound)
    d_hat = (
        differing_children_bound
        if differing_children_bound is not None
        else min(difference_bound, max(1, max(alice.num_children, bob.num_children)))
    )

    cascade_limit = max(2, min(difference_bound, max_child_size))
    num_levels = max(1, math.ceil(math.log2(cascade_limit)))
    include_t_star = difference_bound >= max_child_size

    # ---- Alice: build every level table (and T*) and send them all at once.
    schemes = [
        _level_child_scheme(level, universe_size, seed, child_hash_bits)
        for level in range(1, num_levels + 1)
    ]
    level_tables: list[IBLT] = []
    for level, scheme in zip(range(1, num_levels + 1), schemes):
        parent_params = IBLTParameters.for_difference(
            _parent_capacity(level, difference_bound, d_hat, level_slack),
            scheme.key_bits,
            derive_seed(seed, "cascade-parent", level),
            num_hashes,
        )
        table = IBLT(parent_params, backend=backend)
        table.insert_batch(scheme.encode_all(alice, backend=backend))
        level_tables.append(table)

    explicit_scheme = ExplicitChildScheme(universe_size, max_child_size)
    t_star: IBLT | None = None
    if include_t_star:
        t_star_params = IBLTParameters.for_difference(
            max(2, math.ceil(level_slack * difference_bound / max_child_size)),
            explicit_scheme.key_bits,
            derive_seed(seed, "cascade-t-star"),
            num_hashes,
        )
        t_star = IBLT(t_star_params, backend=backend)
        t_star.insert_batch(explicit_scheme.encode(child) for child in alice)

    verification = parent_hash(alice, seed)
    total_bits = sum(table.size_bits for table in level_tables) + WORD_BITS
    if t_star is not None:
        total_bits += t_star.size_bits
    transcript.send(
        "alice",
        "cascading level tables",
        total_bits,
        payload=(level_tables, t_star, verification),
    )

    # ---- Bob: process the levels in order.
    bob_children = bob.sorted_children()
    recovered_children: set[frozenset[int]] = set()   # D_A
    differing_bob: set[frozenset[int]] = set()        # D_B

    for level_index, (scheme, alice_table) in enumerate(zip(schemes, level_tables)):
        level = level_index + 1
        work = alice_table.copy()
        # All of Bob's encodings (and the already-recovered children's) are
        # batch-built for this level's scheme in one flat pass each.
        bob_keys = scheme.encode_all(bob_children, backend=backend)
        encoding_to_child = dict(zip(bob_keys, bob_children))
        deletions = [
            key
            for key, child in zip(bob_keys, bob_children)
            if level == 1 or child not in differing_bob
        ]
        if recovered_children:
            deletions.extend(
                scheme.encode_all(
                    sorted(recovered_children, key=sorted), backend=backend
                )
            )
        work.delete_batch(deletions)
        decode = work.try_decode()  # partial results are still useful on failure

        for key in decode.negative:
            child = encoding_to_child.get(key)
            if child is not None:
                differing_bob.add(child)
        candidates = sorted(differing_bob, key=sorted)
        candidate_tables = ChildTableCache(scheme, backend=backend)
        if decode.positive:
            candidate_tables.add_children(candidates)
        for key in decode.positive:
            recovered = _recover_against(
                scheme, key, candidates, candidate_tables, backend=backend
            )
            if recovered is not None:
                recovered_children.add(recovered)

    if t_star is not None:
        work = t_star.copy()
        # Children in D_B stay in the table so only Alice's unrecovered
        # children remain to extract (keeps T* within its O(d/h) budget).
        deletions = [
            explicit_scheme.encode(child)
            for child in bob_children
            if child not in differing_bob
        ]
        deletions.extend(explicit_scheme.encode(child) for child in recovered_children)
        work.delete_batch(deletions)
        decode = work.try_decode()
        for key in decode.positive:
            recovered_children.add(explicit_scheme.decode(key))
        for key in decode.negative:
            decoded = explicit_scheme.decode(key)
            if decoded in bob.children:
                differing_bob.add(decoded)

    reconstruction = bob.replace_children(differing_bob, recovered_children)
    verified = parent_hash(reconstruction, seed) == verification
    return ReconciliationResult(
        verified,
        reconstruction if verified else None,
        transcript,
        details={
            "num_levels": num_levels,
            "used_t_star": include_t_star,
            "recovered_children": len(recovered_children),
            "differing_bob_children": len(differing_bob),
            "failure": None if verified else "verification-hash",
        },
    )


def reconcile_cascading_unknown(
    alice: SetOfSets,
    bob: SetOfSets,
    universe_size: int,
    max_child_size: int,
    seed: int,
    *,
    initial_bound: int = 1,
    max_bound: int | None = None,
    child_hash_bits: int = 48,
    num_hashes: int = 4,
    backend: str | None = None,
    field_kernel: str | None = None,
    level_slack: float = 3.0,
) -> ReconciliationResult:
    """Repeated-doubling variant for unknown ``d`` (Corollary 3.8).

    As in :func:`~repro.core.setsofsets.iblt_of_iblts.reconcile_iblt_of_iblts_unknown`,
    the final doubling is clamped to ``max_bound`` so the largest permitted
    bound is always attempted.
    """
    if max_bound is None:
        max_bound = 2 * max(1, alice.total_elements + bob.total_elements)
    transcript = Transcript()
    bound = max(1, initial_bound)
    attempts = 0
    while bound <= max_bound:
        attempts += 1
        attempt_seed = derive_seed(seed, "cascade-doubling", attempts)
        result = reconcile_cascading(
            alice,
            bob,
            bound,
            universe_size,
            max_child_size,
            attempt_seed,
            child_hash_bits=child_hash_bits,
            num_hashes=num_hashes,
            backend=backend,
            field_kernel=field_kernel,
            level_slack=level_slack,
            transcript=transcript,
        )
        if result.success:
            result.attempts = attempts
            result.details["final_difference_bound"] = bound
            return result
        transcript.send("bob", "retry request", WORD_BITS)
        if bound >= max_bound:
            break
        bound = min(2 * bound, max_bound)
    return ReconciliationResult(
        False,
        None,
        transcript,
        attempts=attempts,
        details={"failure": "exceeded-max-bound", "max_bound": max_bound},
    )
